//! Precomputed pairwise distances (§2.1).
//!
//! "Another approach, that is especially useful when the database is
//! not too large (say, consisting of only a few thousand images), takes
//! advantage of the fact that … updates are done rarely, if at all. The
//! idea is to precompute the distance … between each pair of objects,
//! and store the answers. If the user asks for those images whose color
//! is close to the color of some other image in the database, no
//! painful computations such as that given by the formula (1) need to
//! be done in real time."
//!
//! Storage is `n(n−1)/2` `f32` entries (the matrix is symmetric with a
//! zero diagonal); `n = 4000` costs ~32 MB, matching the paper's "few
//! thousand images" sweet spot that experiment E9 sweeps.

use std::fmt;

use fmdb_core::score::Score;
use fmdb_core::stats::GradeHistogram;
use fmdb_media::embed::EmbeddedCorpus;
use fmdb_media::scorer::DistanceScorer;

/// Error raised by the precomputed matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum PrecomputeError {
    /// Object index out of range.
    OutOfRange {
        /// The offending index.
        index: usize,
        /// The number of objects.
        n: usize,
    },
    /// Fewer than two objects.
    TooSmall,
    /// The distance function returned NaN or a negative value.
    InvalidDistance(f64),
}

impl fmt::Display for PrecomputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrecomputeError::OutOfRange { index, n } => {
                write!(f, "object {index} out of range (n = {n})")
            }
            PrecomputeError::TooSmall => write!(f, "need at least two objects"),
            PrecomputeError::InvalidDistance(d) => write!(f, "invalid distance {d}"),
        }
    }
}

impl std::error::Error for PrecomputeError {}

/// A symmetric pairwise-distance matrix, built once and queried in
/// O(n) per query-by-example with zero distance computations.
#[derive(Debug, Clone)]
pub struct PrecomputedDistances {
    n: usize,
    /// Upper-triangle (i < j) distances, row-major packed.
    tri: Vec<f32>,
    /// Distance evaluations spent building (n·(n−1)/2) — the build
    /// cost reported by experiment E9.
    build_evaluations: u64,
}

impl PrecomputedDistances {
    /// Precomputes all pairwise distances via `dist(i, j)`.
    pub fn build(
        n: usize,
        mut dist: impl FnMut(usize, usize) -> f64,
    ) -> Result<PrecomputedDistances, PrecomputeError> {
        if n < 2 {
            return Err(PrecomputeError::TooSmall);
        }
        let mut tri = Vec::with_capacity(n * (n - 1) / 2);
        let mut evals = 0u64;
        for i in 0..n {
            for j in (i + 1)..n {
                let d = dist(i, j);
                evals += 1;
                if !d.is_finite() || d < 0.0 {
                    return Err(PrecomputeError::InvalidDistance(d));
                }
                tri.push(d as f32);
            }
        }
        Ok(PrecomputedDistances {
            n,
            tri,
            build_evaluations: evals,
        })
    }

    /// Precomputes all pairwise distances from an embedded corpus.
    ///
    /// Each pair costs one O(k) Euclidean norm instead of the O(k²)
    /// quadratic form, so the O(n²) build — the dominant cost E9
    /// measures — drops by a factor of k while storing the exact same
    /// distances.
    pub fn build_embedded(
        corpus: &EmbeddedCorpus,
    ) -> Result<PrecomputedDistances, PrecomputeError> {
        PrecomputedDistances::build(corpus.len(), |i, j| corpus.distance_between(i, j))
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never empty (`build` requires n ≥ 2).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Distance evaluations spent at build time.
    pub fn build_evaluations(&self) -> u64 {
        self.build_evaluations
    }

    #[inline]
    fn tri_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        // Row i starts after sum_{r<i} (n-1-r) = i(n-1) − i(i−1)/2 entries.
        i * (self.n - 1) - i * i.saturating_sub(1) / 2 + (j - i - 1)
    }

    /// The stored distance between objects `i` and `j`.
    pub fn distance(&self, i: usize, j: usize) -> Result<f64, PrecomputeError> {
        for &idx in &[i, j] {
            if idx >= self.n {
                return Err(PrecomputeError::OutOfRange {
                    index: idx,
                    n: self.n,
                });
            }
        }
        if i == j {
            return Ok(0.0);
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Ok(f64::from(self.tri[self.tri_index(a, b)]))
    }

    /// Query by example: the `k` objects closest to object `query`
    /// (excluding itself), with zero distance evaluations.
    pub fn knn(&self, query: usize, k: usize) -> Result<Vec<(usize, f64)>, PrecomputeError> {
        if query >= self.n {
            return Err(PrecomputeError::OutOfRange {
                index: query,
                n: self.n,
            });
        }
        let mut all: Vec<(usize, f64)> = (0..self.n)
            .filter(|&j| j != query)
            // lint:allow(no-panic): both indices were bounds-checked at function entry
            .map(|j| (j, self.distance(query, j).expect("indices validated above")))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        Ok(all)
    }

    /// An equi-depth grade histogram for query-by-example retrieval
    /// around object `query` — the planner's statistics hook for
    /// precomputed sources, costing **zero** distance evaluations.
    ///
    /// Up to `sample` stored distances are read on a deterministic
    /// stride through the query's row, mapped through `scorer`, and
    /// summarized by [`GradeHistogram::from_sample`] scaled to the
    /// full matrix size.
    pub fn grade_histogram(
        &self,
        query: usize,
        scorer: &dyn DistanceScorer,
        bins: usize,
        sample: usize,
    ) -> Result<GradeHistogram, PrecomputeError> {
        if query >= self.n {
            return Err(PrecomputeError::OutOfRange {
                index: query,
                n: self.n,
            });
        }
        let take = sample.max(1).min(self.n);
        let stride = (self.n / take).max(1);
        let grades: Vec<Score> = (0..self.n)
            .step_by(stride)
            .take(take)
            // lint:allow(no-panic): both indices were bounds-checked (query above, j < n by construction)
            .map(|j| scorer.score(self.distance(query, j).expect("indices validated above")))
            .collect();
        Ok(GradeHistogram::from_sample(&grades, self.n, bins))
    }

    /// Every object's `(oid, grade)` pair for query-by-example
    /// retrieval around object `query` — oid is the matrix index,
    /// grade the stored distance mapped through `scorer` (the query
    /// object itself grades via its zero self-distance). This is the
    /// one-shot export feeding a persistent graded store; the index
    /// layer cannot see the middleware's store types, so it hands over
    /// plain pairs and the caller does the persisting.
    pub fn graded_pairs(
        &self,
        query: usize,
        scorer: &dyn DistanceScorer,
    ) -> Result<Vec<(u64, Score)>, PrecomputeError> {
        if query >= self.n {
            return Err(PrecomputeError::OutOfRange {
                index: query,
                n: self.n,
            });
        }
        Ok((0..self.n)
            .map(|j| {
                // lint:allow(no-panic): query was bounds-checked above, j < n by construction
                let d = self.distance(query, j).expect("indices validated above");
                (j as u64, scorer.score(d))
            })
            .collect())
    }

    /// Splits the object indices into `shards` contiguous ranges using
    /// the same decomposition as [`fmdb_media::embed::contiguous_ranges`]
    /// (and the middleware's contiguous source partitioner): shard `s`
    /// owns `[⌈s·n/p⌉, ⌈(s+1)·n/p⌉)`.
    pub fn shard_ranges(&self, shards: usize) -> Vec<std::ops::Range<usize>> {
        fmdb_media::embed::contiguous_ranges(self.n, shards)
    }

    /// [`PrecomputedDistances::knn`] restricted to candidate objects
    /// whose index lies in `range` (clamped to the matrix; the query
    /// object is still excluded) — the per-shard kernel for
    /// partitioned execution. Merging each shard's answers by
    /// ascending `(distance, index)` and truncating to `k` reproduces
    /// the full [`PrecomputedDistances::knn`] exactly.
    pub fn knn_in_range(
        &self,
        query: usize,
        k: usize,
        range: std::ops::Range<usize>,
    ) -> Result<Vec<(usize, f64)>, PrecomputeError> {
        if query >= self.n {
            return Err(PrecomputeError::OutOfRange {
                index: query,
                n: self.n,
            });
        }
        let lo = range.start.min(self.n);
        let hi = range.end.min(self.n).max(lo);
        let mut all: Vec<(usize, f64)> = (lo..hi)
            .filter(|&j| j != query)
            // lint:allow(no-panic): both indices were bounds-checked at function entry
            .map(|j| (j, self.distance(query, j).expect("indices validated above")))
            .collect();
        all.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        Ok(all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_metric(i: usize, j: usize) -> f64 {
        (i as f64 - j as f64).abs()
    }

    #[test]
    fn build_validates() {
        assert!(matches!(
            PrecomputedDistances::build(1, line_metric),
            Err(PrecomputeError::TooSmall)
        ));
        assert!(matches!(
            PrecomputedDistances::build(3, |_, _| f64::NAN),
            Err(PrecomputeError::InvalidDistance(_))
        ));
        assert!(matches!(
            PrecomputedDistances::build(3, |_, _| -1.0),
            Err(PrecomputeError::InvalidDistance(_))
        ));
    }

    #[test]
    fn stores_and_retrieves_symmetrically() {
        let p = PrecomputedDistances::build(5, line_metric).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.build_evaluations(), 10);
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(p.distance(i, j).unwrap(), line_metric(i, j));
            }
        }
        assert!(matches!(
            p.distance(0, 5),
            Err(PrecomputeError::OutOfRange { index: 5, n: 5 })
        ));
    }

    #[test]
    fn graded_pairs_export_is_complete_and_ordered_by_distance() {
        use fmdb_media::prelude::{DistanceScorer, ExpDecay};
        let p = PrecomputedDistances::build(6, line_metric).unwrap();
        let scorer = ExpDecay::new(2.0).unwrap();
        let pairs = p.graded_pairs(3, &scorer).unwrap();
        assert_eq!(pairs.len(), 6);
        // Every object appears once, under its own index.
        for (j, &(oid, grade)) in pairs.iter().enumerate() {
            assert_eq!(oid, j as u64);
            assert_eq!(grade, scorer.score(line_metric(3, j)));
        }
        // The example grades best (zero self-distance).
        let best = pairs.iter().max_by_key(|&&(_, g)| g).unwrap();
        assert_eq!(best.0, 3);
        assert!(matches!(
            p.graded_pairs(6, &scorer),
            Err(PrecomputeError::OutOfRange { index: 6, n: 6 })
        ));
    }

    #[test]
    fn knn_by_example() {
        let p = PrecomputedDistances::build(6, line_metric).unwrap();
        let nn = p.knn(3, 3).unwrap();
        // Distances from 3: [3,2,1,-,1,2]; ties (2↔4 at d=1, 1↔5 at
        // d=2) break by index.
        assert_eq!(nn, vec![(2, 1.0), (4, 1.0), (1, 2.0)]);
        assert!(p.knn(9, 2).is_err());
    }

    #[test]
    fn embedded_build_matches_quadratic_form_build() {
        use fmdb_media::color::{ColorHistogram, ColorSpace};
        use fmdb_media::distance::{HistogramDistance, QuadraticFormDistance};
        use fmdb_media::embed::EmbeddedSpace;

        let space = ColorSpace::rgb_grid(3).unwrap();
        let k = space.k();
        let hists: Vec<ColorHistogram> = (0..12)
            .map(|i| {
                let mut masses = vec![0.0; k];
                masses[i % k] = 2.0;
                masses[(i * 7 + 3) % k] = 1.0;
                ColorHistogram::from_masses(masses).unwrap()
            })
            .collect();
        let corpus = fmdb_media::embed::EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&space).unwrap(),
            &hists,
        )
        .unwrap();
        let fast = PrecomputedDistances::build_embedded(&corpus).unwrap();

        let qf = QuadraticFormDistance::new(space.similarity_matrix());
        let slow = PrecomputedDistances::build(hists.len(), |i, j| {
            qf.distance(&hists[i], &hists[j]).unwrap()
        })
        .unwrap();

        assert_eq!(fast.build_evaluations(), slow.build_evaluations());
        for i in 0..hists.len() {
            for j in 0..hists.len() {
                let a = fast.distance(i, j).unwrap();
                let b = slow.distance(i, j).unwrap();
                assert!((a - b).abs() < 1e-6, "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn sharded_knn_merge_equals_full_knn() {
        let p = PrecomputedDistances::build(157, |i, j| {
            ((i.wrapping_mul(31) ^ j.wrapping_mul(17)) % 101) as f64 / 101.0 + line_metric(i, j)
        })
        .unwrap();
        let want = p.knn(40, 9).unwrap();
        for shards in [1usize, 2, 3, 8] {
            let ranges = p.shard_ranges(shards);
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), p.len());
            let mut merged: Vec<(usize, f64)> = Vec::new();
            for r in ranges {
                merged.extend(p.knn_in_range(40, 9, r).unwrap());
            }
            merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            merged.truncate(9);
            assert_eq!(merged, want, "shards={shards}");
        }
        // Clamped out-of-matrix range; invalid query still rejected.
        assert!(p.knn_in_range(40, 3, 500..900).unwrap().is_empty());
        assert!(p.knn_in_range(500, 3, 0..10).is_err());
    }

    #[test]
    fn grade_histogram_reads_the_stored_row_deterministically() {
        use fmdb_media::scorer::{DistanceScorer, ExpDecay};

        let p = PrecomputedDistances::build(120, |i, j| line_metric(i, j) / 10.0).unwrap();
        let scorer = ExpDecay::new(1.0).unwrap();
        let full = p.grade_histogram(40, &scorer, 16, 120).unwrap();
        let sampled = p.grade_histogram(40, &scorer, 16, 30).unwrap();
        assert_eq!(full.universe(), 120);
        assert_eq!(sampled.universe(), 120);
        for g in [0.2, 0.5, 0.8] {
            let exact = (0..120)
                .filter(|&j| scorer.score(p.distance(40, j).unwrap()).value() >= g)
                .count() as f64
                / 120.0;
            assert!(
                (full.fraction_above(g) - exact).abs() < 0.1,
                "full off at {g}: {} vs {exact}",
                full.fraction_above(g)
            );
            assert!(
                (sampled.fraction_above(g) - exact).abs() < 0.2,
                "sampled off at {g}: {} vs {exact}",
                sampled.fraction_above(g)
            );
        }
        assert_eq!(p.grade_histogram(40, &scorer, 16, 30).unwrap(), sampled);
        assert!(p.grade_histogram(500, &scorer, 16, 30).is_err());
    }

    #[test]
    fn knn_excludes_self_and_handles_large_k() {
        let p = PrecomputedDistances::build(4, line_metric).unwrap();
        let nn = p.knn(0, 100).unwrap();
        assert_eq!(nn.len(), 3);
        assert!(nn.iter().all(|&(j, _)| j != 0));
    }
}
