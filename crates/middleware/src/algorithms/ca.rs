//! CA — the Combined Algorithm (Fagin–Lotem–Naor §6).
//!
//! TA random-accesses every field of every object it meets, which is
//! ruinous when a random access costs `c_R ≫ c_S`; NRA never probes,
//! which leaves grades as intervals and can stream far deeper than
//! necessary. CA interpolates between them, tuned by the cost ratio:
//!
//! * run NRA-style rounds of sorted access, maintaining a grade
//!   interval `[lower, upper]` for every seen object;
//! * every `h = max(1, ⌊c_R/c_S⌋)` rounds, spend (up to) the price of
//!   one random access per round: completely resolve the *most
//!   promising unresolved* object — the one with the largest upper
//!   bound among those not already excluded by the current k-th lower
//!   bound — by random-accessing all its missing fields;
//! * halt under NRA's (θ-relaxed) rule: every non-candidate upper
//!   bound is `≤ (1 + θ)·Mₖ` and so is the unseen-object bound.
//!
//! At `h = 1` CA probes aggressively like TA; as `h → ∞` it degrades
//! toward pure NRA. Unlike NRA, CA *reports exact grades*: whatever
//! intervals remain open on the k answers at the halt are closed by
//! probing their missing fields (charged to `random` like any other
//! probe), so the result satisfies the workspace's exact-grade oracle
//! checks for θ = 0 regardless of the cost ratio.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::approx::{upper_excluded, validate_theta};
use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::{AccessStats, CostModel};

/// The Combined Algorithm, parameterized by the interleave depth `h`
/// (sorted-access rounds per random-access step) and the approximation
/// slack `θ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedAlgorithm {
    h: usize,
    theta: f64,
}

impl CombinedAlgorithm {
    /// CA with an explicit interleave depth (`h` is clamped to ≥ 1)
    /// and slack (`theta = 0.0` for the exact algorithm).
    pub fn new(h: usize, theta: f64) -> CombinedAlgorithm {
        CombinedAlgorithm { h: h.max(1), theta }
    }

    /// CA tuned to a cost model: `h = max(1, ⌊c_R/c_S⌋)`.
    pub fn for_cost(cost: &CostModel, theta: f64) -> CombinedAlgorithm {
        CombinedAlgorithm::new(crate::policy::interleave_depth(cost), theta)
    }

    /// The interleave depth `h`.
    pub fn interleave(&self) -> usize {
        self.h
    }

    /// The configured slack.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

/// One seen object's interval during a CA run.
struct CaBound {
    id: Oid,
    lower: Score,
    upper: Score,
    incomplete: bool,
}

/// Intervals for every seen object, sorted by descending lower bound
/// (ties by ascending oid).
fn ca_bounds(
    seen: &HashMap<Oid, Vec<Option<Score>>>,
    bottoms: &[Score],
    scoring: &dyn ScoringFunction,
) -> Vec<CaBound> {
    let m = bottoms.len();
    let mut low_buf = Vec::with_capacity(m);
    let mut high_buf = Vec::with_capacity(m);
    let mut bounded = Vec::with_capacity(seen.len());
    for (&oid, slots) in seen {
        low_buf.clear();
        high_buf.clear();
        let mut incomplete = false;
        for (i, &g) in slots.iter().enumerate() {
            incomplete |= g.is_none();
            low_buf.push(g.unwrap_or(Score::ZERO));
            high_buf.push(g.unwrap_or(bottoms[i]));
        }
        bounded.push(CaBound {
            id: oid,
            lower: scoring.combine(&low_buf),
            upper: scoring.combine(&high_buf),
            incomplete,
        });
    }
    bounded.sort_by(|a, b| b.lower.cmp(&a.lower).then(a.id.cmp(&b.id)));
    bounded
}

impl TopKAlgorithm for CombinedAlgorithm {
    fn name(&self) -> &'static str {
        "combined-ca"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate_theta(self.theta)?;
        validate(sources, scoring, k)?;
        let m = sources.len();
        for source in sources.iter_mut() {
            source.rewind();
        }
        let mut stats = AccessStats::ZERO;
        let mut seen: HashMap<Oid, Vec<Option<Score>>> = HashMap::new();
        let mut bottoms = vec![Score::ONE; m];
        let mut exhausted = vec![false; m];
        let mut round = 0usize;
        // Threshold feeding, same contract as in TA/NRA: only under a
        // zero-absorbing combiner is the k-th lower bound a valid
        // per-source hint for [`GradedSource::note_threshold`] (purely
        // physical — read-ahead gating — never answers or charges).
        let feed = matches!(
            crate::planner::classify_combiner(scoring, m),
            crate::planner::CombinerKind::ZeroAbsorbing
        );

        let answers = loop {
            round += 1;
            // One round of sorted access on every live list.
            let mut progressed = false;
            for i in 0..m {
                if exhausted[i] {
                    continue;
                }
                match sources[i].sorted_next() {
                    Some(so) => {
                        stats.sorted += 1;
                        progressed = true;
                        bottoms[i] = so.grade;
                        let slots = seen.entry(so.id).or_insert_with(|| vec![None; m]);
                        slots[i] = Some(so.grade);
                    }
                    None => {
                        exhausted[i] = true;
                        bottoms[i] = Score::ZERO;
                    }
                }
            }

            // Every h-th round: completely resolve the most promising
            // unresolved object (largest upper bound, ties by oid)
            // that the current k-th lower bound cannot exclude.
            if round.is_multiple_of(self.h) {
                let bounded = ca_bounds(&seen, &bottoms, scoring);
                let tau = if bounded.len() >= k {
                    bounded[k - 1].lower
                } else {
                    Score::ZERO
                };
                let target = bounded
                    .iter()
                    .enumerate()
                    .filter(|(rank, b)| {
                        b.incomplete
                            && (*rank < k
                                || bounded.len() < k
                                || !upper_excluded(b.upper, tau, self.theta))
                    })
                    .map(|(_, b)| b)
                    .max_by(|a, b| a.upper.cmp(&b.upper).then(b.id.cmp(&a.id)))
                    .map(|b| b.id);
                if let Some(oid) = target {
                    if let Some(slots) = seen.get_mut(&oid) {
                        for (j, slot) in slots.iter_mut().enumerate() {
                            if slot.is_none() {
                                *slot = Some(sources[j].random_access(oid));
                                stats.random += 1;
                            }
                        }
                    }
                }
            }

            // NRA's (θ-relaxed) halting rule on the fresh bounds.
            let mut bounded = ca_bounds(&seen, &bottoms, scoring);
            if bounded.len() >= k {
                let tau = bounded[k - 1].lower;
                if feed {
                    for source in sources.iter_mut() {
                        source.note_threshold(tau);
                    }
                }
                let unseen_upper = scoring.combine(&bottoms);
                let rest_ok = bounded[k..]
                    .iter()
                    .all(|b| upper_excluded(b.upper, tau, self.theta));
                let unseen_ok = upper_excluded(unseen_upper, tau, self.theta) || !progressed;
                if rest_ok && unseen_ok {
                    bounded.truncate(k);
                    break bounded;
                }
            }
            if !progressed {
                bounded.truncate(k);
                break bounded;
            }
        };

        // Close any intervals still open on the answers: the set is
        // already certified, but the workspace contract (and the
        // oracle's grade check) wants exact grades.
        let mut slot_buf = vec![Score::ZERO; m];
        let mut combined: Vec<ScoredObject<Oid>> = Vec::with_capacity(answers.len());
        for bound in &answers {
            if let Some(slots) = seen.get_mut(&bound.id) {
                for (j, slot) in slots.iter_mut().enumerate() {
                    if slot.is_none() {
                        *slot = Some(sources[j].random_access(bound.id));
                        stats.random += 1;
                    }
                }
                for (buf, &slot) in slot_buf.iter_mut().zip(slots.iter()) {
                    *buf = slot.unwrap_or(Score::ZERO);
                }
                combined.push(ScoredObject::new(bound.id, scoring.combine(&slot_buf)));
            }
        }
        Ok(finalize(combined, k, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::Naive;
    use crate::algorithms::ta::ThresholdAlgorithm;
    use crate::oracle::verify_top_k;
    use crate::source::VecSource;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::Min;

    fn run(algo: &dyn TopKAlgorithm, sources: &mut [VecSource], k: usize) -> TopKResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, &Min, k).unwrap()
    }

    fn grades_of(r: &TopKResult) -> Vec<Score> {
        r.answers.iter().map(|a| a.grade).collect()
    }

    #[test]
    fn exact_ca_matches_naive_for_every_interleave() {
        for h in [1usize, 3, 10, 100] {
            for k in [1usize, 5, 12] {
                let mut a = independent_uniform(300, 2, 13);
                let ca = run(&CombinedAlgorithm::new(h, 0.0), &mut a, k);
                let mut b = independent_uniform(300, 2, 13);
                let naive = run(&Naive, &mut b, k);
                assert_eq!(grades_of(&ca), grades_of(&naive), "h={h} k={k}");

                let mut c = independent_uniform(300, 2, 13);
                let mut refs: Vec<&mut dyn GradedSource> =
                    c.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
                assert!(verify_top_k(&mut refs, &Min, &ca.answers, k).is_ok());
            }
        }
    }

    #[test]
    fn exact_ca_matches_naive_under_mean_three_lists() {
        let mut a = independent_uniform(200, 3, 29);
        let mut refs: Vec<&mut dyn GradedSource> =
            a.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let ca = CombinedAlgorithm::new(5, 0.0)
            .top_k(&mut refs, &ArithmeticMean, 6)
            .unwrap();
        let mut b = independent_uniform(200, 3, 29);
        let mut refs: Vec<&mut dyn GradedSource> =
            b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let naive = Naive.top_k(&mut refs, &ArithmeticMean, 6).unwrap();
        assert_eq!(grades_of(&ca), grades_of(&naive));
    }

    #[test]
    fn deep_interleave_probes_less_than_ta() {
        let mut a = independent_uniform(4000, 2, 7);
        let ca = run(&CombinedAlgorithm::new(50, 0.0), &mut a, 10);
        let mut b = independent_uniform(4000, 2, 7);
        let ta = run(&ThresholdAlgorithm, &mut b, 10);
        assert!(
            ca.stats.random < ta.stats.random,
            "CA h=50 random {} must undercut TA's {}",
            ca.stats.random,
            ta.stats.random
        );
    }

    #[test]
    fn for_cost_derives_the_interleave() {
        let model = CostModel::random_to_sorted_ratio(30.0).unwrap();
        assert_eq!(CombinedAlgorithm::for_cost(&model, 0.0).interleave(), 30);
        assert_eq!(
            CombinedAlgorithm::for_cost(&CostModel::UNIFORM, 0.0).interleave(),
            1
        );
    }

    #[test]
    fn small_universe_returns_everything_exactly() {
        let g = [0.9, 0.4, 0.7].map(Score::clamped);
        let h = [0.5, 0.8, 0.6].map(Score::clamped);
        let mut sources = vec![
            VecSource::from_dense("a", &g),
            VecSource::from_dense("b", &h),
        ];
        let ca = run(&CombinedAlgorithm::new(2, 0.0), &mut sources, 3);
        // min grades: [0.5, 0.4, 0.6] → order 2, 0, 1.
        let ids: Vec<Oid> = ca.answers.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![2, 0, 1]);
    }

    #[test]
    fn validates_arguments() {
        let mut none: Vec<&mut dyn GradedSource> = vec![];
        assert!(matches!(
            CombinedAlgorithm::new(2, 0.0).top_k(&mut none, &Min, 1),
            Err(AlgoError::NoSources)
        ));
        let mut sources = independent_uniform(10, 2, 1);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        assert!(matches!(
            CombinedAlgorithm::new(2, -0.1).top_k(&mut refs, &Min, 2),
            Err(AlgoError::InvalidRequest(_))
        ));
    }
}
