//! Sharded intra-query execution: partition-parallel TA/NRA with
//! cooperative threshold sharing.
//!
//! The engine of PR 1 parallelizes *across* requests; a single
//! expensive top-k still drains its sources on one thread. This module
//! splits one query into `P` disjoint shards (every source partitioned
//! by the *same* [`SourcePartitioner`]), runs a threshold-style kernel
//! per shard on a scoped thread pool, and merges the per-shard answers
//! through a loser-tree [`ShardMerger`].
//!
//! # Why the merge is exact
//!
//! All kernels report per-shard answers ordered by the global output
//! comparator (descending grade, ties by ascending oid) and with
//! **exact** grades. Any object of the true global top-k lives in
//! exactly one shard, and within that shard at most `k − 1` objects
//! beat it — so it appears in that shard's local top-k. The k-way merge
//! of local top-k lists under the same comparator therefore returns
//! exactly the global top-k.
//!
//! # Why the shared threshold is a valid stopping bound
//!
//! Each shard publishes into an [`AtomicThreshold`] a certified lower
//! bound `T` on the global k-th overall grade (for TA: its local k-th
//! *exact* grade — k real objects score at least that much; for NRA:
//! its local k-th certified *lower* bound). Because scoring is
//! monotone, a shard whose own threshold `τ = t(b₁, …, b_m)` falls
//! strictly below `T` knows every object it has not yet seen grades at
//! most `τ < T ≤` (global k-th grade), i.e. strictly below the weakest
//! global answer — it can stop streaming immediately, even though its
//! *local* stopping rule has not fired. The comparison is strict so a
//! tie at the boundary never prunes an object that tie-breaking would
//! have admitted.
//!
//! Partitions must be aligned across sources: per-shard TA bounds
//! unseen objects by the shard's stream bottoms, which only bounds the
//! grades of objects *of that shard* in every list. The engine
//! guarantees alignment by partitioning all sources of a request with
//! one partitioner.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::Arc;
use std::thread;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::nra::BoundedAnswer;
use crate::algorithms::TopKResult;
use crate::engine::{panic_message, EngineError};
use crate::request::SharedScoring;
use crate::source::{GradedSource, Oid, ShardedSource, SourcePartitioner};
use crate::stats::AccessStats;

/// A shared, monotonically increasing lower bound on the global k-th
/// overall grade, exchanged between shard workers.
///
/// The score is stored as the IEEE-754 bit pattern of its `f64` value
/// in an [`AtomicU64`]; grades live in `[0, 1]`, and for non-negative
/// floats the bit patterns order exactly like the numbers, so
/// `fetch_max` on bits is `max` on scores.
///
/// All operations use [`Ordering::Relaxed`], and that is sufficient:
/// the bound is *advisory* and only ever grows. A reader observing a
/// stale (smaller) value merely keeps streaming a little longer than
/// necessary — correctness never depends on seeing the latest value,
/// only on never seeing a value larger than some published certified
/// bound, which atomicity alone guarantees.
#[derive(Debug, Default)]
pub struct AtomicThreshold {
    bits: AtomicU64,
}

impl AtomicThreshold {
    /// Starts at zero (no bound known).
    pub fn new() -> AtomicThreshold {
        // Score::ZERO is +0.0, whose bit pattern is 0.
        AtomicThreshold {
            bits: AtomicU64::new(0),
        }
    }

    /// Raises the bound to `candidate` if it is an improvement.
    pub fn observe(&self, candidate: Score) {
        // ordering(Relaxed): the threshold is a monotone advisory
        // bound. Scores are in [0,1], so their IEEE-754 bit patterns
        // order like the values and fetch_max never lowers the bound;
        // a racing reader that misses this update merely prunes less
        // — correctness never depends on seeing the newest maximum.
        self.bits
            .fetch_max(candidate.value().to_bits(), Ordering::Relaxed);
    }

    /// The current bound (possibly stale, never overstated).
    pub fn get(&self) -> Score {
        // ordering(Relaxed): reading a stale bound is safe by the same
        // monotonicity argument — the value can only be under the true
        // maximum, which weakens pruning but never drops a result.
        Score::clamped(f64::from_bits(self.bits.load(Ordering::Relaxed)))
    }
}

/// Which per-shard kernel a sharded algorithm runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardKernel {
    /// Threshold-algorithm kernel: sorted access plus immediate random
    /// access; per-shard answers carry exact grades, so the merged
    /// answer list is **identical** to the serial TA answer list.
    Ta,
    /// No-random-access kernel. Each shard streams until its reported
    /// top-k intervals collapse to exact grades (or the global bound
    /// proves it holds no global answers), so the merged *set* is a
    /// valid top-k set with exact grades — serial NRA may report the
    /// same set with understated lower-bound grades instead.
    Nra,
}

/// A loser-tree k-way merger over per-shard answer lists.
///
/// Each input list must already be ordered by the output comparator
/// (descending grade, ties by ascending oid); [`ShardMerger::pop`]
/// yields the globally next answer in `O(log P)` comparisons. With
/// answer lists of length ≤ k this is modest machinery, but it is the
/// same structure a later distributed merge needs, and it never
/// materializes the concatenated list.
#[derive(Debug)]
pub struct ShardMerger {
    lists: Vec<Vec<ScoredObject<Oid>>>,
    cursors: Vec<usize>,
    /// Internal tournament nodes; `losers[0]` holds the overall winner,
    /// `losers[1..]` the loser of the match played at that node.
    losers: Vec<usize>,
}

/// Marks an internal node that has not hosted a match yet (during
/// initialization only).
const UNPLAYED: usize = usize::MAX;

impl ShardMerger {
    /// Builds a merger over `lists` (each descending grade / ascending
    /// oid).
    pub fn new(lists: Vec<Vec<ScoredObject<Oid>>>) -> ShardMerger {
        let p = lists.len();
        let mut merger = ShardMerger {
            cursors: vec![0; p],
            losers: vec![UNPLAYED; p.max(1)],
            lists,
        };
        for t in 0..p {
            merger.seed(t);
        }
        merger
    }

    /// Merges the next `k` answers out of `lists` — the convenience
    /// entry point the sharded driver uses.
    pub fn merge_top_k(lists: Vec<Vec<ScoredObject<Oid>>>, k: usize) -> Vec<ScoredObject<Oid>> {
        let mut merger = ShardMerger::new(lists);
        let mut out = Vec::with_capacity(k);
        while out.len() < k {
            match merger.pop() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }

    /// The next answer across all lists, or `None` when every list is
    /// exhausted.
    pub fn pop(&mut self) -> Option<ScoredObject<Oid>> {
        if self.lists.is_empty() {
            return None;
        }
        let t = self.losers[0];
        let item = self.head(t)?;
        self.cursors[t] += 1;
        self.replay(t);
        Some(item)
    }

    fn head(&self, t: usize) -> Option<ScoredObject<Oid>> {
        self.lists[t].get(self.cursors[t]).copied()
    }

    /// Does list `a`'s head beat list `b`'s under the output
    /// comparator? Exhausted lists lose to everything.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.head(a), self.head(b)) {
            (Some(x), Some(y)) => match x.grade.cmp(&y.grade) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Less => false,
                std::cmp::Ordering::Equal => x.id < y.id,
            },
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// Initialization ascent for leaf `t`: deposit at the first
    /// unplayed node (waiting for an opponent), otherwise play the
    /// match — the loser stays, the winner ascends. Exactly one seed
    /// ascent reaches the root and crowns `losers[0]`.
    fn seed(&mut self, t: usize) {
        let p = self.lists.len();
        let mut winner = t;
        let mut node = (t + p) / 2;
        while node > 0 {
            if self.losers[node] == UNPLAYED {
                self.losers[node] = winner;
                return;
            }
            if self.beats(self.losers[node], winner) {
                std::mem::swap(&mut self.losers[node], &mut winner);
            }
            node /= 2;
        }
        self.losers[0] = winner;
    }

    /// Post-pop ascent: replay the matches on leaf `t`'s path to the
    /// root against the stored losers.
    fn replay(&mut self, t: usize) {
        let p = self.lists.len();
        let mut winner = t;
        let mut node = (t + p) / 2;
        while node > 0 {
            if self.beats(self.losers[node], winner) {
                std::mem::swap(&mut self.losers[node], &mut winner);
            }
            node /= 2;
        }
        self.losers[0] = winner;
    }
}

impl Iterator for ShardMerger {
    type Item = ScoredObject<Oid>;
    fn next(&mut self) -> Option<ScoredObject<Oid>> {
        self.pop()
    }
}

/// Per-shard TA: the serial TA loop plus cooperative threshold
/// sharing.
///
/// The shard maintains its top-k of *seen* objects in a bounded
/// min-heap (so the local k-th exact grade is always at hand to
/// publish) and stops on whichever fires first: the classic TA rule
/// (k seen grades at or above the shard's own `τ`), the cooperative
/// rule (`τ` strictly below the shared global bound), or stream
/// exhaustion.
fn shard_ta<S: GradedSource>(
    sources: &mut [S],
    scoring: &dyn ScoringFunction,
    k: usize,
    global: &AtomicThreshold,
) -> (Vec<ScoredObject<Oid>>, AccessStats) {
    let m = sources.len();
    let mut stats = AccessStats::ZERO;
    let mut seen: HashMap<Oid, ()> = HashMap::new();
    // Min-heap of the best k (grade, oid) seen, worst on top; `Reverse`
    // on the oid makes heap order agree with the output tie-break.
    let mut top: BinaryHeap<Reverse<(Score, Reverse<Oid>)>> = BinaryHeap::with_capacity(k + 1);
    let mut bottoms = vec![Score::ONE; m];
    let mut exhausted = vec![false; m];
    let mut slot_buf = vec![Score::ZERO; m];
    // Threshold feeding (same contract as serial TA): under a
    // zero-absorbing combiner the shared bound — max of the local k-th
    // grade and every other shard's published k-th — is a valid
    // per-source [`GradedSource::note_threshold`] hint. Purely
    // physical (read-ahead gating); answers and charges never change.
    let feed = matches!(
        crate::planner::classify_combiner(scoring, m),
        crate::planner::CombinerKind::ZeroAbsorbing
    );

    loop {
        let mut progressed = false;
        for i in 0..m {
            if exhausted[i] {
                continue;
            }
            let Some(so) = sources[i].sorted_next() else {
                exhausted[i] = true;
                bottoms[i] = Score::ZERO;
                continue;
            };
            stats.sorted += 1;
            progressed = true;
            bottoms[i] = so.grade;
            if let Entry::Vacant(entry) = seen.entry(so.id) {
                for (j, slot) in slot_buf.iter_mut().enumerate() {
                    if j == i {
                        *slot = so.grade;
                    } else {
                        *slot = sources[j].random_access(so.id);
                        stats.random += 1;
                    }
                }
                entry.insert(());
                top.push(Reverse((scoring.combine(&slot_buf), Reverse(so.id))));
                if top.len() > k {
                    top.pop();
                }
            }
        }

        let kth = if top.len() >= k {
            top.peek().map(|&Reverse((g, _))| g)
        } else {
            None
        };
        if let Some(kth) = kth {
            // k objects of this shard have exact grade ≥ kth, so the
            // global k-th grade is ≥ kth: a certified bound to share.
            global.observe(kth);
        }
        if feed {
            let bound = global.get();
            for source in sources.iter_mut() {
                source.note_threshold(bound);
            }
        }
        let tau = scoring.combine(&bottoms);
        let locally_done = kth.is_some_and(|kth| kth >= tau);
        // Strict <: every unseen object here grades ≤ τ < global k-th,
        // so it loses to all k global answers even under tie-breaks.
        let globally_pruned = tau < global.get();
        if locally_done || globally_pruned || !progressed {
            break;
        }
    }

    let mut answers: Vec<ScoredObject<Oid>> = top
        .into_iter()
        .map(|Reverse((grade, Reverse(id)))| ScoredObject::new(id, grade))
        .collect();
    answers.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
    (answers, stats)
}

/// Per-shard NRA: sorted access only, cooperative threshold sharing.
///
/// Beyond serial NRA's stopping rule, the reported local top-k must
/// have *collapsed* intervals (exact grades): the cross-shard merge
/// selects by grade, and selecting by uncollapsed lower bounds could
/// prefer a shard's mediocre-but-certain candidate over another
/// shard's better-but-uncertain one. A shard also stops (returning no
/// answers) as soon as the shared bound proves that neither its unseen
/// objects nor any of its current candidates can reach the global
/// top-k.
fn shard_nra<S: GradedSource>(
    sources: &mut [S],
    scoring: &dyn ScoringFunction,
    k: usize,
    global: &AtomicThreshold,
) -> (Vec<ScoredObject<Oid>>, AccessStats) {
    let m = sources.len();
    let mut stats = AccessStats::ZERO;
    let mut seen: HashMap<Oid, Vec<Option<Score>>> = HashMap::new();
    let mut bottoms = vec![Score::ONE; m];
    let mut exhausted = vec![false; m];
    let mut low_buf = Vec::with_capacity(m);
    let mut high_buf = Vec::with_capacity(m);
    // Threshold feeding, same contract as in [`shard_ta`].
    let feed = matches!(
        crate::planner::classify_combiner(scoring, m),
        crate::planner::CombinerKind::ZeroAbsorbing
    );

    loop {
        let mut progressed = false;
        for i in 0..m {
            if exhausted[i] {
                continue;
            }
            match sources[i].sorted_next() {
                Some(so) => {
                    stats.sorted += 1;
                    progressed = true;
                    bottoms[i] = so.grade;
                    let slots = seen.entry(so.id).or_insert_with(|| vec![None; m]);
                    slots[i] = Some(so.grade);
                }
                None => {
                    exhausted[i] = true;
                    bottoms[i] = Score::ZERO;
                }
            }
        }

        let mut bounded: Vec<BoundedAnswer> = Vec::with_capacity(seen.len());
        for (&oid, slots) in &seen {
            low_buf.clear();
            high_buf.clear();
            for (i, &g) in slots.iter().enumerate() {
                low_buf.push(g.unwrap_or(Score::ZERO));
                high_buf.push(g.unwrap_or(bottoms[i]));
            }
            bounded.push(BoundedAnswer {
                id: oid,
                lower: scoring.combine(&low_buf),
                upper: scoring.combine(&high_buf),
            });
        }
        bounded.sort_by(|a, b| b.lower.cmp(&a.lower).then(a.id.cmp(&b.id)));

        if bounded.len() >= k {
            // k objects of this shard have true grade ≥ their lower
            // bounds ≥ the k-th lower bound: a certified global bound.
            global.observe(bounded[k - 1].lower);
        }
        let theta = global.get();
        if feed {
            for source in sources.iter_mut() {
                source.note_threshold(theta);
            }
        }
        let unseen_upper = scoring.combine(&bottoms);

        // Cooperative prune: nothing this shard has seen — or could
        // still see — can reach the global top-k (strict <, so ties at
        // the k-th grade are never discarded).
        let unseen_hopeless = !progressed || unseen_upper < theta;
        if unseen_hopeless && bounded.iter().all(|b| b.upper < theta) {
            return (Vec::new(), stats);
        }

        if bounded.len() >= k {
            let tau = bounded[k - 1].lower;
            let exact_ok = bounded[..k].iter().all(BoundedAnswer::is_exact);
            // A non-answer is dismissible once its upper bound cannot
            // beat the local k-th lower bound — or falls strictly below
            // the shared global bound.
            let rest_ok = bounded[k..]
                .iter()
                .all(|b| b.upper <= tau || b.upper < theta);
            let unseen_ok = !progressed || unseen_upper <= tau || unseen_upper < theta;
            if exact_ok && rest_ok && unseen_ok {
                bounded.truncate(k);
                let answers = bounded
                    .iter()
                    .map(|b| ScoredObject::new(b.id, b.lower))
                    .collect();
                return (answers, stats);
            }
        }
        if !progressed {
            // Fully drained with fewer than k candidates: all bottoms
            // are 0, every interval has collapsed, report everything.
            bounded.truncate(k);
            let answers = bounded
                .iter()
                .map(|b| ScoredObject::new(b.id, b.lower))
                .collect();
            return (answers, stats);
        }
    }
}

/// Runs one shard's kernel.
fn run_kernel(
    kernel: ShardKernel,
    sources: &mut [ShardedSource],
    scoring: &dyn ScoringFunction,
    k: usize,
    global: &AtomicThreshold,
) -> (Vec<ScoredObject<Oid>>, AccessStats) {
    match kernel {
        ShardKernel::Ta => shard_ta(sources, scoring, k, global),
        ShardKernel::Nra => shard_nra(sources, scoring, k, global),
    }
}

/// Drives `P` shard workers on a scoped pool and merges their answers.
///
/// `shards[s]` holds shard `s`'s slice of every source (aligned
/// partitions). Worker panics are caught and surfaced as
/// [`EngineError::WorkerPanicked`] — one poisoned shard fails the
/// request, never the process. The returned stats are the fold of all
/// per-shard stats plus one `worker_spawns` per shard.
pub(crate) fn run_shards(
    kernel: ShardKernel,
    shards: Vec<Vec<ShardedSource>>,
    scoring: &SharedScoring,
    k: usize,
) -> Result<TopKResult, EngineError> {
    type ShardOutcome = (usize, Result<(Vec<ScoredObject<Oid>>, AccessStats), String>);
    let p = shards.len();
    let global = AtomicThreshold::new();
    // One slot per worker: the channel is bounded by construction.
    let (tx, rx) = sync_channel(p.max(1));
    let mut outcomes: Vec<ShardOutcome> = thread::scope(|scope| {
        for (idx, mut sources) in shards.into_iter().enumerate() {
            let tx = tx.clone();
            let scoring = Arc::clone(scoring);
            let global = &global;
            scope.spawn(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    run_kernel(kernel, &mut sources, &*scoring, k, global)
                }))
                .map_err(|payload| panic_message(payload.as_ref()));
                let _ = tx.send((idx, outcome));
            });
        }
        drop(tx);
        rx.iter().take(p).collect()
    });
    outcomes.sort_by_key(|&(idx, _)| idx);

    let mut stats = AccessStats::ZERO;
    stats.worker_spawns = p as u64;
    let mut lists = Vec::with_capacity(p);
    for (idx, outcome) in outcomes {
        match outcome {
            Ok((answers, shard_stats)) => {
                stats += shard_stats;
                lists.push(answers);
            }
            Err(message) => {
                return Err(EngineError::WorkerPanicked {
                    stream: format!("shard {idx}"),
                    message,
                });
            }
        }
    }
    Ok(TopKResult {
        answers: ShardMerger::merge_top_k(lists, k),
        stats,
    })
}

/// Partitions every source of a request consistently and runs the
/// sharded path, or returns `None` when any source cannot be
/// partitioned (the caller falls back to the serial path).
pub(crate) fn partition_aligned(
    sources: &[crate::request::SharedSource],
    partitioner: SourcePartitioner,
    shards: usize,
) -> Option<Vec<Vec<ShardedSource>>> {
    let mut per_shard: Vec<Vec<ShardedSource>> = (0..shards).map(|_| Vec::new()).collect();
    for source in sources {
        let guard = source
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let parts = guard.partition(partitioner, shards)?;
        if parts.len() != shards {
            return None;
        }
        for (s, part) in parts.into_iter().enumerate() {
            per_shard[s].push(part);
        }
    }
    Some(per_shard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::ta::ThresholdAlgorithm;
    use crate::algorithms::TopKAlgorithm;
    use crate::oracle::{all_grades, verify_top_k};
    use crate::source::VecSource;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn atomic_threshold_only_grows() {
        let t = AtomicThreshold::new();
        assert_eq!(t.get(), Score::ZERO);
        t.observe(s(0.4));
        t.observe(s(0.2));
        assert_eq!(t.get(), s(0.4));
        t.observe(s(0.9));
        assert_eq!(t.get(), s(0.9));
    }

    #[test]
    fn atomic_threshold_is_race_free_across_threads() {
        let t = AtomicThreshold::new();
        thread::scope(|scope| {
            for part in 0..4u64 {
                let t = &t;
                scope.spawn(move || {
                    for i in 0..250u64 {
                        t.observe(s((part * 250 + i) as f64 / 1000.0));
                    }
                });
            }
        });
        assert_eq!(t.get(), s(0.999));
    }

    /// Pseudo-random descending lists for merger tests.
    fn descending_lists(shape: &[usize], seed: u64) -> Vec<Vec<ScoredObject<Oid>>> {
        let mut oid = 0u64;
        shape
            .iter()
            .enumerate()
            .map(|(li, &len)| {
                let mut list: Vec<ScoredObject<Oid>> = (0..len)
                    .map(|_| {
                        oid += 1;
                        let g = ((oid.wrapping_mul(seed + li as u64 + 7919)) % 97) as f64 / 97.0;
                        ScoredObject::new(oid, s(g))
                    })
                    .collect();
                list.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
                list
            })
            .collect()
    }

    #[test]
    fn merger_matches_flatten_and_sort() {
        for shape in [
            vec![],
            vec![0],
            vec![5],
            vec![3, 0, 7, 1],
            vec![4, 4, 4],
            vec![1, 9, 2, 6, 3, 5, 8, 7],
        ] {
            for seed in [3, 17, 101] {
                let lists = descending_lists(&shape, seed);
                let mut expected: Vec<ScoredObject<Oid>> =
                    lists.iter().flatten().copied().collect();
                expected.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
                let merged: Vec<ScoredObject<Oid>> = ShardMerger::new(lists).collect();
                assert_eq!(merged, expected, "shape {shape:?} seed {seed}");
            }
        }
    }

    #[test]
    fn merge_top_k_truncates_and_tolerates_short_input() {
        let lists = descending_lists(&[3, 2], 5);
        assert_eq!(ShardMerger::merge_top_k(lists.clone(), 2).len(), 2);
        assert_eq!(ShardMerger::merge_top_k(lists, 50).len(), 5);
        assert!(ShardMerger::merge_top_k(vec![], 3).is_empty());
    }

    /// Ties across lists resolve by ascending oid, like `finalize`.
    #[test]
    fn merger_breaks_ties_by_oid() {
        let a = vec![ScoredObject::new(5, s(0.5)), ScoredObject::new(9, s(0.5))];
        let b = vec![ScoredObject::new(2, s(0.5))];
        let merged: Vec<Oid> = ShardMerger::new(vec![a, b]).map(|x| x.id).collect();
        assert_eq!(merged, vec![2, 5, 9]);
    }

    fn shard_workload(
        n: usize,
        m: usize,
        seed: u64,
        p: usize,
        partitioner: SourcePartitioner,
    ) -> Vec<Vec<ShardedSource>> {
        let sources = independent_uniform(n, m, seed);
        let mut per_shard: Vec<Vec<ShardedSource>> = (0..p).map(|_| Vec::new()).collect();
        for src in &sources {
            for (s_idx, part) in src
                .partition(partitioner, p)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                per_shard[s_idx].push(part);
            }
        }
        per_shard
    }

    fn serial_ta(n: usize, m: usize, seed: u64, k: usize) -> TopKResult {
        let mut sources = independent_uniform(n, m, seed);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|x| x as &mut dyn GradedSource)
            .collect();
        ThresholdAlgorithm.top_k(&mut refs, &Min, k).unwrap()
    }

    #[test]
    fn sharded_ta_answers_equal_serial_ta() {
        for &(n, m, k) in &[(200usize, 2usize, 5usize), (157, 3, 10), (64, 2, 64)] {
            for p in [1usize, 2, 3, 8] {
                for partitioner in [
                    SourcePartitioner::Modulo,
                    SourcePartitioner::Contiguous { universe: n },
                ] {
                    let shards = shard_workload(n, m, 42, p, partitioner);
                    let scoring: SharedScoring = Arc::new(Min);
                    let got = run_shards(ShardKernel::Ta, shards, &scoring, k).unwrap();
                    let want = serial_ta(n, m, 42, k);
                    assert_eq!(got.answers, want.answers, "n={n} m={m} k={k} p={p}");
                    assert_eq!(got.stats.worker_spawns, p as u64);
                }
            }
        }
    }

    #[test]
    fn sharded_nra_returns_an_exact_valid_top_k_set() {
        for &(n, k) in &[(180usize, 7usize), (60, 60), (33, 50)] {
            let shards = shard_workload(n, 2, 9, 4, SourcePartitioner::Modulo);
            let scoring: SharedScoring = Arc::new(ArithmeticMean);
            let got = run_shards(ShardKernel::Nra, shards, &scoring, k).unwrap();
            // Exact grades: verify directly against the oracle.
            let mut sources = independent_uniform(n, 2, 9);
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|x| x as &mut dyn GradedSource)
                .collect();
            verify_top_k(&mut refs, &ArithmeticMean, &got.answers, k).unwrap();
            assert_eq!(got.answers.len(), k.min(n));
        }
    }

    #[test]
    fn shard_kernels_meter_their_accesses() {
        // Wrap each shard in a counter and check self-reported stats.
        let src = VecSource::from_dense(
            "t",
            &(0..50).map(|i| s(i as f64 / 50.0)).collect::<Vec<_>>(),
        );
        let mut parts = src.partition(SourcePartitioner::Modulo, 2).unwrap();
        let global = AtomicThreshold::new();
        let (answers, stats) = shard_ta(&mut parts[..1], &Min, 3, &global);
        assert_eq!(answers.len(), 3);
        assert!(stats.sorted > 0);
        assert_eq!(stats.random, 0, "single source: nothing to probe");
        // NRA never random-accesses by construction.
        let src2 = VecSource::from_dense(
            "u",
            &(0..50)
                .map(|i| s((i as f64 * 0.37) % 1.0))
                .collect::<Vec<_>>(),
        );
        let mut parts2 = src2.partition(SourcePartitioner::Modulo, 2).unwrap();
        let mut pair = vec![parts.remove(0), parts2.remove(0)];
        let (_, nra_stats) = shard_nra(&mut pair, &Min, 3, &AtomicThreshold::new());
        assert_eq!(nra_stats.random, 0);
    }

    #[test]
    fn a_hot_global_bound_prunes_a_cold_shard() {
        // If another shard already certified a high k-th grade, a shard
        // full of low grades stops after one round instead of draining.
        let grades: Vec<Score> = (0..1000).map(|i| s(0.3 - (i as f64 / 10_000.0))).collect();
        let src = VecSource::from_dense("cold", &grades);
        let mut parts = src.partition(SourcePartitioner::Modulo, 1).unwrap();
        let global = AtomicThreshold::new();
        global.observe(s(0.9));
        let (_, stats) = shard_ta(&mut parts, &Min, 5, &global);
        assert!(
            stats.sorted <= 10,
            "cooperative bound should stop the scan, streamed {}",
            stats.sorted
        );
        let mut parts_nra = src.partition(SourcePartitioner::Modulo, 1).unwrap();
        let (answers, stats) = shard_nra(&mut parts_nra, &Min, 5, &global);
        assert!(answers.is_empty(), "pruned shard reports no answers");
        assert!(stats.sorted <= 10, "streamed {}", stats.sorted);
    }

    #[test]
    fn sharded_nra_grade_multiset_matches_truth() {
        let shards = shard_workload(120, 3, 5, 3, SourcePartitioner::Modulo);
        let scoring: SharedScoring = Arc::new(Min);
        let got = run_shards(ShardKernel::Nra, shards, &scoring, 10).unwrap();
        let mut sources = independent_uniform(120, 3, 5);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|x| x as &mut dyn GradedSource)
            .collect();
        let truth = all_grades(&mut refs, &Min);
        for a in &got.answers {
            assert!(
                a.grade.approx_eq(truth[&a.id], 1e-9),
                "reported grade is exact"
            );
        }
    }

    #[test]
    fn shard_worker_panic_fails_the_request() {
        #[derive(Debug)]
        struct Bomb;
        impl fmdb_core::scoring::ScoringFunction for Bomb {
            fn name(&self) -> String {
                "bomb".into()
            }
            fn combine(&self, _: &[Score]) -> Score {
                panic!("scoring exploded")
            }
            fn is_strict(&self) -> bool {
                false
            }
            fn is_monotone(&self) -> bool {
                true
            }
        }
        let shards = shard_workload(40, 2, 1, 2, SourcePartitioner::Modulo);
        let scoring: SharedScoring = Arc::new(Bomb);
        match run_shards(ShardKernel::Ta, shards, &scoring, 3) {
            Err(EngineError::WorkerPanicked { stream, message }) => {
                assert!(stream.starts_with("shard"), "{stream}");
                assert!(message.contains("exploded"), "{message}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn partition_aligned_falls_back_on_unpartitionable_sources() {
        use crate::request::shared_source;
        use crate::source::CountingSource;
        let ok = shared_source(VecSource::from_dense("a", &[s(0.2), s(0.8)]));
        let no = shared_source(CountingSource::new(VecSource::from_dense(
            "b",
            &[s(0.5), s(0.5)],
        )));
        assert!(
            partition_aligned(std::slice::from_ref(&ok), SourcePartitioner::Modulo, 2).is_some()
        );
        assert!(partition_aligned(&[ok, no], SourcePartitioner::Modulo, 2).is_none());
    }
}
