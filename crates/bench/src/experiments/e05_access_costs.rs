//! E5 — \[WHTB98\]: "…and a broad range of access costs." The paper's
//! uniform cost measure is "somewhat controversial"; this experiment
//! re-prices sorted and random accesses across three orders of
//! magnitude and shows where each algorithm wins.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::stats::CostModel;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E5",
        "charged cost under varying random:sorted price ratios",
        "[WHTB98]: \"Fagin's algorithm behaves well for … a broad range of access costs\"; \
         §6 asks for \"a more realistic cost measure\"",
    );
    let n = cfg.pick(1 << 15, 1 << 11);
    let k = 10usize;
    let m = 2usize;
    let ratios = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];

    // Collect raw stats once per algorithm; prices are applied after.
    let fa = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, |seed| {
        independent_uniform(n, m, seed)
    });
    let pruned = mean_cost(&PrunedFa::default(), &min, k, cfg.seeds, |seed| {
        independent_uniform(n, m, seed)
    });
    let ta = mean_cost(&ThresholdAlgorithm, &min, k, cfg.seeds, |seed| {
        independent_uniform(n, m, seed)
    });
    let naive = mean_cost(&Naive, &min, k, cfg.seeds, |seed| {
        independent_uniform(n, m, seed)
    });

    let mut raw = Table::new(
        format!("raw access counts, N = {n}, m = {m}, k = {k}"),
        &["algorithm", "sorted", "random"],
    );
    for (name, s) in [
        ("A0", fa),
        ("pruned A0", pruned),
        ("TA", ta),
        ("naive", naive),
    ] {
        raw.row(vec![
            name.into(),
            s.sorted.to_string(),
            s.random.to_string(),
        ]);
    }
    report.table(raw);

    let mut t = Table::new(
        "charged cost (sorted price 1, random price = ratio)",
        &["ratio", "A0", "pruned A0", "TA", "naive", "cheapest"],
    );
    for &r in &ratios {
        let model = CostModel::random_to_sorted_ratio(r).expect("valid ratio");
        let costs = [
            ("A0", fa.charged(&model)),
            ("pruned A0", pruned.charged(&model)),
            ("TA", ta.charged(&model)),
            ("naive", naive.charged(&model)),
        ];
        let cheapest = costs
            .iter()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
            .expect("non-empty")
            .0;
        t.row(vec![
            f3(r),
            f3(costs[0].1),
            f3(costs[1].1),
            f3(costs[2].1),
            f3(costs[3].1),
            cheapest.into(),
        ]);
    }
    report.table(t);
    report.note(
        "the A0 family wins across the whole ratio sweep on this N; naive (which never does \
         random access) only becomes competitive when random accesses are priced far above \
         sorted ones AND N is small — the robustness [WHTB98] observed.",
    );
    report
}
