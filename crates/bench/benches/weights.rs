//! Criterion benchmarks: the Fagin–Wimmers weighted combine (formula
//! (5)) vs the unweighted rule — the per-tuple overhead of §5's slider
//! semantics.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::score::Score;
use fmdb_core::scoring::tnorms::Min;
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{weighted_combine, Weighting};

fn tuples(m: usize, count: usize) -> Vec<Vec<Score>> {
    (0..count)
        .map(|i| {
            (0..m)
                .map(|j| Score::clamped(((i * 29 + j * 13) % 100) as f64 / 100.0))
                .collect()
        })
        .collect()
}

fn bench_weights(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted_combine");
    for m in [2usize, 4, 8] {
        let data = tuples(m, 1024);
        let ratios: Vec<f64> = (1..=m).map(|i| i as f64).collect();
        let theta = Weighting::from_ratios(&ratios).expect("positive ratios");
        group.bench_function(BenchmarkId::new("fw_formula", m), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for t in &data {
                    acc += weighted_combine(&Min, &theta, black_box(t)).value();
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("unweighted_min", m), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for t in &data {
                    acc += Min.combine(black_box(t)).value();
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_weights);
criterion_main!(benches);
