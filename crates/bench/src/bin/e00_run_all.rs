//! Runs the full experiment suite in order, timing each experiment and
//! metering its shared-engine accesses, then writes the
//! machine-readable `BENCH_engine.json` perf trajectory
//! (`FMDB_BENCH_JSON` overrides the output path).

use std::time::Instant;

use fmdb_bench::report::{bench_engine_json, BenchEntry};
use fmdb_bench::runners::{engine, RunCfg};

fn main() {
    let cfg = RunCfg::from_env();
    let mut entries = Vec::new();
    let mut before = engine().access_totals();
    for run in fmdb_bench::experiments::experiments() {
        let t0 = Instant::now();
        let report = run(&cfg);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let after = engine().access_totals();
        report.print();
        println!("{}", "=".repeat(72));
        entries.push(BenchEntry {
            id: report.id.clone(),
            title: report.title.clone(),
            wall_ms,
            // The shared engine's totals only grow, so the per-
            // experiment delta is exact even though the engine value
            // is process-global.
            stats: after - before,
            metrics: report.metrics.clone(),
        });
        before = after;
    }
    let json = bench_engine_json(&entries, cfg.quick);
    let path = std::env::var("FMDB_BENCH_JSON").unwrap_or_else(|_| "BENCH_engine.json".to_owned());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
