//! Execution policy: *how* a top-k query should be evaluated.
//!
//! The request API separates two concerns the original monolithic
//! builder conflated:
//!
//! * the **query** — sources, scoring, weights, `k`
//!   ([`crate::request::TopKQuery`]): *what* to compute;
//! * the **policy** — [`ExecPolicy`]: *how* to compute it. Algorithm
//!   choice ([`Algo`]), the access [`CostModel`] (Fagin–Lotem–Naor's
//!   `c_S`/`c_R`), the grade slack ([`Approximation`]), and the
//!   intra-query sharding override ([`ShardPolicy`]) folded in from
//!   [`crate::engine::EngineConfig`].
//!
//! [`Algo::Auto`] defers the choice to the unified cost-based planner
//! ([`crate::planner`]). [`crate::engine::Engine::run`] gathers
//! per-source statistics and routes through
//! [`crate::planner::choose_plan`]; resolving a policy *without*
//! statistics (this module's [`ExecPolicy::algorithm`]) applies the
//! planner's documented static fallback — TA under (near-)uniform
//! costs, NRA once the interleave depth `⌊c_R/c_S⌋` reaches 2, and the
//! θ-approximate variants under `θ > 0`. Never Fagin's A₀: measured
//! sweeps (E22) put TA/NRA at or below A₀'s charged cost everywhere,
//! so A₀ remains available only by explicit selection.
//!
//! ```
//! use fmdb_middleware::policy::{Algo, ExecPolicy};
//! use fmdb_middleware::stats::CostModel;
//!
//! // Explicit CA under "a random access costs 30 sorted ones",
//! // tolerating 10% grade slack.
//! let policy = ExecPolicy::new()
//!     .algo(Algo::Ca)
//!     .cost_model(CostModel::random_to_sorted_ratio(30.0).unwrap_or(CostModel::UNIFORM))
//!     .theta(0.1);
//! assert_eq!(policy.interleave(), 30);
//! ```

use crate::algorithms::approx::{ApproxNra, ApproxTa};
use crate::algorithms::ca::CombinedAlgorithm;
use crate::algorithms::fa::FaginsAlgorithm;
use crate::algorithms::nra::NraLowerBound;
use crate::algorithms::ta::ThresholdAlgorithm;
use crate::algorithms::{AlgoError, TopKAlgorithm};
use crate::stats::CostModel;

/// Which aggregation algorithm evaluates the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// Let the planner pick. With per-source statistics (the engine
    /// path) every strategy is priced through the cost model and the
    /// cheapest wins; without statistics the static fallback applies:
    /// TA under (near-)uniform costs, NRA when `⌊c_R/c_S⌋ ≥ 2`, their
    /// θ-approximate variants under `θ > 0`.
    #[default]
    Auto,
    /// Fagin's A₀ (the paper's algorithm). Exact only.
    Fa,
    /// The Threshold Algorithm.
    Ta,
    /// No-random-access; reported grades are certified lower bounds.
    Nra,
    /// The Combined Algorithm: NRA-style rounds with one random-access
    /// step every `⌊c_R/c_S⌋` rounds (Fagin–Lotem–Naor §6).
    Ca,
}

/// The grade slack a caller tolerates in exchange for access savings.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Approximation {
    /// The true top k, exactly.
    #[default]
    Exact,
    /// A θ-approximation: every returned object's true grade times
    /// `(1 + θ)` is at least every non-returned object's true grade.
    Theta(f64),
}

impl Approximation {
    /// The slack as a plain number (`Exact` is `θ = 0`).
    pub fn theta(&self) -> f64 {
        match self {
            Approximation::Exact => 0.0,
            Approximation::Theta(t) => *t,
        }
    }

    /// True when the policy actually relaxes the answer (`θ > 0`).
    pub fn is_approximate(&self) -> bool {
        self.theta() > 0.0
    }

    fn validate(&self) -> Result<(), AlgoError> {
        let theta = self.theta();
        if theta.is_finite() && theta >= 0.0 {
            Ok(())
        } else {
            Err(AlgoError::InvalidRequest(format!(
                "approximation slack θ must be finite and ≥ 0, got {theta}"
            )))
        }
    }
}

/// Intra-query sharding, folded into the policy from what used to be
/// engine-level configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardPolicy {
    /// Defer to the executing engine's configured shard count.
    #[default]
    Engine,
    /// Force the serial path regardless of engine configuration.
    Serial,
    /// Force up to `shards` partitions, each at least `min_items`
    /// objects (the engine still degrades to serial when the corpus is
    /// too small or the algorithm has no shard kernel).
    Shards {
        /// Maximum worker partitions for this request.
        shards: usize,
        /// Smallest per-shard corpus worth a worker thread.
        min_items: usize,
    },
}

/// How a [`crate::request::TopKRequest`] should be executed; see the
/// module docs for the split against [`crate::request::TopKQuery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Algorithm choice.
    pub algo: Algo,
    /// Unit prices for sorted/random access — drives [`Algo::Auto`]
    /// and CA's interleave depth.
    pub cost: CostModel,
    /// Tolerated grade slack.
    pub approximation: Approximation,
    /// Intra-query sharding override.
    pub sharding: ShardPolicy,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy::DEFAULT
    }
}

impl ExecPolicy {
    /// The default policy: `Auto` under the paper's uniform cost
    /// measure, exact answers, engine-configured sharding.
    pub const DEFAULT: ExecPolicy = ExecPolicy {
        algo: Algo::Auto,
        cost: CostModel::UNIFORM,
        approximation: Approximation::Exact,
        sharding: ShardPolicy::Engine,
    };

    /// Starts from the defaults; chain the setters to specialize.
    pub fn new() -> ExecPolicy {
        ExecPolicy::DEFAULT
    }

    /// Picks the algorithm.
    pub fn algo(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Sets the access cost model (the measured `c_S`/`c_R`).
    pub fn cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Tolerates a `(1 + θ)` grade slack.
    pub fn theta(mut self, theta: f64) -> Self {
        self.approximation = Approximation::Theta(theta);
        self
    }

    /// Demands the exact answer (the default).
    pub fn exact(mut self) -> Self {
        self.approximation = Approximation::Exact;
        self
    }

    /// Sets the sharding override.
    pub fn sharding(mut self, sharding: ShardPolicy) -> Self {
        self.sharding = sharding;
        self
    }

    /// Requests up to `shards` partitions with no corpus-size veto —
    /// shorthand for `sharding(ShardPolicy::Shards { shards,
    /// min_items: 1 })`.
    pub fn sharded_over(self, shards: usize) -> Self {
        self.sharding(ShardPolicy::Shards {
            shards,
            min_items: 1,
        })
    }

    /// CA's interleave depth `h = max(1, ⌊c_R/c_S⌋)`: one random-access
    /// step per `h` sorted-access rounds.
    pub fn interleave(&self) -> usize {
        interleave_depth(&self.cost)
    }

    /// The effective `(shards, min_items)` pair for an engine
    /// configured with `engine_shards`/`engine_min_items`.
    pub fn effective_shards(
        &self,
        engine_shards: usize,
        engine_min_items: usize,
    ) -> (usize, usize) {
        match self.sharding {
            ShardPolicy::Engine => (engine_shards, engine_min_items),
            ShardPolicy::Serial => (1, engine_min_items),
            ShardPolicy::Shards { shards, min_items } => (shards, min_items),
        }
    }

    fn validate_cost(&self) -> Result<(), AlgoError> {
        let CostModel {
            sorted_unit,
            random_unit,
        } = self.cost;
        let positive = |unit: f64| unit.is_finite() && unit > 0.0;
        if positive(sorted_unit) && positive(random_unit) {
            Ok(())
        } else {
            Err(AlgoError::InvalidRequest(format!(
                "cost model units must be finite and > 0, got c_S = {sorted_unit}, c_R = {random_unit}"
            )))
        }
    }

    /// Resolves the policy to a concrete algorithm instance, or an
    /// [`AlgoError::InvalidRequest`] for inconsistent knobs (negative
    /// or non-finite θ, non-positive cost units, θ-approximate FA).
    pub fn algorithm(&self) -> Result<Box<dyn TopKAlgorithm + Send + Sync>, AlgoError> {
        self.validate_cost()?;
        self.approximation.validate()?;
        let theta = self.approximation.theta();
        let approximate = self.approximation.is_approximate();
        Ok(match self.algo {
            Algo::Auto => {
                // The stats-free fallback of the unified planner; the
                // engine substitutes the stats-driven choice when it
                // can gather histograms (`Engine::run`).
                let plan = crate::planner::static_plan(false, approximate, self.interleave());
                crate::planner::plan_algorithm(plan, theta)
                    // The fallback only ever names algorithm-backed
                    // plans; keep a non-panicking default regardless.
                    .unwrap_or_else(|| Box::new(ThresholdAlgorithm))
            }
            Algo::Fa => {
                if approximate {
                    return Err(AlgoError::InvalidRequest(
                        "θ-approximation is not defined for Fagin's A₀; pick Ta, Nra, Ca, or Auto"
                            .to_owned(),
                    ));
                }
                Box::new(FaginsAlgorithm)
            }
            Algo::Ta => {
                if approximate {
                    Box::new(ApproxTa::new(theta))
                } else {
                    Box::new(ThresholdAlgorithm)
                }
            }
            Algo::Nra => {
                if approximate {
                    Box::new(ApproxNra::new(theta))
                } else {
                    Box::new(NraLowerBound)
                }
            }
            Algo::Ca => Box::new(CombinedAlgorithm::new(self.interleave(), theta)),
        })
    }
}

/// `max(1, ⌊c_R/c_S⌋)` with non-finite ratios degraded to 1.
pub(crate) fn interleave_depth(cost: &CostModel) -> usize {
    let ratio = cost.random_unit / cost.sorted_unit;
    if ratio.is_finite() && ratio >= 1.0 {
        // `ratio` is finite and ≥ 1, so the cast cannot wrap for any
        // realistic cost model; usize::MAX saturation is fine beyond.
        ratio.floor() as usize
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(r: f64) -> CostModel {
        CostModel::random_to_sorted_ratio(r).unwrap()
    }

    #[test]
    fn defaults_resolve_to_ta() {
        // The static fallback (no statistics) under uniform costs:
        // the Threshold Algorithm, never Fagin's A₀.
        let algo = ExecPolicy::new().algorithm().unwrap();
        assert_eq!(algo.name(), "threshold-ta");
    }

    #[test]
    fn auto_picks_nra_when_random_access_is_expensive() {
        let algo = ExecPolicy::new()
            .cost_model(ratio(10.0))
            .algorithm()
            .unwrap();
        assert_eq!(algo.name(), "nra-lower-bound");
        // Ratio 1.9 floors to h = 1: random access is still cheap
        // enough for TA's eager resolution.
        let algo = ExecPolicy::new()
            .cost_model(ratio(1.9))
            .algorithm()
            .unwrap();
        assert_eq!(algo.name(), "threshold-ta");
    }

    #[test]
    fn auto_picks_approx_ta_under_theta() {
        let algo = ExecPolicy::new().theta(0.1).algorithm().unwrap();
        assert_eq!(algo.name(), "approx-ta");
        // θ > 0 with expensive random access: the sorted-only
        // approximate variant.
        let algo = ExecPolicy::new()
            .theta(0.1)
            .cost_model(ratio(10.0))
            .algorithm()
            .unwrap();
        assert_eq!(algo.name(), "approx-nra");
        // θ = 0 through the Theta variant is still exact-equivalent
        // and must resolve like Exact.
        let algo = ExecPolicy::new().theta(0.0).algorithm().unwrap();
        assert_eq!(algo.name(), "threshold-ta");
    }

    #[test]
    fn explicit_choices_resolve_as_named() {
        for (choice, exact_name, theta_name) in [
            (Algo::Ta, "threshold-ta", "approx-ta"),
            (Algo::Nra, "nra-lower-bound", "approx-nra"),
            (Algo::Ca, "combined-ca", "combined-ca"),
        ] {
            let exact = ExecPolicy::new().algo(choice).algorithm().unwrap();
            assert_eq!(exact.name(), exact_name);
            let approx = ExecPolicy::new()
                .algo(choice)
                .theta(0.5)
                .algorithm()
                .unwrap();
            assert_eq!(approx.name(), theta_name);
        }
    }

    #[test]
    fn invalid_knobs_are_rejected() {
        assert!(ExecPolicy::new().theta(-0.5).algorithm().is_err());
        assert!(ExecPolicy::new().theta(f64::NAN).algorithm().is_err());
        assert!(ExecPolicy::new()
            .algo(Algo::Fa)
            .theta(0.1)
            .algorithm()
            .is_err());
        let broken = CostModel {
            sorted_unit: 0.0,
            random_unit: 1.0,
        };
        assert!(ExecPolicy::new().cost_model(broken).algorithm().is_err());
    }

    #[test]
    fn interleave_follows_the_cost_ratio() {
        assert_eq!(ExecPolicy::new().interleave(), 1);
        assert_eq!(ExecPolicy::new().cost_model(ratio(0.1)).interleave(), 1);
        assert_eq!(ExecPolicy::new().cost_model(ratio(3.0)).interleave(), 3);
        assert_eq!(ExecPolicy::new().cost_model(ratio(100.0)).interleave(), 100);
    }

    #[test]
    fn sharding_overrides_fold_engine_settings() {
        let p = ExecPolicy::new();
        assert_eq!(p.effective_shards(8, 256), (8, 256));
        assert_eq!(
            p.sharding(ShardPolicy::Serial).effective_shards(8, 256),
            (1, 256)
        );
        assert_eq!(p.sharded_over(4).effective_shards(8, 256), (4, 1));
    }
}
