//! Criterion benchmarks for the paged column store: sorted drains and
//! random probes against a store file, cold pool vs warm pool vs the
//! same data served from a `VecSource` — the numbers behind E18's
//! "out-of-core at in-memory speed" claim.

use std::path::{Path, PathBuf};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::score::Score;
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::store::{build_store, BuildConfig, PagedStore, StoreOptions};

const N: u64 = 1 << 14;

fn scratch(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-stores");
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    dir.join(name)
}

fn pairs(n: u64, seed: u64) -> Vec<(u64, Score)> {
    (0..n)
        .map(|i| {
            let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (i, Score::clamped((h >> 11) as f64 / (1u64 << 53) as f64))
        })
        .collect()
}

/// Full sorted drain: cold pool (cleared before every iteration),
/// warm pool, and the in-memory `VecSource` baseline.
fn bench_sorted_drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_sorted_drain");
    let data = pairs(N, 7);
    for &page_size in &[512usize, 4096] {
        let path = scratch(&format!("crit-drain-{page_size}.fmdb"));
        build_store(
            &path,
            "bench",
            data.clone(),
            &BuildConfig::with_page_size(page_size),
        )
        .expect("build store");
        let store = PagedStore::open(&path, StoreOptions::with_pool_pages(4096)).expect("open store");

        group.bench_function(BenchmarkId::new("cold", page_size), |b| {
            b.iter(|| {
                store.clear_pool();
                let mut src = store.source();
                let mut acc = 0u64;
                while let Some(so) = src.sorted_next() {
                    acc ^= black_box(so.id);
                }
                acc
            })
        });
        // Prime once, then measure with every frame resident.
        {
            let mut src = store.source();
            while src.sorted_next().is_some() {}
        }
        group.bench_function(BenchmarkId::new("warm", page_size), |b| {
            b.iter(|| {
                let mut src = store.source();
                let mut acc = 0u64;
                while let Some(so) = src.sorted_next() {
                    acc ^= black_box(so.id);
                }
                acc
            })
        });
    }
    let mut mem = VecSource::new("bench", data);
    group.bench_function("vecsource", |b| {
        b.iter(|| {
            mem.rewind();
            let mut acc = 0u64;
            while let Some(so) = mem.sorted_next() {
                acc ^= black_box(so.id);
            }
            acc
        })
    });
    group.finish();
}

/// Stride-spread random probes: warm pool vs the in-memory baseline.
fn bench_random_probes(c: &mut Criterion) {
    let mut group = c.benchmark_group("paged_random_probes");
    let data = pairs(N, 11);
    let probe_oids: Vec<u64> = (0..1024u64).map(|i| (i * 97) % N).collect();

    let path = scratch("crit-probe.fmdb");
    build_store(&path, "bench", data.clone(), &BuildConfig::DEFAULT).expect("build store");
    let store = PagedStore::open(&path, StoreOptions::with_pool_pages(4096)).expect("open store");
    let mut src = store.source();
    for &oid in &probe_oids {
        let _ = src.random_access(oid); // warm the pool
    }
    group.bench_function("paged_warm", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &oid in &probe_oids {
                acc += src.random_access(black_box(oid)).value();
            }
            acc
        })
    });

    let mut mem = VecSource::new("bench", data);
    group.bench_function("vecsource", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &oid in &probe_oids {
                acc += mem.random_access(black_box(oid)).value();
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sorted_drain, bench_random_probes);
criterion_main!(benches);
