//! Shared float-comparison helpers: the workspace's single epsilon.
//!
//! Raw `==`/`!=` on floating-point expressions is banned in library
//! code by the workspace linter (`cargo xtask lint`, rule
//! `no-float-eq`): after any arithmetic, two mathematically equal
//! grades may differ in their last bits, so exact comparison silently
//! turns into "did the round-off happen to agree". Code that needs
//! equality semantics on floats goes through this module instead, so
//! there is exactly one tolerance in the codebase and one place to
//! document it.
//!
//! # Choice of epsilon
//!
//! [`EPSILON`] is `1e-12`. Grades live in `[0, 1]`, where one ulp is
//! about `1e-16`; the deepest arithmetic the workspace performs on a
//! grade (weighted combines, t-norm chains, distance-to-grade
//! conversions) composes a few dozen operations, keeping accumulated
//! round-off under ~`1e-13`. `1e-12` therefore absorbs every
//! legitimate rounding difference while staying three orders of
//! magnitude below any semantically meaningful grade gap the test
//! suites assert on (`1e-9` and coarser).
//!
//! Comparisons at other scales (e.g. squared distances in
//! `fmdb-media`) should derive their tolerance from the data, not from
//! this constant.

/// The workspace's unit-interval comparison tolerance. See the module
/// docs for the rationale.
pub const EPSILON: f64 = 1e-12;

/// True when `a` and `b` differ by at most [`EPSILON`].
///
/// NaN compares unequal to everything, as with `==`.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPSILON
}

/// True when `x` is within [`EPSILON`] of zero.
#[inline]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPSILON
}

/// True when `x` is within [`EPSILON`] of one.
#[inline]
pub fn approx_one(x: f64) -> bool {
    approx_eq(x, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_tolerates_round_off() {
        assert!(approx_eq(0.1 + 0.2, 0.3));
        assert!(approx_eq(1.0, 1.0 + EPSILON / 2.0));
        assert!(!approx_eq(1.0, 1.0 + 1e-9));
    }

    #[test]
    fn nan_is_never_approx_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN));
        assert!(!approx_zero(f64::NAN));
        assert!(!approx_one(f64::NAN));
    }

    #[test]
    fn endpoint_helpers() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(-EPSILON));
        assert!(!approx_zero(1e-9));
        assert!(approx_one(1.0));
        assert!(approx_one(1.0 - EPSILON));
        assert!(!approx_one(0.999999));
    }
}
