//! Value-generation strategies (no shrinking).

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree: `generate` draws a
/// sample directly and failures are reported unshrunk.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `f`, retrying a bounded number
    /// of times.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 samples in a row",
            self.whence
        );
    }
}

/// A type-erased strategy, cheaply cloneable.
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy {
            inner: std::rc::Rc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A uniform choice among boxed alternatives ([`crate::prop_oneof!`]).
#[derive(Debug)]
pub struct Union<T> {
    /// The alternatives.
    pub options: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64_inclusive() as $t * (hi - lo)
            }
        }
    )*};
}
float_range_strategy!(f64, f32);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
