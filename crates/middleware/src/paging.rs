//! Paged-I/O cost simulation — the "more realistic cost measure" the
//! paper's open problems ask for (§6: "to give a more realistic cost
//! measure than the definition in \[Fa96\] for the database access
//! cost. This is especially important in the presence of query
//! optimizers.").
//!
//! The uniform access-count measure hides two physical realities:
//!
//! * **sorted access is sequential** — a subsystem's ranked list lives
//!   in pages of `page_size` objects, so `page_size` consecutive sorted
//!   accesses cost one page read;
//! * **random access has locality** — repeated probes can hit a buffer
//!   pool instead of the disk.
//!
//! [`PagedSource`] wraps any [`GradedSource`] with that model: the
//! sorted stream and the random-access structure are both paged, and an
//! LRU buffer pool absorbs re-reads. The resulting [`PageIo`] counts
//! replace the paper's flat counts in experiment E18, which shows where
//! the naive sequential scan genuinely overtakes A₀ once pages are
//! large and buffers small — the nuance the flat measure cannot see.

use std::collections::{HashSet, VecDeque};

use fmdb_core::score::{Score, ScoredObject};

use crate::source::{GradedSource, Oid, SourceInfo};

/// Physical layout parameters for one simulated subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Objects per page (both for the ranked list and the random-access
    /// structure).
    pub page_size: usize,
    /// Pages the buffer pool can hold.
    pub buffer_pages: usize,
}

impl PageConfig {
    /// Creates a configuration; both parameters are clamped to ≥ 1.
    pub fn new(page_size: usize, buffer_pages: usize) -> PageConfig {
        PageConfig {
            page_size: page_size.max(1),
            buffer_pages: buffer_pages.max(1),
        }
    }
}

/// Page-level I/O counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageIo {
    /// Page reads issued by the sorted stream (sequential).
    pub sequential_reads: u64,
    /// Page reads issued by random access.
    pub random_reads: u64,
    /// Accesses absorbed by the buffer pool.
    pub buffer_hits: u64,
}

impl PageIo {
    /// All page reads that reached the "disk".
    pub fn total_reads(&self) -> u64 {
        self.sequential_reads + self.random_reads
    }

    /// Charged cost with a seek penalty: sequential reads cost 1,
    /// random reads cost `seek_factor` (≥ 1 on spinning media).
    pub fn charged(&self, seek_factor: f64) -> f64 {
        self.sequential_reads as f64 + self.random_reads as f64 * seek_factor
    }
}

/// Which physical structure a page belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PageId {
    /// Page `i` of the ranked (sorted) list.
    Sorted(usize),
    /// Page `i` of the random-access structure.
    Random(usize),
}

/// A tiny LRU buffer pool over page ids.
#[derive(Debug)]
struct BufferPool {
    capacity: usize,
    queue: VecDeque<PageId>,
    resident: HashSet<PageId>,
}

impl BufferPool {
    fn new(capacity: usize) -> BufferPool {
        BufferPool {
            capacity,
            queue: VecDeque::new(),
            resident: HashSet::new(),
        }
    }

    /// Touches a page; returns true on a buffer hit.
    fn touch(&mut self, id: PageId) -> bool {
        if self.resident.contains(&id) {
            // Move to the MRU end (capacities are small; linear is fine).
            if let Some(pos) = self.queue.iter().position(|&p| p == id) {
                self.queue.remove(pos);
            }
            self.queue.push_back(id);
            return true;
        }
        self.queue.push_back(id);
        self.resident.insert(id);
        if self.queue.len() > self.capacity {
            if let Some(evicted) = self.queue.pop_front() {
                self.resident.remove(&evicted);
            }
        }
        false
    }
}

/// A [`GradedSource`] whose accesses are charged through the paged
/// storage model.
#[derive(Debug)]
pub struct PagedSource<S> {
    inner: S,
    config: PageConfig,
    buffer: BufferPool,
    io: PageIo,
    /// Position in the sorted stream (drives sorted-page numbering).
    stream_pos: usize,
}

impl<S: GradedSource> PagedSource<S> {
    /// Wraps `inner` with the given layout.
    pub fn new(inner: S, config: PageConfig) -> PagedSource<S> {
        PagedSource {
            inner,
            buffer: BufferPool::new(config.buffer_pages),
            config,
            io: PageIo::default(),
            stream_pos: 0,
        }
    }

    /// I/O counts so far.
    pub fn io(&self) -> PageIo {
        self.io
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }

    fn random_pages(&self) -> usize {
        self.inner
            .info()
            .universe_size
            .div_ceil(self.config.page_size)
            .max(1)
    }
}

impl<S: GradedSource> GradedSource for PagedSource<S> {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        let item = self.inner.sorted_next()?;
        let page = PageId::Sorted(self.stream_pos / self.config.page_size);
        self.stream_pos += 1;
        if self.buffer.touch(page) {
            self.io.buffer_hits += 1;
        } else {
            self.io.sequential_reads += 1;
        }
        Some(item)
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        // Model the random-access structure as hash-partitioned pages.
        let bucket = (oid as usize).wrapping_mul(2654435761) % self.random_pages();
        let page = PageId::Random(bucket);
        if self.buffer.touch(page) {
            self.io.buffer_hits += 1;
        } else {
            self.io.random_reads += 1;
        }
        self.inner.random_access(oid)
    }

    fn rewind(&mut self) {
        self.inner.rewind();
        self.stream_pos = 0;
    }

    fn info(&self) -> SourceInfo {
        self.inner.info()
    }

    // Batched access inherits the defaults: every item is routed
    // through the scalar methods above so each one is charged to the
    // page model individually.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn dense(n: usize) -> VecSource {
        let grades: Vec<Score> = (0..n).map(|i| s(i as f64 / n as f64)).collect();
        VecSource::from_dense("t", &grades)
    }

    #[test]
    fn sequential_stream_reads_one_page_per_page_size() {
        let mut src = PagedSource::new(dense(100), PageConfig::new(10, 4));
        while src.sorted_next().is_some() {}
        let io = src.io();
        assert_eq!(io.sequential_reads, 10);
        assert_eq!(io.buffer_hits, 90);
        assert_eq!(io.random_reads, 0);
    }

    #[test]
    fn page_size_one_degenerates_to_the_flat_count() {
        let mut src = PagedSource::new(dense(25), PageConfig::new(1, 1));
        while src.sorted_next().is_some() {}
        assert_eq!(src.io().sequential_reads, 25);
    }

    #[test]
    fn repeated_random_access_hits_the_buffer() {
        let mut src = PagedSource::new(dense(100), PageConfig::new(10, 8));
        let _ = src.random_access(7);
        let _ = src.random_access(7);
        let _ = src.random_access(7);
        let io = src.io();
        assert_eq!(io.random_reads, 1);
        assert_eq!(io.buffer_hits, 2);
    }

    #[test]
    fn tiny_buffer_thrashes() {
        let mut src = PagedSource::new(dense(1000), PageConfig::new(10, 1));
        // Alternate between two distinct random pages: with one buffer
        // page every access misses.
        let (a, b) = (0u64, 500u64);
        for _ in 0..5 {
            let _ = src.random_access(a);
            let _ = src.random_access(b);
        }
        let io = src.io();
        // a and b may land in the same hash bucket; if so the first
        // read is the only miss. Otherwise all 10 miss.
        assert!(io.random_reads == 10 || io.random_reads == 1, "{io:?}");
    }

    #[test]
    fn paging_never_changes_algorithm_answers() {
        use crate::algorithms::fa::FaginsAlgorithm;
        use crate::algorithms::TopKAlgorithm;
        use crate::workload::independent_uniform;
        use fmdb_core::scoring::tnorms::Min;

        let plain_sources = independent_uniform(500, 2, 3);
        let mut plain: Vec<_> = plain_sources.clone();
        let mut paged: Vec<PagedSource<_>> = plain_sources
            .into_iter()
            .map(|s| PagedSource::new(s, PageConfig::new(16, 4)))
            .collect();

        let mut refs_a: Vec<&mut dyn GradedSource> = plain
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let a = FaginsAlgorithm.top_k(&mut refs_a, &Min, 7).unwrap();
        let mut refs_b: Vec<&mut dyn GradedSource> = paged
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        let b = FaginsAlgorithm.top_k(&mut refs_b, &Min, 7).unwrap();
        assert_eq!(a.answers, b.answers);
        assert_eq!(a.stats, b.stats, "flat access counts are unaffected");
    }

    #[test]
    fn charged_cost_applies_the_seek_factor() {
        let io = PageIo {
            sequential_reads: 10,
            random_reads: 4,
            buffer_hits: 0,
        };
        assert_eq!(io.total_reads(), 14);
        assert_eq!(io.charged(1.0), 14.0);
        assert_eq!(io.charged(10.0), 50.0);
    }

    #[test]
    fn grades_pass_through_unchanged() {
        let mut plain = dense(30);
        let mut paged = PagedSource::new(dense(30), PageConfig::new(8, 4));
        loop {
            let a = plain.sorted_next();
            let b = paged.sorted_next();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(plain.random_access(3), paged.random_access(3));
        paged.rewind();
        assert!(paged.sorted_next().is_some());
        assert_eq!(paged.info().universe_size, 30);
    }
}
