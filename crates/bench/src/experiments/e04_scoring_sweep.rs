//! E4 — \[WHTB98\]: "Fagin's algorithm behaves well for a broad range of
//! queries" — the cost curve keeps its shape across monotone scoring
//! functions, and the answers stay correct (verified against the
//! brute-force oracle on every run).

use fmdb_core::scoring::means::{ArithmeticMean, GeometricMean};
use fmdb_core::scoring::tnorms::{Lukasiewicz, Min, Product};
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{Weighted, Weighting};
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::oracle::verify_top_k;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

fn scorings() -> Vec<Box<dyn ScoringFunction>> {
    vec![
        Box::new(Min),
        Box::new(Product),
        Box::new(Lukasiewicz),
        Box::new(ArithmeticMean),
        Box::new(GeometricMean),
        Box::new(Weighted::new(
            Min,
            Weighting::new(vec![0.6, 0.4]).expect("valid weighting"),
        )),
    ]
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E4",
        "A0 across scoring functions",
        "[WHTB98]: \"Fagin's algorithm behaves well for a broad range of queries\" — \
         any monotone scoring function, same algorithm, same cost shape",
    );
    let n = cfg.pick(1 << 15, 1 << 11);
    let k = 10usize;
    let mut t = Table::new(
        format!("A0 on two independent lists, N = {n}, k = {k}"),
        &["scoring", "cost", "cost/√(kN)", "verified"],
    );
    let mut all_verified = true;
    for scoring in scorings() {
        let mut total = 0u64;
        let mut verified = true;
        for seed in 0..cfg.seeds {
            let mut sources = independent_uniform(n, 2, seed);
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            let result = FaginsAlgorithm
                .top_k(&mut refs, scoring.as_ref(), k)
                .expect("valid configuration");
            total += result.stats.database_access_cost();
            let mut refs2: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            verified &= verify_top_k(&mut refs2, scoring.as_ref(), &result.answers, k).is_ok();
        }
        let mean = total / cfg.seeds;
        all_verified &= verified;
        t.row(vec![
            scoring.name(),
            int(mean),
            f3(mean as f64 / ((k * n) as f64).sqrt()),
            if verified { "yes".into() } else { "NO".into() },
        ]);
    }
    report.table(t);
    if all_verified {
        report.note("every answer set was verified exact against a full-scan oracle.");
    } else {
        report.note("VERIFICATION FAILURE — investigate before trusting the cost numbers.");
    }
    report.note(
        "normalized costs cluster in a narrow band across t-norms, means, and the weighted rule: \
         the algorithm is scoring-function agnostic, as [WHTB98] reported.",
    );
    report
}
