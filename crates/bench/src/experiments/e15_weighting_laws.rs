//! E15 — the Fagin–Wimmers desiderata (§5): D1 (equal weights =
//! unweighted), D2 (zero weight drops the argument), D3′ (local
//! linearity), and the failure of the naive weighted sum.

use fmdb_core::score::Score;
use fmdb_core::scoring::means::ArithmeticMean;
use fmdb_core::scoring::tnorms::{Min, Product};
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{weighted_combine, Weighting};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{f3, Report, Table};
use crate::runners::RunCfg;

fn random_scores(rng: &mut StdRng, m: usize) -> Vec<Score> {
    (0..m).map(|_| Score::clamped(rng.gen())).collect()
}

fn random_weighting(rng: &mut StdRng, m: usize) -> Weighting {
    let ratios: Vec<f64> = (0..m).map(|_| rng.gen::<f64>() + 1e-3).collect();
    Weighting::from_ratios(&ratios).expect("positive ratios")
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E15",
        "numeric verification of the weighting desiderata",
        "§5/[FW97]: formula (5) is the unique weighting satisfying D1, D2 and D3′ \
         (local linearity); the naive weighted sum violates D1 for min",
    );
    let trials = cfg.pick(20_000, 2_000);
    let mut rng = StdRng::seed_from_u64(4242);
    let rules: Vec<(&str, Box<dyn ScoringFunction>)> = vec![
        ("min", Box::new(Min)),
        ("product", Box::new(Product)),
        ("arith-mean", Box::new(ArithmeticMean)),
    ];

    let mut t = Table::new(
        format!("max violation over {trials} random trials, arities 2–5"),
        &["rule", "D1 (equal wts)", "D2 (zero wt)", "D3' (local lin.)"],
    );
    for (name, f) in &rules {
        let mut d1 = 0.0f64;
        let mut d2 = 0.0f64;
        let mut d3 = 0.0f64;
        for _ in 0..trials {
            let m = rng.gen_range(2..=5usize);
            let xs = random_scores(&mut rng, m);

            // D1: uniform weighting reduces to the unweighted rule.
            let uniform = Weighting::uniform(m).expect("m ≥ 2");
            let lhs = weighted_combine(f.as_ref(), &uniform, &xs).value();
            d1 = d1.max((lhs - f.combine(&xs).value()).abs());

            // D2: appending a zero-weight argument changes nothing.
            let theta = random_weighting(&mut rng, m);
            let mut wide_w = theta.weights().to_vec();
            wide_w.push(0.0);
            let wide_theta = Weighting::new(wide_w).expect("still sums to 1");
            let mut wide_x = xs.clone();
            wide_x.push(Score::clamped(rng.gen()));
            let with = weighted_combine(f.as_ref(), &wide_theta, &wide_x).value();
            let without = weighted_combine(f.as_ref(), &theta, &xs).value();
            d2 = d2.max((with - without).abs());

            // D3': f_{αΘ+(1−α)Θ'} = α·f_Θ + (1−α)·f_Θ' for *ordered*
            // weightings (sort both so they agree on importance order).
            let mut w1 = theta.weights().to_vec();
            let mut w2 = random_weighting(&mut rng, m).weights().to_vec();
            w1.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            w2.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let t1 = Weighting::new(w1).expect("sorted weights still sum to 1");
            let t2 = Weighting::new(w2).expect("sorted weights still sum to 1");
            let alpha: f64 = rng.gen();
            let mix = t1.mix(&t2, alpha).expect("same arity");
            let lhs = weighted_combine(f.as_ref(), &mix, &xs).value();
            let rhs = alpha * weighted_combine(f.as_ref(), &t1, &xs).value()
                + (1.0 - alpha) * weighted_combine(f.as_ref(), &t2, &xs).value();
            d3 = d3.max((lhs - rhs).abs());
        }
        t.row(vec![
            (*name).to_owned(),
            format!("{d1:.2e}"),
            format!("{d2:.2e}"),
            format!("{d3:.2e}"),
        ]);
    }
    report.table(t);

    // The cautionary example: naive weighted sum of min grades.
    let mut counter = Table::new(
        "why not θ₁x₁ + θ₂x₂? the paper's counterexample (f = min, equal weights)",
        &["x1", "x2", "naive sum", "formula (5)", "true min"],
    );
    for (x1, x2) in [(0.9f64, 0.3f64), (1.0, 0.0), (0.6, 0.4)] {
        let theta = Weighting::uniform(2).expect("valid");
        let xs = [Score::clamped(x1), Score::clamped(x2)];
        let fw = weighted_combine(&Min, &theta, &xs).value();
        counter.row(vec![
            f3(x1),
            f3(x2),
            f3(0.5 * x1 + 0.5 * x2),
            f3(fw),
            f3(x1.min(x2)),
        ]);
    }
    report.table(counter);
    report.note(
        "all desiderata hold to floating-point precision for every rule; the naive weighted \
         sum disagrees with min at equal weights (violating D1), which is §5's argument for \
         needing formula (5) in the first place.",
    );
    report
}
