//! Per-source grade-distribution statistics: equi-depth histograms.
//!
//! The cost-based planner (middleware's `planner` module) prices every
//! physical strategy in terms of *how deep* a sorted stream must be
//! read before grades fall below a target — exactly the quantile
//! function of the source's grade distribution. A [`GradeHistogram`]
//! records that function compactly: `bins` equi-depth bucket
//! boundaries taken from a descending grade list (the whole list, a
//! sorted-access prefix, or a random sample scaled to the universe).
//!
//! This lives in `fmdb-core` so media and index subsystems — which
//! depend only on the core — can act as statistics providers without a
//! dependency on the middleware.

use crate::score::Score;

/// Default bucket count for planner histograms: fine enough to resolve
/// a 5% selectivity step, coarse enough to build in microseconds.
pub const DEFAULT_HISTOGRAM_BINS: usize = 16;

/// An equi-depth histogram over a source's grades.
///
/// Stores `bins + 1` boundary grades `b_0 ≥ b_1 ≥ … ≥ b_bins` where
/// `b_i` is the grade at depth `i/bins · n` of the descending grade
/// list. Between boundaries the distribution is interpolated linearly,
/// so [`GradeHistogram::fraction_above`] and
/// [`GradeHistogram::grade_at_depth`] are continuous inverses of each
/// other (up to interpolation error).
#[derive(Debug, Clone, PartialEq)]
pub struct GradeHistogram {
    universe: usize,
    bounds: Vec<f64>,
}

impl GradeHistogram {
    /// Builds a histogram from a **descending** grade list (a full
    /// sorted stream or its prefix). Only `bins + 1` entries are
    /// inspected, so construction is O(bins) given the sorted list.
    pub fn from_sorted(grades: &[Score], bins: usize) -> GradeHistogram {
        Self::from_sorted_by(grades.len(), bins, |i| {
            grades.get(i).copied().unwrap_or(Score::ZERO)
        })
    }

    /// Builds a histogram by probing `grade_at(i)` at `bins + 1`
    /// quantile indices of a descending list of length `n` — O(bins)
    /// with no intermediate copy (used by materialized sources).
    pub fn from_sorted_by(
        n: usize,
        bins: usize,
        grade_at: impl Fn(usize) -> Score,
    ) -> GradeHistogram {
        let bins = bins.max(1);
        if n == 0 {
            return GradeHistogram {
                universe: 0,
                bounds: Vec::new(),
            };
        }
        let mut bounds = Vec::with_capacity(bins + 1);
        for i in 0..=bins {
            // Quantile index for depth fraction i/bins, clamped to the
            // last element.
            let idx = ((i * (n - 1)) / bins).min(n - 1);
            bounds.push(grade_at(idx).value());
        }
        GradeHistogram {
            universe: n,
            bounds,
        }
    }

    /// Builds a histogram from an *unsorted sample* of grades drawn
    /// from a universe of `universe` objects (e.g. `EmbeddedCorpus`
    /// sampling): the sample's quantiles estimate the population's.
    pub fn from_sample(sample: &[Score], universe: usize, bins: usize) -> GradeHistogram {
        let mut sorted: Vec<Score> = sample.to_vec();
        sorted.sort_by(|a, b| b.cmp(a));
        let mut h = Self::from_sorted(&sorted, bins);
        h.universe = universe.max(sorted.len());
        h
    }

    /// Reassembles a histogram from persisted parts — the inverse of
    /// reading [`GradeHistogram::universe`] and
    /// [`GradeHistogram::bounds`] back from storage (the paged store
    /// keeps a stats page so the planner can price a disk-backed
    /// source without touching data pages).
    ///
    /// Returns `None` when the parts are not a valid histogram: bounds
    /// must be finite, within `[0, 1]`, non-ascending, and either empty
    /// (with universe 0) or at least two entries for a universe > 0.
    pub fn from_parts(universe: usize, bounds: Vec<f64>) -> Option<GradeHistogram> {
        if bounds.is_empty() {
            return (universe == 0).then_some(GradeHistogram {
                universe: 0,
                bounds,
            });
        }
        if bounds.len() < 2 || universe == 0 {
            return None;
        }
        let valid = bounds
            .iter()
            .all(|b| b.is_finite() && (0.0..=1.0).contains(b))
            && bounds.windows(2).all(|w| w[0] >= w[1]);
        valid.then_some(GradeHistogram { universe, bounds })
    }

    /// The raw boundary grades `b_0 ≥ b_1 ≥ … ≥ b_bins` (see the type
    /// docs) — what a store persists and [`GradeHistogram::from_parts`]
    /// reassembles.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Number of objects the histogram describes.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of equi-depth buckets.
    pub fn bins(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Estimated fraction of objects whose grade is ≥ `grade`, in
    /// `[0, 1]`.
    pub fn fraction_above(&self, grade: f64) -> f64 {
        let bins = self.bins();
        if self.universe == 0 || bins == 0 {
            return 0.0;
        }
        let top = self.bounds[0];
        let bottom = self.bounds[bins];
        if grade > top {
            return 0.0;
        }
        if grade <= bottom {
            return 1.0;
        }
        // Find the bucket [b_i, b_{i+1}] containing `grade` (bounds
        // descend), then interpolate the depth fraction inside it.
        for i in 0..bins {
            let hi = self.bounds[i];
            let lo = self.bounds[i + 1];
            if grade <= hi && grade > lo {
                let span = hi - lo;
                let t = if span > f64::EPSILON {
                    (hi - grade) / span
                } else {
                    1.0
                };
                return ((i as f64 + t) / bins as f64).clamp(0.0, 1.0);
            }
        }
        1.0
    }

    /// Estimated number of objects whose grade is ≥ `grade` (the sorted
    /// depth at which the stream falls below `grade`).
    pub fn depth_above(&self, grade: f64) -> f64 {
        self.fraction_above(grade) * self.universe as f64
    }

    /// Estimated grade at sorted depth `depth` (1-based-ish; clamped to
    /// the universe).
    pub fn grade_at_depth(&self, depth: f64) -> f64 {
        let bins = self.bins();
        if self.universe == 0 || bins == 0 {
            return 0.0;
        }
        let f = (depth / self.universe as f64).clamp(0.0, 1.0);
        let pos = f * bins as f64;
        let i = (pos.floor() as usize).min(bins - 1);
        let t = (pos - i as f64).clamp(0.0, 1.0);
        let hi = self.bounds[i];
        let lo = self.bounds[i + 1];
        hi + (lo - hi) * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_desc(n: usize) -> Vec<Score> {
        // grades n/n, (n-1)/n, …, 1/n — exactly uniform.
        (0..n)
            .map(|i| Score::clamped((n - i) as f64 / n as f64))
            .collect()
    }

    #[test]
    fn uniform_grades_give_linear_quantiles() {
        let h = GradeHistogram::from_sorted(&uniform_desc(1000), 16);
        assert_eq!(h.universe(), 1000);
        assert_eq!(h.bins(), 16);
        // fraction above g ≈ 1 − g for uniform grades.
        for &g in &[0.05, 0.3, 0.5, 0.77, 0.95] {
            let got = h.fraction_above(g);
            assert!(
                (got - (1.0 - g)).abs() < 0.02,
                "fraction_above({g}) = {got}"
            );
        }
        // grade_at_depth is the inverse.
        for &d in &[10.0, 250.0, 500.0, 900.0] {
            let g = h.grade_at_depth(d);
            assert!(
                (h.depth_above(g) - d).abs() < 20.0,
                "roundtrip at depth {d}: grade {g}, depth {}",
                h.depth_above(g)
            );
        }
    }

    #[test]
    fn crisp_grades_form_a_step() {
        // 20% grade-1 objects, 80% grade-0: a crisp predicate with
        // selectivity 0.2.
        let mut grades = vec![Score::ONE; 200];
        grades.extend(std::iter::repeat_n(Score::ZERO, 800));
        let h = GradeHistogram::from_sorted(&grades, 10);
        assert!((h.fraction_above(0.5) - 0.2).abs() < 0.11);
        assert!((h.fraction_above(1.0) - 0.2).abs() < 0.11);
        assert!((h.fraction_above(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_scales_to_the_universe() {
        // A 100-grade sample standing in for 10_000 objects.
        let sample: Vec<Score> = (0..100)
            .map(|i| Score::clamped(1.0 - i as f64 / 100.0))
            .collect();
        let h = GradeHistogram::from_sample(&sample, 10_000, 8);
        assert_eq!(h.universe(), 10_000);
        let d = h.depth_above(0.5);
        assert!(
            (d - 5_000.0).abs() < 700.0,
            "depth_above(0.5) = {d}, want ≈ 5000"
        );
    }

    #[test]
    fn degenerate_histograms_are_safe() {
        let empty = GradeHistogram::from_sorted(&[], 16);
        assert_eq!(empty.universe(), 0);
        assert!(empty.fraction_above(0.5).abs() < 1e-12);
        assert!(empty.grade_at_depth(3.0).abs() < 1e-12);

        let one = GradeHistogram::from_sorted(&[Score::HALF], 16);
        assert_eq!(one.universe(), 1);
        assert!((one.fraction_above(0.1) - 1.0).abs() < 1e-12);
        assert!(one.fraction_above(0.9).abs() < 1e-12);

        // All-equal grades: flat quantiles must not divide by zero.
        let flat = GradeHistogram::from_sorted(&[Score::HALF; 50], 8);
        assert!((flat.fraction_above(0.25) - 1.0).abs() < 1e-12);
        assert!(flat.fraction_above(0.75).abs() < 1e-12);
        assert!((flat.fraction_above(0.5) - 1.0).abs() < 1e-12);
    }
}
