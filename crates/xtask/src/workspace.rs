//! Workspace discovery and per-file analysis context.
//!
//! This module walks the repository, lexes every first-party `.rs`
//! file, and annotates each with what the rules need to scope
//! themselves correctly:
//!
//! * which crate directory it belongs to and whether it is a crate
//!   root (`src/lib.rs` / `src/main.rs`);
//! * its class — library code, tests, benches, examples, build script
//!   (rules exempt non-library classes per policy);
//! * the `#[cfg(test)]` regions inside library files, found by strict
//!   attribute-token matching plus brace matching;
//! * the suppression comments, parsed from the token stream:
//!   `// lint:allow(<rule>): <justification>` silences one finding on
//!   the comment's line or the next line, and
//!   `// lint:allow-file(<rule>): <justification>` silences a rule for
//!   the whole file. A suppression **must** carry a justification
//!   after the colon; a bare `lint:allow(rule)` is itself reported.
//!
//! `vendor/` and `target/` are never walked: vendored stubs are not
//! first-party code and build output is not source.

use std::fs;
use std::path::{Path, PathBuf};

use crate::diagnostics::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};

/// Every rule the linter knows, in reporting order.
pub const RULES: &[&str] = &[
    "no-panic",
    "no-float-eq",
    "bounded-channels",
    "crate-hygiene",
    "no-deprecated",
];

/// Every rule the analyzer (`cargo xtask analyze`) knows, in
/// reporting order. These run on the parsed item tree, not the raw
/// token stream.
pub const ANALYZE_RULES: &[&str] = &[
    "atomic-ordering",
    "lock-order",
    "detached-thread",
    "ignored-result",
    "unchecked-arith",
];

/// Internal rule id for files the analyzer's parser could not model.
pub const PARSE_RULE: &str = "parse-error";

/// Internal rule id for malformed suppression comments.
pub const SUPPRESSION_RULE: &str = "lint-allow";

/// Internal rule id for malformed `// ordering(...)` justifications.
pub const ORDERING_RULE: &str = "ordering-comment";

/// Memory-ordering names an `// ordering(<Ord>): why` comment may
/// justify (mirrors `parser::ORDERING_NAMES`, duplicated here so the
/// workspace layer stays independent of the parser).
const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// True when `rule` is a lint or analyze rule a `lint:allow` marker
/// may name.
pub fn known_rule(rule: &str) -> bool {
    RULES.contains(&rule) || ANALYZE_RULES.contains(&rule)
}

/// What kind of source a file is; rules use this to scope themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library or binary code under `src/`.
    Lib,
    /// Integration tests under a `tests/` directory.
    Test,
    /// Benchmarks under a `benches/` directory.
    Bench,
    /// Examples under an `examples/` directory.
    Example,
    /// A `build.rs` build script.
    BuildScript,
}

/// One `// lint:allow(rule): why` site, as parsed from a comment.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// The rule this marker suppresses.
    pub rule: String,
    /// First line of the comment.
    pub line: usize,
    /// Last line of the comment (block comments span several).
    pub end_line: usize,
    /// True for the `lint:allow-file(...)` whole-file form.
    pub file_wide: bool,
    /// The mandatory justification text after the colon.
    pub justification: String,
}

/// One `// ordering(<Ord>): why` justification site — the
/// atomic-ordering rule's mandatory validity argument for a memory
/// ordering that is not a whitelisted idiom.
#[derive(Debug, Clone)]
pub struct OrderingSite {
    /// The justified ordering name (`Relaxed`, `SeqCst`, …).
    pub ordering: String,
    /// First line of the comment.
    pub line: usize,
    /// Last line of the comment.
    pub end_line: usize,
    /// The mandatory validity argument after the colon.
    pub justification: String,
}

/// One analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root (what diagnostics print).
    pub rel_path: PathBuf,
    /// The directory name under `crates/` (`core`, `middleware`, …),
    /// or `""` for the root package.
    pub crate_dir: String,
    /// Library / test / bench / example / build-script.
    pub class: FileClass,
    /// True for `src/lib.rs` or `src/main.rs` of a package.
    pub is_crate_root: bool,
    /// Token stream with comments stripped — what most rules scan.
    pub code: Vec<Token>,
    /// Inclusive line ranges covered by `#[cfg(test)]`.
    test_ranges: Vec<(usize, usize)>,
    /// Every well-formed `lint:allow` / `lint:allow-file` marker.
    pub allows: Vec<AllowSite>,
    /// Every well-formed `ordering(...)` justification.
    pub ordering_allows: Vec<OrderingSite>,
    /// Findings from the suppression parser itself (missing
    /// justification, unknown rule name).
    pub suppression_diags: Vec<Diagnostic>,
}

impl SourceFile {
    /// True if `line` falls inside a `#[cfg(test)]` region, or the
    /// whole file is test/bench/example code.
    pub fn in_test_region(&self, line: usize) -> bool {
        !matches!(self.class, FileClass::Lib | FileClass::BuildScript)
            || self
                .test_ranges
                .iter()
                .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// True if a `lint:allow` suppression covers `rule` at `line`.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.file_wide || (a.line..=a.end_line + 1).contains(&line)))
    }

    /// True if an `// ordering(<ordering>): why` justification covers
    /// an atomic site at `line`. A justification covers its own line,
    /// the next line, and — so one comment can head a *run* of
    /// consecutive same-shape atomic statements (e.g. a counter fold)
    /// — every further consecutive line that carries an atomic site
    /// (`atomic_lines`, supplied by the rule from the parse tree).
    pub fn ordering_justified(&self, ordering: &str, line: usize, atomic_lines: &[usize]) -> bool {
        self.ordering_allows.iter().any(|o| {
            if o.ordering != ordering || o.line > line {
                return false;
            }
            if (o.line..=o.end_line + 1).contains(&line) {
                return true;
            }
            // Contiguous-run coverage: every line strictly between the
            // comment's end and the site must itself carry an atomic
            // site.
            (o.end_line + 1..line).all(|l| atomic_lines.contains(&l))
        })
    }
}

/// The analyzed workspace: every first-party source file.
#[derive(Debug)]
pub struct Workspace {
    /// All analyzed files, in walk order.
    pub files: Vec<SourceFile>,
}

/// Walks `root`, lexes and annotates every first-party `.rs` file.
pub fn collect(root: &Path) -> Result<Workspace, String> {
    let mut paths = Vec::new();
    walk(root, root, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for rel in paths {
        let full = root.join(&rel);
        let source = fs::read_to_string(&full)
            .map_err(|e| format!("failed to read {}: {e}", full.display()))?;
        files.push(analyze(rel, &source));
    }
    Ok(Workspace { files })
}

/// Analyzes one file's source text (exposed for tests and fixtures).
pub fn analyze(rel_path: PathBuf, source: &str) -> SourceFile {
    let tokens = lex(source);
    let code: Vec<Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .cloned()
        .collect();
    let (crate_dir, class, is_crate_root) = classify(&rel_path);
    let test_ranges = find_test_ranges(&code);
    let mut allows = Vec::new();
    let mut ordering_allows = Vec::new();
    let mut suppression_diags = Vec::new();
    for token in &merge_comment_runs(tokens.iter().filter(|t| t.kind == TokenKind::Comment)) {
        parse_suppressions(token, &rel_path, &mut allows, &mut suppression_diags);
        parse_ordering_comments(
            token,
            &rel_path,
            &mut ordering_allows,
            &mut suppression_diags,
        );
    }
    SourceFile {
        rel_path,
        crate_dir,
        class,
        is_crate_root,
        code,
        test_ranges,
        allows,
        ordering_allows,
        suppression_diags,
    }
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("failed to list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("failed to read entry in {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(&*name, "target" | "vendor" | "node_modules") || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

fn classify(rel: &Path) -> (String, FileClass, bool) {
    let components: Vec<String> = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect();
    let crate_dir = if components.first().map(String::as_str) == Some("crates") {
        components.get(1).cloned().unwrap_or_default()
    } else {
        String::new()
    };
    let file_name = components.last().cloned().unwrap_or_default();
    let class = if file_name == "build.rs" {
        FileClass::BuildScript
    } else if components.iter().any(|c| c == "tests") {
        FileClass::Test
    } else if components.iter().any(|c| c == "benches") {
        FileClass::Bench
    } else if components.iter().any(|c| c == "examples") {
        FileClass::Example
    } else {
        FileClass::Lib
    };
    // `src/lib.rs` / `src/main.rs` directly under a package directory.
    let tail: Vec<&str> = components.iter().map(String::as_str).collect();
    let is_crate_root = matches!(
        tail.as_slice(),
        ["src", "lib.rs" | "main.rs"] | ["crates", _, "src", "lib.rs" | "main.rs"]
    );
    (crate_dir, class, is_crate_root)
}

/// Finds `#[cfg(test)]`-gated regions by strict token matching: the
/// exact sequence `# [ cfg ( test ) ]`, then (skipping any further
/// attributes) the next top-level `{ … }` block or `;`-terminated
/// item.
fn find_test_ranges(code: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_at(code, i) {
            let after_attr = i + 7;
            if let Some((start_line, end_line)) = item_extent(code, after_attr) {
                ranges.push((code[i].line.min(start_line), end_line));
            }
            i = after_attr;
        } else {
            i += 1;
        }
    }
    ranges
}

fn is_cfg_test_at(code: &[Token], i: usize) -> bool {
    let texts: Vec<&str> = code[i..].iter().take(7).map(|t| t.text.as_str()).collect();
    texts == ["#", "[", "cfg", "(", "test", ")", "]"]
}

/// From `start`, skips further outer attributes, then returns the
/// line extent of the next item: through its matching `}` if it opens
/// a brace block at nesting depth zero, or through the first `;`.
fn item_extent(code: &[Token], start: usize) -> Option<(usize, usize)> {
    let mut i = start;
    // Skip subsequent attributes (`#[…]`).
    while code.get(i).map(|t| t.text.as_str()) == Some("#")
        && code.get(i + 1).map(|t| t.text.as_str()) == Some("[")
    {
        let mut depth = 0usize;
        i += 1;
        while let Some(t) = code.get(i) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
    }
    let start_line = code.get(i)?.line;
    let mut paren_depth = 0usize;
    while let Some(t) = code.get(i) {
        match t.text.as_str() {
            "(" | "[" => paren_depth += 1,
            ")" | "]" => paren_depth = paren_depth.saturating_sub(1),
            ";" if paren_depth == 0 => return Some((start_line, t.line)),
            "{" if paren_depth == 0 => {
                // Match braces to the item's closing `}`.
                let mut depth = 0usize;
                while let Some(b) = code.get(i) {
                    match b.text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((start_line, b.line));
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return Some((start_line, code.last()?.line));
            }
            _ => {}
        }
        i += 1;
    }
    Some((start_line, code.last()?.line))
}

/// Parses `lint:allow(...)` / `lint:allow-file(...)` markers out of a
/// comment token. Malformed markers (no justification, unknown rule)
/// are reported instead of honored: a silent bad suppression would be
/// worse than no suppression.
fn parse_suppressions(
    token: &Token,
    rel_path: &Path,
    allows: &mut Vec<AllowSite>,
    diags: &mut Vec<Diagnostic>,
) {
    let text = &token.text;
    if is_doc_comment(text) {
        return;
    }
    let end_line = token.line + text.matches('\n').count();
    let mut search = 0usize;
    while let Some(found) = text[search..].find("lint:allow") {
        let at = search + found;
        let rest = &text[at..];
        let (is_file, after_kw) = if let Some(r) = rest.strip_prefix("lint:allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("lint:allow(") {
            (false, r)
        } else {
            search = at + "lint:allow".len();
            continue;
        };
        let Some(close) = after_kw.find(')') else {
            diags.push(
                Diagnostic::new(
                    SUPPRESSION_RULE,
                    rel_path,
                    token.line,
                    token.col,
                    "unterminated `lint:allow(` marker",
                )
                .with_help("write `// lint:allow(<rule>): <justification>`"),
            );
            return;
        };
        let rule = after_kw[..close].trim().to_owned();
        let tail = after_kw[close + 1..].trim_start();
        let justification = tail
            .strip_prefix(':')
            .map(str::trim_start)
            .unwrap_or("")
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .to_owned();
        if !known_rule(&rule) {
            diags.push(
                Diagnostic::new(
                    SUPPRESSION_RULE,
                    rel_path,
                    token.line,
                    token.col,
                    format!("`lint:allow({rule})` names an unknown rule"),
                )
                .with_help(format!(
                    "known rules: {}, {}",
                    RULES.join(", "),
                    ANALYZE_RULES.join(", ")
                )),
            );
        } else if justification.is_empty() {
            diags.push(
                Diagnostic::new(
                    SUPPRESSION_RULE,
                    rel_path,
                    token.line,
                    token.col,
                    format!("`lint:allow({rule})` has no justification"),
                )
                .with_help(
                    "suppressions must explain themselves: \
                     `// lint:allow(<rule>): <why this is sound>`",
                ),
            );
        } else {
            allows.push(AllowSite {
                rule,
                line: token.line,
                end_line,
                file_wide: is_file,
                justification,
            });
        }
        search = at + close;
    }
}

/// Joins runs of line-adjacent plain `//` comments into one logical
/// comment token. A justification is often several `//` lines long;
/// its marker must cover the code the *whole block* precedes, not
/// just the single line the marker happens to sit on. Doc comments
/// and block comments break a run — they are never marker carriers.
fn merge_comment_runs<'a>(comments: impl Iterator<Item = &'a Token>) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::new();
    let mut prev_mergeable = false;
    for tok in comments {
        let mergeable = tok.text.starts_with("//") && !is_doc_comment(&tok.text);
        if mergeable && prev_mergeable {
            if let Some(prev) = out.last_mut() {
                let prev_end = prev.line + prev.text.matches('\n').count();
                if prev_end + 1 == tok.line {
                    prev.text.push('\n');
                    prev.text.push_str(&tok.text);
                    continue;
                }
            }
        }
        out.push(tok.clone());
        prev_mergeable = mergeable;
    }
    out
}

fn is_doc_comment(text: &str) -> bool {
    // Doc comments never carry suppressions — they are API prose (and
    // may legitimately *describe* the marker syntax, as this module's
    // own docs do). Only plain `//` / `/* */` comments are scanned.
    text.starts_with("///")
        || text.starts_with("//!")
        || text.starts_with("/**")
        || text.starts_with("/*!")
}

/// Parses `// ordering(<Ord>): <validity argument>` markers out of a
/// comment token. The marker only counts when the parenthesized word
/// is a real memory-ordering name — prose like "the ordering(s)" is
/// ignored — but a recognizable marker without a justification is
/// reported, exactly like a bare `lint:allow`.
fn parse_ordering_comments(
    token: &Token,
    rel_path: &Path,
    ordering_allows: &mut Vec<OrderingSite>,
    diags: &mut Vec<Diagnostic>,
) {
    let text = &token.text;
    if is_doc_comment(text) {
        return;
    }
    let end_line = token.line + text.matches('\n').count();
    let mut search = 0usize;
    while let Some(found) = text[search..].find("ordering(") {
        let at = search + found;
        search = at + "ordering(".len();
        // `Ordering::Relaxed` prose or `atomic_ordering(` identifiers
        // are not markers: require a word boundary before `ordering(`.
        let boundary = text[..at]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != ':');
        if !boundary {
            continue;
        }
        let after_kw = &text[at + "ordering(".len()..];
        let Some(close) = after_kw.find(')') else {
            continue;
        };
        let ordering = after_kw[..close].trim();
        if !ORDERING_NAMES.contains(&ordering) {
            continue;
        }
        let tail = after_kw[close + 1..].trim_start();
        let justification = tail
            .strip_prefix(':')
            .map(str::trim_start)
            .unwrap_or("")
            .lines()
            .next()
            .unwrap_or("")
            .trim()
            .to_owned();
        if justification.is_empty() {
            diags.push(
                Diagnostic::new(
                    ORDERING_RULE,
                    rel_path,
                    token.line,
                    token.col,
                    format!("`ordering({ordering})` has no validity argument"),
                )
                .with_help(
                    "ordering justifications must explain themselves: \
                     `// ordering(<Ordering>): <why this ordering is sufficient>`",
                ),
            );
        } else {
            ordering_allows.push(OrderingSite {
                ordering: ordering.to_owned(),
                line: token.line,
                end_line,
                justification,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        analyze(PathBuf::from(path), src)
    }

    #[test]
    fn classification_by_path() {
        assert_eq!(file("crates/core/src/score.rs", "").crate_dir, "core");
        assert_eq!(file("crates/core/src/score.rs", "").class, FileClass::Lib);
        assert_eq!(file("crates/core/tests/t.rs", "").class, FileClass::Test);
        assert_eq!(
            file("crates/bench/benches/b.rs", "").class,
            FileClass::Bench
        );
        assert_eq!(file("examples/demo.rs", "").class, FileClass::Example);
        assert_eq!(file("build.rs", "").class, FileClass::BuildScript);
        assert!(file("crates/core/src/lib.rs", "").is_crate_root);
        assert!(file("src/lib.rs", "").is_crate_root);
        assert!(!file("crates/core/src/score.rs", "").is_crate_root);
    }

    #[test]
    fn cfg_test_regions_are_detected() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(!f.in_test_region(1));
        assert!(f.in_test_region(3));
        assert!(f.in_test_region(4));
        assert!(!f.in_test_region(6));
    }

    #[test]
    fn cfg_test_with_extra_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    fn t() {}\n}\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(f.in_test_region(4));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"x\")]\nmod gated {\n    fn f() {}\n}\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(!f.in_test_region(3));
    }

    #[test]
    fn test_files_are_wholly_exempt() {
        let f = file("crates/core/tests/t.rs", "fn t() {}\n");
        assert!(f.in_test_region(1));
    }

    #[test]
    fn line_suppressions_cover_their_line_and_the_next() {
        let src = "// lint:allow(no-panic): startup can only fail loudly\nfoo.unwrap();\nbar();\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(f.allowed("no-panic", 1));
        assert!(f.allowed("no-panic", 2));
        assert!(!f.allowed("no-panic", 3));
        assert!(!f.allowed("no-float-eq", 2));
        assert!(f.suppression_diags.is_empty());
    }

    #[test]
    fn file_suppressions_cover_everything() {
        let src = "// lint:allow-file(no-float-eq): bit-exact tie-break required here\nfn f() {}\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(f.allowed("no-float-eq", 999));
        assert!(f.suppression_diags.is_empty());
    }

    #[test]
    fn suppression_without_justification_is_reported() {
        let f = file(
            "crates/core/src/x.rs",
            "// lint:allow(no-panic)\nfoo.unwrap();\n",
        );
        assert_eq!(f.suppression_diags.len(), 1);
        assert!(f.suppression_diags[0].message.contains("no justification"));
        // And the suppression is NOT honored.
        assert!(!f.allowed("no-panic", 2));
    }

    #[test]
    fn doc_comments_never_carry_suppressions() {
        let src = "/// Write `// lint:allow(no-panic)` above the line to suppress.\nfn f() {}\n";
        let f = file("crates/core/src/x.rs", src);
        assert!(f.suppression_diags.is_empty());
        assert!(!f.allowed("no-panic", 2));
    }

    #[test]
    fn suppression_of_unknown_rule_is_reported() {
        let f = file(
            "crates/core/src/x.rs",
            "// lint:allow(no-pancakes): hungry\n",
        );
        assert_eq!(f.suppression_diags.len(), 1);
        assert!(f.suppression_diags[0].message.contains("unknown rule"));
    }
}
