//! Shape features (§2): "there are a number of ways to define closeness
//! between shapes … methods based on turning angles \[ACH+90\], on
//! various forms of moments [KK97, TC91], and on Fourier descriptors
//! \[Ja89\]."
//!
//! We implement all three families over simple polygons:
//!
//! * [`turning_distance`] — the Arkin et al. metric between turning
//!   functions, minimized over starting-point shifts (rotation
//!   invariant by construction, scale invariant via arc-length
//!   normalization);
//! * [`FourierDescriptor`] — magnitudes of the low-frequency DFT
//!   coefficients of the centered contour, normalized for scale
//!   (translation/rotation/start-point invariant);
//! * [`HuMoments`] — the seven moment invariants computed on a raster
//!   fill of the polygon.

use std::f64::consts::PI;
use std::fmt;

/// A 2-D point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Point {
        Point { x, y }
    }

    fn sub(self, o: Point) -> Point {
        Point::new(self.x - o.x, self.y - o.y)
    }

    fn norm(self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }
}

/// Error constructing shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ShapeError {
    /// Fewer than 3 vertices.
    TooFewVertices(usize),
    /// A vertex coordinate was not finite.
    NotFinite,
    /// The polygon has (numerically) zero perimeter or area.
    Degenerate,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::TooFewVertices(n) => write!(f, "polygon needs ≥ 3 vertices, got {n}"),
            ShapeError::NotFinite => write!(f, "vertex coordinates must be finite"),
            ShapeError::Degenerate => write!(f, "polygon is degenerate"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A simple polygon given by its vertices in order (closed implicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    vertices: Vec<Point>,
}

impl Polygon {
    /// Creates a polygon, validating vertex count and finiteness.
    pub fn new(vertices: Vec<Point>) -> Result<Polygon, ShapeError> {
        if vertices.len() < 3 {
            return Err(ShapeError::TooFewVertices(vertices.len()));
        }
        if vertices
            .iter()
            .any(|p| !p.x.is_finite() || !p.y.is_finite())
        {
            return Err(ShapeError::NotFinite);
        }
        let p = Polygon { vertices };
        if p.perimeter() < 1e-12 || p.area().abs() < 1e-12 {
            return Err(ShapeError::Degenerate);
        }
        Ok(p)
    }

    /// A regular `n`-gon of circumradius `r` centered at `(cx, cy)`,
    /// rotated by `phase` radians.
    pub fn regular(n: usize, r: f64, cx: f64, cy: f64, phase: f64) -> Result<Polygon, ShapeError> {
        let vertices = (0..n)
            .map(|i| {
                let t = phase + 2.0 * PI * i as f64 / n as f64;
                Point::new(cx + r * t.cos(), cy + r * t.sin())
            })
            .collect();
        Polygon::new(vertices)
    }

    /// A star with `spikes` points, alternating radii `r_outer`/`r_inner`.
    pub fn star(
        spikes: usize,
        r_outer: f64,
        r_inner: f64,
        cx: f64,
        cy: f64,
    ) -> Result<Polygon, ShapeError> {
        if spikes < 2 {
            return Err(ShapeError::TooFewVertices(spikes * 2));
        }
        let n = spikes * 2;
        let vertices = (0..n)
            .map(|i| {
                let r = if i % 2 == 0 { r_outer } else { r_inner };
                let t = 2.0 * PI * i as f64 / n as f64;
                Point::new(cx + r * t.cos(), cy + r * t.sin())
            })
            .collect();
        Polygon::new(vertices)
    }

    /// An axis-aligned rectangle.
    pub fn rectangle(cx: f64, cy: f64, w: f64, h: f64) -> Result<Polygon, ShapeError> {
        Polygon::new(vec![
            Point::new(cx - w / 2.0, cy - h / 2.0),
            Point::new(cx + w / 2.0, cy - h / 2.0),
            Point::new(cx + w / 2.0, cy + h / 2.0),
            Point::new(cx - w / 2.0, cy + h / 2.0),
        ])
    }

    /// An ellipse approximated by `n` vertices.
    pub fn ellipse(cx: f64, cy: f64, a: f64, b: f64, n: usize) -> Result<Polygon, ShapeError> {
        let vertices = (0..n)
            .map(|i| {
                let t = 2.0 * PI * i as f64 / n as f64;
                Point::new(cx + a * t.cos(), cy + b * t.sin())
            })
            .collect();
        Polygon::new(vertices)
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        (0..n)
            .map(|i| self.vertices[(i + 1) % n].sub(self.vertices[i]).norm())
            .sum()
    }

    /// Signed area via the shoelace formula (positive for CCW).
    pub fn area(&self) -> f64 {
        let n = self.vertices.len();
        0.5 * (0..n)
            .map(|i| {
                let p = self.vertices[i];
                let q = self.vertices[(i + 1) % n];
                p.x * q.y - q.x * p.y
            })
            .sum::<f64>()
    }

    /// The centroid of the vertex set.
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len() as f64;
        let (sx, sy) = self
            .vertices
            .iter()
            .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
        Point::new(sx / n, sy / n)
    }

    /// Resamples the boundary to `n` equally spaced points (by arc
    /// length), the common preprocessing for turning functions and
    /// Fourier descriptors.
    pub fn resample(&self, n: usize) -> Vec<Point> {
        let total = self.perimeter();
        let m = self.vertices.len();
        let mut out = Vec::with_capacity(n);
        let step = total / n as f64;
        let mut target = 0.0;
        let mut walked = 0.0;
        let mut seg = 0usize;
        let mut seg_start = self.vertices[0];
        let mut seg_end = self.vertices[1 % m];
        let mut seg_len = seg_end.sub(seg_start).norm();
        for _ in 0..n {
            while walked + seg_len < target && seg < 10 * m {
                walked += seg_len;
                seg += 1;
                seg_start = self.vertices[seg % m];
                seg_end = self.vertices[(seg + 1) % m];
                seg_len = seg_end.sub(seg_start).norm();
            }
            let t = if seg_len > 1e-300 {
                ((target - walked) / seg_len).clamp(0.0, 1.0)
            } else {
                0.0
            };
            out.push(Point::new(
                seg_start.x + t * (seg_end.x - seg_start.x),
                seg_start.y + t * (seg_end.y - seg_start.y),
            ));
            target += step;
        }
        out
    }
}

/// The discretized turning function of a polygon: cumulative exterior
/// angle sampled at `n` equal arc-length steps.
pub fn turning_function(poly: &Polygon, n: usize) -> Vec<f64> {
    let pts = poly.resample(n);
    let mut angles = Vec::with_capacity(n);
    let mut cumulative = 0.0;
    let mut prev_dir: Option<f64> = None;
    for i in 0..n {
        let a = pts[i];
        let b = pts[(i + 1) % n];
        let dir = (b.y - a.y).atan2(b.x - a.x);
        if let Some(p) = prev_dir {
            let mut delta = dir - p;
            while delta > PI {
                delta -= 2.0 * PI;
            }
            while delta < -PI {
                delta += 2.0 * PI;
            }
            cumulative += delta;
        }
        prev_dir = Some(dir);
        angles.push(cumulative);
    }
    angles
}

/// The turning-function distance of Arkin et al. \[ACH+90\]: L2 distance
/// between turning functions, minimized over starting-point shifts and
/// the accompanying rotation offset.
///
/// Both polygons are resampled to `n` points; the result is invariant
/// to translation, scale (via arc-length normalization), rotation (via
/// the optimal additive offset) and choice of starting vertex (via the
/// shift minimization).
pub fn turning_distance(a: &Polygon, b: &Polygon, n: usize) -> f64 {
    let ta = turning_function(a, n);
    let tb = turning_function(b, n);
    let mut best = f64::INFINITY;
    for shift in 0..n {
        // Optimal rotation offset for this shift is the mean difference.
        let mut diff_sum = 0.0;
        for i in 0..n {
            diff_sum += ta[i] - tb[(i + shift) % n];
        }
        let offset = diff_sum / n as f64;
        let mut err = 0.0;
        for i in 0..n {
            let d = ta[i] - tb[(i + shift) % n] - offset;
            err += d * d;
        }
        best = best.min(err / n as f64);
    }
    best.max(0.0).sqrt()
}

/// Fourier shape descriptor: magnitudes of DFT coefficients 1..=h of
/// the centered boundary (as a complex signal), normalized by the
/// magnitude of the first coefficient.
#[derive(Debug, Clone, PartialEq)]
pub struct FourierDescriptor {
    coefficients: Vec<f64>,
}

impl FourierDescriptor {
    /// Computes the descriptor with `harmonics` coefficients from an
    /// `n`-point resampling.
    pub fn of(poly: &Polygon, harmonics: usize, n: usize) -> FourierDescriptor {
        let pts = poly.resample(n);
        let c = poly.centroid();
        // Complex boundary signal z_t = (x − cx) + i(y − cy).
        let re: Vec<f64> = pts.iter().map(|p| p.x - c.x).collect();
        let im: Vec<f64> = pts.iter().map(|p| p.y - c.y).collect();
        // Naive DFT — n is small (≤ 256) and this avoids an FFT dep.
        let mag = |freq: usize| -> f64 {
            let mut sr = 0.0;
            let mut si = 0.0;
            for t in 0..n {
                let ang = -2.0 * PI * (freq * t) as f64 / n as f64;
                let (sa, ca) = ang.sin_cos();
                sr += re[t] * ca - im[t] * sa;
                si += re[t] * sa + im[t] * ca;
            }
            (sr * sr + si * si).sqrt()
        };
        let base = mag(1).max(1e-12);
        let coefficients = (2..=harmonics + 1).map(|f| mag(f) / base).collect();
        FourierDescriptor { coefficients }
    }

    /// The normalized coefficient magnitudes.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// L2 distance between descriptors.
    ///
    /// # Panics
    /// Panics if descriptor lengths differ (caller must use one
    /// `harmonics` setting per collection).
    pub fn distance(&self, other: &FourierDescriptor) -> f64 {
        assert_eq!(
            self.coefficients.len(),
            other.coefficients.len(),
            "descriptors must use the same number of harmonics"
        );
        self.coefficients
            .iter()
            .zip(&other.coefficients)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// The seven Hu moment invariants of a polygon's raster fill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HuMoments {
    /// φ₁..φ₇.
    pub phi: [f64; 7],
}

impl HuMoments {
    /// Computes the invariants on a `grid × grid` raster of the
    /// polygon's bounding box.
    pub fn of(poly: &Polygon, grid: usize) -> HuMoments {
        let vs = poly.vertices();
        let (mut minx, mut miny, mut maxx, mut maxy) = (
            f64::INFINITY,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
        );
        for p in vs {
            minx = minx.min(p.x);
            miny = miny.min(p.y);
            maxx = maxx.max(p.x);
            maxy = maxy.max(p.y);
        }
        let w = (maxx - minx).max(1e-9);
        let h = (maxy - miny).max(1e-9);
        let scale = w.max(h);

        // Raster fill by point-in-polygon sampling at cell centers.
        let mut raw = [[0.0f64; 4]; 4]; // raw[p][q] = m_pq for p+q ≤ 3
        let g = grid as f64;
        for yi in 0..grid {
            for xi in 0..grid {
                let x = minx + (xi as f64 + 0.5) / g * scale;
                let y = miny + (yi as f64 + 0.5) / g * scale;
                if point_in_polygon(Point::new(x, y), vs) {
                    let xn = (x - minx) / scale;
                    let yn = (y - miny) / scale;
                    let mut xp = 1.0;
                    for (p, row) in raw.iter_mut().enumerate() {
                        let mut yq = 1.0;
                        for (q, cell) in row.iter_mut().enumerate() {
                            if p + q <= 3 {
                                *cell += xp * yq;
                            }
                            yq *= yn;
                        }
                        xp *= xn;
                    }
                }
            }
        }

        // Weight each inside cell by its (normalized-coordinate) area,
        // so the discrete moments approximate the continuous integrals
        // and η/φ match their analytic values independent of `grid`.
        let cell_area = 1.0 / (g * g);
        for row in raw.iter_mut() {
            for v in row.iter_mut() {
                *v *= cell_area;
            }
        }

        let m00 = raw[0][0].max(1e-12);
        let xbar = raw[1][0] / m00;
        let ybar = raw[0][1] / m00;

        // Central moments (expanded for p+q ≤ 3).
        let mu20 = raw[2][0] - xbar * raw[1][0];
        let mu02 = raw[0][2] - ybar * raw[0][1];
        let mu11 = raw[1][1] - xbar * raw[0][1];
        let mu30 = raw[3][0] - 3.0 * xbar * raw[2][0] + 2.0 * xbar * xbar * raw[1][0];
        let mu03 = raw[0][3] - 3.0 * ybar * raw[0][2] + 2.0 * ybar * ybar * raw[0][1];
        let mu21 =
            raw[2][1] - 2.0 * xbar * raw[1][1] - ybar * raw[2][0] + 2.0 * xbar * xbar * raw[0][1];
        let mu12 =
            raw[1][2] - 2.0 * ybar * raw[1][1] - xbar * raw[0][2] + 2.0 * ybar * ybar * raw[1][0];

        // Scale-normalized moments η_pq = μ_pq / m00^(1+(p+q)/2).
        let eta = |mu: f64, p: usize, q: usize| mu / m00.powf(1.0 + (p + q) as f64 / 2.0);
        let n20 = eta(mu20, 2, 0);
        let n02 = eta(mu02, 0, 2);
        let n11 = eta(mu11, 1, 1);
        let n30 = eta(mu30, 3, 0);
        let n03 = eta(mu03, 0, 3);
        let n21 = eta(mu21, 2, 1);
        let n12 = eta(mu12, 1, 2);

        let phi1 = n20 + n02;
        let phi2 = (n20 - n02).powi(2) + 4.0 * n11 * n11;
        let phi3 = (n30 - 3.0 * n12).powi(2) + (3.0 * n21 - n03).powi(2);
        let phi4 = (n30 + n12).powi(2) + (n21 + n03).powi(2);
        let phi5 = (n30 - 3.0 * n12)
            * (n30 + n12)
            * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
            + (3.0 * n21 - n03) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));
        let phi6 = (n20 - n02) * ((n30 + n12).powi(2) - (n21 + n03).powi(2))
            + 4.0 * n11 * (n30 + n12) * (n21 + n03);
        let phi7 = (3.0 * n21 - n03)
            * (n30 + n12)
            * ((n30 + n12).powi(2) - 3.0 * (n21 + n03).powi(2))
            - (n30 - 3.0 * n12) * (n21 + n03) * (3.0 * (n30 + n12).powi(2) - (n21 + n03).powi(2));

        HuMoments {
            phi: [phi1, phi2, phi3, phi4, phi5, phi6, phi7],
        }
    }

    /// Canberra-style relative distance over the seven invariants:
    /// `Σᵢ |φᵢ(a) − φᵢ(b)| / (|φᵢ(a)| + |φᵢ(b)| + ε)`, in `[0, 7]`.
    ///
    /// Hu components span many orders of magnitude, and the
    /// higher-order ones are *zero* for symmetric shapes — which a
    /// raster renders as a random residue (≈1e-10 at 128²) of arbitrary
    /// sign. A log-magnitude transform would blow such residues up into
    /// dominant terms; the relative form with an ε floor instead maps
    /// zero-vs-residue pairs to ≈0 while genuine signal differences
    /// (say φ₅ = 5e-6 vs 0 for an asymmetric outline) still score near
    /// the full per-component weight of 1.
    pub fn distance(&self, other: &HuMoments) -> f64 {
        const EPS: f64 = 1e-8;
        self.phi
            .iter()
            .zip(&other.phi)
            .map(|(&a, &b)| (a - b).abs() / (a.abs() + b.abs() + EPS))
            .sum()
    }
}

/// Even-odd ray-casting point-in-polygon test.
fn point_in_polygon(p: Point, vs: &[Point]) -> bool {
    let n = vs.len();
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let (vi, vj) = (vs[i], vs[j]);
        if ((vi.y > p.y) != (vj.y > p.y))
            && (p.x < (vj.x - vi.x) * (p.y - vi.y) / (vj.y - vi.y) + vi.x)
        {
            inside = !inside;
        }
        j = i;
    }
    inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polygon_validation() {
        assert!(matches!(
            Polygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]),
            Err(ShapeError::TooFewVertices(2))
        ));
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(f64::NAN, 0.0),
                Point::new(1.0, 1.0),
            ]),
            Err(ShapeError::NotFinite)
        ));
        assert!(matches!(
            Polygon::new(vec![
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
                Point::new(0.0, 0.0),
            ]),
            Err(ShapeError::Degenerate)
        ));
    }

    #[test]
    fn rectangle_geometry() {
        let r = Polygon::rectangle(0.0, 0.0, 4.0, 2.0).unwrap();
        assert!((r.perimeter() - 12.0).abs() < 1e-12);
        assert!((r.area().abs() - 8.0).abs() < 1e-12);
        let c = r.centroid();
        assert!(c.x.abs() < 1e-12 && c.y.abs() < 1e-12);
    }

    #[test]
    fn resample_spacing_is_uniform() {
        let r = Polygon::rectangle(0.0, 0.0, 2.0, 2.0).unwrap();
        let pts = r.resample(8);
        assert_eq!(pts.len(), 8);
        for w in pts.windows(2) {
            let d = w[1].sub(w[0]).norm();
            assert!((d - 1.0).abs() < 1e-9, "gap {d}");
        }
    }

    #[test]
    fn turning_function_total_rotation_approaches_2pi() {
        // The cumulative turning over one traversal of a convex CCW
        // polygon is 2π; the discretized function records n−1 of the n
        // inter-edge turns, so a smooth outline (where each single turn
        // is ≈ 2π/n) gets within 2π/n of the full revolution.
        let smooth = Polygon::ellipse(0.0, 0.0, 1.0, 1.0, 48).unwrap();
        let tf = turning_function(&smooth, 128);
        let total = tf.last().unwrap();
        assert!((total - 2.0 * PI).abs() < 0.2, "total {total}");
        // A square's missing turn is a full corner, π/2:
        let sq = Polygon::regular(4, 1.0, 0.0, 0.0, 0.0).unwrap();
        let sq_total = *turning_function(&sq, 64).last().unwrap();
        assert!((sq_total - 1.5 * PI).abs() < 0.2, "square total {sq_total}");
    }

    #[test]
    fn turning_distance_is_rotation_and_scale_invariant() {
        let a = Polygon::regular(5, 1.0, 0.0, 0.0, 0.0).unwrap();
        let b = Polygon::regular(5, 3.5, 7.0, -2.0, 1.1).unwrap();
        let d = turning_distance(&a, &b, 64);
        assert!(d < 0.12, "same shape should be near 0, got {d}");
    }

    #[test]
    fn turning_distance_separates_square_from_star() {
        let sq = Polygon::regular(4, 1.0, 0.0, 0.0, 0.0).unwrap();
        let star = Polygon::star(5, 1.0, 0.4, 0.0, 0.0).unwrap();
        let same = turning_distance(&sq, &sq, 64);
        let diff = turning_distance(&sq, &star, 64);
        assert!(same < 1e-9);
        assert!(diff > 0.3, "square vs star should differ, got {diff}");
    }

    #[test]
    fn fourier_descriptor_invariances() {
        let a = Polygon::regular(6, 1.0, 0.0, 0.0, 0.0).unwrap();
        let b = Polygon::regular(6, 2.0, 5.0, 5.0, 0.7).unwrap();
        let fa = FourierDescriptor::of(&a, 8, 128);
        let fb = FourierDescriptor::of(&b, 8, 128);
        assert!(fa.distance(&fb) < 0.05, "got {}", fa.distance(&fb));
    }

    #[test]
    fn fourier_descriptor_separates_shapes() {
        let hexagon = Polygon::regular(6, 1.0, 0.0, 0.0, 0.0).unwrap();
        let star = Polygon::star(6, 1.0, 0.35, 0.0, 0.0).unwrap();
        let fh = FourierDescriptor::of(&hexagon, 8, 128);
        let fs = FourierDescriptor::of(&star, 8, 128);
        assert!(fh.distance(&fs) > 0.1, "got {}", fh.distance(&fs));
    }

    #[test]
    #[should_panic(expected = "harmonics")]
    fn fourier_descriptor_length_mismatch_panics() {
        let a = Polygon::regular(6, 1.0, 0.0, 0.0, 0.0).unwrap();
        let f1 = FourierDescriptor::of(&a, 4, 64);
        let f2 = FourierDescriptor::of(&a, 8, 64);
        let _ = f1.distance(&f2);
    }

    #[test]
    fn hu_moments_translation_and_scale_invariant() {
        let a = Polygon::rectangle(0.0, 0.0, 2.0, 1.0).unwrap();
        let b = Polygon::rectangle(10.0, -3.0, 6.0, 3.0).unwrap();
        let ha = HuMoments::of(&a, 96);
        let hb = HuMoments::of(&b, 96);
        assert!(
            (ha.phi[0] - hb.phi[0]).abs() < 0.02,
            "phi1 {} vs {}",
            ha.phi[0],
            hb.phi[0]
        );
        assert!(ha.distance(&hb) < 0.5, "got {}", ha.distance(&hb));
    }

    #[test]
    fn hu_moments_are_rotation_invariant() {
        // Rotate a 2:1 rectangle by assorted angles; the Hu invariants
        // must stay put (that is their whole point).
        let base = Polygon::rectangle(0.0, 0.0, 2.0, 1.0).unwrap();
        let h_base = HuMoments::of(&base, 128);
        for angle in [0.3f64, 0.9, 1.4] {
            let (sin, cos) = angle.sin_cos();
            let rotated = Polygon::new(
                base.vertices()
                    .iter()
                    .map(|p| Point::new(p.x * cos - p.y * sin, p.x * sin + p.y * cos))
                    .collect(),
            )
            .unwrap();
            let h_rot = HuMoments::of(&rotated, 128);
            assert!(
                (h_base.phi[0] - h_rot.phi[0]).abs() < 0.03,
                "phi1 drifted under rotation {angle}: {} vs {}",
                h_base.phi[0],
                h_rot.phi[0]
            );
            assert!(
                h_base.distance(&h_rot) < 1.0,
                "distance {} too large at angle {angle}",
                h_base.distance(&h_rot)
            );
        }
    }

    #[test]
    fn hu_moments_separate_disc_from_bar() {
        let disc = Polygon::ellipse(0.0, 0.0, 1.0, 1.0, 48).unwrap();
        let bar = Polygon::rectangle(0.0, 0.0, 4.0, 0.5).unwrap();
        let hd = HuMoments::of(&disc, 96);
        let hb = HuMoments::of(&bar, 96);
        // φ₁ (spread) differs markedly between a disc and a long bar.
        assert!((hd.phi[0] - hb.phi[0]).abs() > 0.02);
    }

    #[test]
    fn point_in_polygon_basics() {
        let sq = Polygon::rectangle(0.0, 0.0, 2.0, 2.0).unwrap();
        assert!(point_in_polygon(Point::new(0.0, 0.0), sq.vertices()));
        assert!(!point_in_polygon(Point::new(5.0, 0.0), sq.vertices()));
    }

    #[test]
    fn star_constructor_validates() {
        assert!(Polygon::star(1, 1.0, 0.5, 0.0, 0.0).is_err());
        assert!(Polygon::star(5, 1.0, 0.5, 0.0, 0.0).is_ok());
    }
}
