//! Weighting the importance of subqueries (§5; Fagin–Wimmers \[FW97\]).
//!
//! A user may care twice as much about `Color='red'` as about
//! `Shape='round'`. Given an (unweighted, symmetric) rule `f` and a
//! weighting `Θ = (θ₁, …, θ_m)` with `θ₁ ≥ … ≥ θ_m ≥ 0` and `Σθᵢ = 1`,
//! the weighted rule is formula (5) of the paper:
//!
//! ```text
//! f_Θ(x₁, …, x_m) = (θ₁ − θ₂)·f(x₁)
//!                 + 2·(θ₂ − θ₃)·f(x₁, x₂)
//!                 + 3·(θ₃ − θ₄)·f(x₁, x₂, x₃)
//!                 + …
//!                 + m·θ_m·f(x₁, …, x_m)
//! ```
//!
//! — a convex combination of `f` on *prefixes* of the arguments sorted
//! by descending weight. \[FW97\] proves it is the unique choice
//! satisfying:
//!
//! * **D1** — equal weights reduce to the unweighted `f`;
//! * **D2** — a zero-weight argument can be dropped;
//! * **D3′** — local linearity in the weighting (which implies **D3**,
//!   continuity in the weights).
//!
//! Monotonicity and strictness of `f` are inherited by `f_Θ`, so
//! algorithm A₀ remains correct and optimal in the weighted case.

use std::fmt;

use crate::score::Score;
use crate::scoring::ScoringFunction;

/// Error constructing a [`Weighting`].
#[derive(Debug, Clone, PartialEq)]
pub enum WeightingError {
    /// No weights were supplied.
    Empty,
    /// A weight was negative, NaN, or infinite.
    InvalidWeight(f64),
    /// The weights do not sum to 1 (within 1e-9); payload is the sum.
    NotNormalized(f64),
    /// All ratio entries were zero, so no normalization exists.
    ZeroTotal,
}

impl fmt::Display for WeightingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WeightingError::Empty => write!(f, "weighting must be non-empty"),
            WeightingError::InvalidWeight(w) => write!(f, "invalid weight {w}"),
            WeightingError::NotNormalized(s) => {
                write!(f, "weights sum to {s}, expected 1")
            }
            WeightingError::ZeroTotal => write!(f, "ratios sum to zero"),
        }
    }
}

impl std::error::Error for WeightingError {}

/// A weighting `Θ = (θ₁, …, θ_m)`: nonnegative reals summing to 1, one
/// per subquery.
///
/// The weighting remembers the *user's* argument order; the ordered
/// (descending) permutation required by formula (5) is applied
/// internally when combining, so callers pass weights and grades in the
/// same positional order.
///
/// ```
/// use fmdb_core::weights::Weighting;
/// // "care twice as much about color as shape" — the paper's example,
/// // θ = (2/3, 1/3).
/// let theta = Weighting::from_ratios(&[2.0, 1.0]).unwrap();
/// assert!((theta.weights()[0] - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Weighting {
    weights: Vec<f64>,
}

impl Weighting {
    /// Creates a weighting from weights that already sum to 1.
    pub fn new(weights: Vec<f64>) -> Result<Weighting, WeightingError> {
        if weights.is_empty() {
            return Err(WeightingError::Empty);
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightingError::InvalidWeight(w));
            }
        }
        let sum: f64 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(WeightingError::NotNormalized(sum));
        }
        Ok(Weighting { weights })
    }

    /// Creates a weighting from arbitrary nonnegative ratios (slider
    /// positions), normalizing them to sum to 1.
    pub fn from_ratios(ratios: &[f64]) -> Result<Weighting, WeightingError> {
        if ratios.is_empty() {
            return Err(WeightingError::Empty);
        }
        for &w in ratios {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightingError::InvalidWeight(w));
            }
        }
        let sum: f64 = ratios.iter().sum();
        if sum <= 0.0 {
            return Err(WeightingError::ZeroTotal);
        }
        Ok(Weighting {
            weights: ratios.iter().map(|w| w / sum).collect(),
        })
    }

    /// The uniform weighting `(1/m, …, 1/m)` — by D1, combining with it
    /// is the same as using the unweighted rule.
    pub fn uniform(m: usize) -> Result<Weighting, WeightingError> {
        if m == 0 {
            return Err(WeightingError::Empty);
        }
        Ok(Weighting {
            weights: vec![1.0 / m as f64; m],
        })
    }

    /// The weights in the caller's positional order.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The arity `m`.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// True if all weights are equal (within 1e-12).
    pub fn is_uniform(&self) -> bool {
        let first = self.weights[0];
        self.weights.iter().all(|&w| (w - first).abs() <= 1e-12)
    }

    /// The convex combination `α·Θ + (1−α)·Θ'` of two weightings of the
    /// same arity — the operation local linearity (D3′) quantifies over.
    ///
    /// Returns `None` if arities differ or `α ∉ [0,1]`.
    pub fn mix(&self, other: &Weighting, alpha: f64) -> Option<Weighting> {
        if self.arity() != other.arity() || !(0.0..=1.0).contains(&alpha) {
            return None;
        }
        Some(Weighting {
            weights: self
                .weights
                .iter()
                .zip(&other.weights)
                .map(|(&a, &b)| alpha * a + (1.0 - alpha) * b)
                .collect(),
        })
    }
}

/// Evaluates the Fagin–Wimmers weighted rule `f_Θ(x₁, …, x_m)`.
///
/// `weights` and `scores` are in the same positional order; the pair
/// list is sorted by descending weight (stable, so ties keep caller
/// order — the paper shows the value does not depend on how ties are
/// broken, because tied prefixes are multiplied by `θᵢ − θᵢ₊₁ = 0`)
/// before the prefix expansion is applied.
///
/// # Panics
/// Panics if `weights.arity() != scores.len()` — callers own arity
/// agreement; the query layer validates it before evaluation.
pub fn weighted_combine<F: ScoringFunction + ?Sized>(
    f: &F,
    weights: &Weighting,
    scores: &[Score],
) -> Score {
    assert_eq!(
        weights.arity(),
        scores.len(),
        "weighting of arity {} applied to {} scores",
        weights.arity(),
        scores.len()
    );
    let m = scores.len();
    // Sort (θ, x) jointly by descending θ.
    let mut pairs: Vec<(f64, Score)> = weights
        .weights
        .iter()
        .copied()
        .zip(scores.iter().copied())
        .collect();
    // Weights are validated finite at `Weighting` construction, where
    // IEEE total order coincides with numeric order.
    pairs.sort_by(|a, b| b.0.total_cmp(&a.0));

    let mut total = 0.0;
    let mut prefix: Vec<Score> = Vec::with_capacity(m);
    for i in 0..m {
        prefix.push(pairs[i].1);
        let theta_i = pairs[i].0;
        let theta_next = if i + 1 < m { pairs[i + 1].0 } else { 0.0 };
        // The pairs are sorted by descending θ, so the coefficient is
        // never negative; the ordered comparison (not float equality —
        // see `crate::float`) skips exactly the vanishing terms.
        let coeff = (i + 1) as f64 * (theta_i - theta_next);
        if coeff > 0.0 {
            total += coeff * f.combine(&prefix).value();
        }
    }
    Score::clamped(total)
}

/// A weighted scoring function `f_Θ`: wraps an underlying rule and a
/// weighting into something the algorithms can use directly.
///
/// Since \[FW97\] shows monotonicity and strictness are inherited,
/// algorithm A₀ "continues to be correct and optimal in the weighted
/// case" (§5) — the middleware treats `Weighted` like any other
/// monotone scoring function.
#[derive(Debug, Clone)]
pub struct Weighted<F> {
    inner: F,
    weighting: Weighting,
}

impl<F: ScoringFunction> Weighted<F> {
    /// Wraps `inner` with `weighting`.
    pub fn new(inner: F, weighting: Weighting) -> Weighted<F> {
        Weighted { inner, weighting }
    }

    /// The underlying unweighted rule.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    /// The weighting.
    pub fn weighting(&self) -> &Weighting {
        &self.weighting
    }
}

impl<F: ScoringFunction> ScoringFunction for Weighted<F> {
    fn name(&self) -> String {
        format!(
            "weighted({}, {:?})",
            self.inner.name(),
            self.weighting.weights
        )
    }

    fn combine(&self, scores: &[Score]) -> Score {
        weighted_combine(&self.inner, &self.weighting, scores)
    }

    fn is_strict(&self) -> bool {
        // Strictness is inherited when every weight is positive; a
        // zero-weight argument is dropped (D2) and thus unconstrained.
        self.inner.is_strict() && self.weighting.weights.iter().all(|&w| w > 0.0)
    }

    fn is_monotone(&self) -> bool {
        self.inner.is_monotone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::means::ArithmeticMean;
    use crate::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(Weighting::new(vec![]), Err(WeightingError::Empty)));
        assert!(matches!(
            Weighting::new(vec![0.5, -0.5, 1.0]),
            Err(WeightingError::InvalidWeight(_))
        ));
        assert!(matches!(
            Weighting::new(vec![0.5, 0.6]),
            Err(WeightingError::NotNormalized(_))
        ));
        assert!(matches!(
            Weighting::from_ratios(&[0.0, 0.0]),
            Err(WeightingError::ZeroTotal)
        ));
        assert!(Weighting::new(vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn from_ratios_normalizes() {
        let w = Weighting::from_ratios(&[2.0, 1.0]).unwrap();
        assert!((w.weights()[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((w.weights()[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn d1_equal_weights_reduce_to_unweighted() {
        let theta = Weighting::uniform(3).unwrap();
        let xs = [s(0.2), s(0.9), s(0.5)];
        let weighted = weighted_combine(&Min, &theta, &xs);
        assert!(weighted.approx_eq(Min.combine(&xs), 1e-12));
    }

    #[test]
    fn d2_zero_weight_argument_is_dropped() {
        let theta = Weighting::new(vec![0.6, 0.4, 0.0]).unwrap();
        let with_zero = weighted_combine(&Min, &theta, &[s(0.7), s(0.5), s(0.01)]);
        let theta2 = Weighting::new(vec![0.6, 0.4]).unwrap();
        let without = weighted_combine(&Min, &theta2, &[s(0.7), s(0.5)]);
        assert!(with_zero.approx_eq(without, 1e-12));
    }

    #[test]
    fn d3_continuity_in_the_weights() {
        // Numeric continuity probe: small weight perturbations produce
        // small output changes.
        let xs = [s(0.9), s(0.2)];
        let base = weighted_combine(&Min, &Weighting::new(vec![0.5, 0.5]).unwrap(), &xs);
        for eps in [1e-3, 1e-6, 1e-9] {
            let w = Weighting::new(vec![0.5 + eps, 0.5 - eps]).unwrap();
            let v = weighted_combine(&Min, &w, &xs);
            assert!(
                (v.value() - base.value()).abs() <= 2.0 * eps + 1e-12,
                "discontinuous at eps={eps}"
            );
        }
    }

    #[test]
    fn local_linearity_d3_prime() {
        // For ordered Θ, Θ′: f_{αΘ+(1−α)Θ′}(X) = α·f_Θ(X) + (1−α)·f_Θ′(X).
        let t1 = Weighting::new(vec![0.7, 0.2, 0.1]).unwrap();
        let t2 = Weighting::new(vec![0.5, 0.3, 0.2]).unwrap();
        let xs = [s(0.9), s(0.4), s(0.6)];
        for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mixed = t1.mix(&t2, alpha).unwrap();
            let lhs = weighted_combine(&Min, &mixed, &xs);
            let rhs = alpha * weighted_combine(&Min, &t1, &xs).value()
                + (1.0 - alpha) * weighted_combine(&Min, &t2, &xs).value();
            assert!((lhs.value() - rhs).abs() < 1e-12, "alpha={alpha}");
        }
    }

    #[test]
    fn weighted_average_is_the_plain_weighted_sum() {
        // §5: "There is one scoring function where the answer is easy,
        // namely the average": f_Θ = Σ θᵢ·xᵢ. The formula must reproduce
        // this.
        let theta = Weighting::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        let xs = [s(0.9), s(0.3)];
        let v = weighted_combine(&ArithmeticMean, &theta, &xs);
        let expected = 2.0 / 3.0 * 0.9 + 1.0 / 3.0 * 0.3;
        assert!((v.value() - expected).abs() < 1e-12);
    }

    #[test]
    fn weighted_min_is_not_the_weighted_sum() {
        // §5's cautionary example: with equal weights, θ₁x₁ + θ₂x₂ would
        // give (x₁+x₂)/2, but the weighted min must give min(x₁, x₂).
        let theta = Weighting::uniform(2).unwrap();
        let xs = [s(0.9), s(0.3)];
        let v = weighted_combine(&Min, &theta, &xs);
        assert!(v.approx_eq(s(0.3), 1e-12));
        assert!(!v.approx_eq(s(0.6), 1e-9));
    }

    #[test]
    fn paper_prefix_expansion_by_hand() {
        // m = 3, Θ = (0.5, 0.3, 0.2), f = min, X = (0.9, 0.4, 0.6):
        // ordered already; f_Θ = (0.5−0.3)·f(0.9) + 2·(0.3−0.2)·f(0.9,0.4)
        //                    + 3·0.2·f(0.9,0.4,0.6)
        //                 = 0.2·0.9 + 0.2·0.4 + 0.6·0.4 = 0.18+0.08+0.24.
        let theta = Weighting::new(vec![0.5, 0.3, 0.2]).unwrap();
        let v = weighted_combine(&Min, &theta, &[s(0.9), s(0.4), s(0.6)]);
        assert!((v.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_weights_are_handled_by_joint_sort() {
        // Same query with weights given in a different positional order
        // must score the same objects identically.
        let a = weighted_combine(
            &Min,
            &Weighting::new(vec![0.3, 0.7]).unwrap(),
            &[s(0.4), s(0.9)],
        );
        let b = weighted_combine(
            &Min,
            &Weighting::new(vec![0.7, 0.3]).unwrap(),
            &[s(0.9), s(0.4)],
        );
        assert!(a.approx_eq(b, 1e-12));
    }

    #[test]
    fn tie_break_does_not_matter() {
        // θ₂ = θ₃: the second summand is multiplied by 0, so swapping
        // x₂/x₃ cannot change the result (the paper's remark after (5)).
        let theta = Weighting::new(vec![0.5, 0.25, 0.25]).unwrap();
        let v1 = weighted_combine(&Min, &theta, &[s(0.9), s(0.4), s(0.6)]);
        let v2 = weighted_combine(&Min, &theta, &[s(0.9), s(0.6), s(0.4)]);
        assert!(v1.approx_eq(v2, 1e-12));
    }

    #[test]
    fn monotonicity_is_inherited() {
        let theta = Weighting::new(vec![0.6, 0.4]).unwrap();
        let f = Weighted::new(Min, theta);
        assert!(f.is_monotone());
        let grid = [0.0, 0.25, 0.5, 0.75, 1.0];
        for &a in &grid {
            for &b in &grid {
                for &a2 in &grid {
                    if a2 >= a {
                        assert!(f.combine(&[s(a2), s(b)]) >= f.combine(&[s(a), s(b)]));
                    }
                }
            }
        }
    }

    #[test]
    fn strictness_is_inherited_for_positive_weights() {
        let f = Weighted::new(Min, Weighting::new(vec![0.6, 0.4]).unwrap());
        assert!(f.is_strict());
        assert_eq!(f.combine(&[Score::ONE, Score::ONE]), Score::ONE);
        assert!(f.combine(&[Score::ONE, s(0.99)]) < Score::ONE);

        let g = Weighted::new(Min, Weighting::new(vec![1.0, 0.0]).unwrap());
        assert!(!g.is_strict());
        assert_eq!(g.combine(&[Score::ONE, s(0.2)]), Score::ONE);
    }

    #[test]
    fn mix_rejects_mismatched_arity_and_bad_alpha() {
        let a = Weighting::uniform(2).unwrap();
        let b = Weighting::uniform(3).unwrap();
        assert!(a.mix(&b, 0.5).is_none());
        let c = Weighting::uniform(2).unwrap();
        assert!(a.mix(&c, 1.5).is_none());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let theta = Weighting::uniform(2).unwrap();
        let _ = weighted_combine(&Min, &theta, &[Score::ONE]);
    }
}
