//! Axis-aligned geometry for multidimensional access methods (§2.1).

use std::fmt;

/// Error for malformed geometric input.
#[derive(Debug, Clone, PartialEq)]
pub enum GeometryError {
    /// Zero-dimensional input.
    EmptyDimension,
    /// Dimensions of two operands differ.
    DimensionMismatch {
        /// Expected dimensionality.
        expected: usize,
        /// Offending dimensionality.
        got: usize,
    },
    /// A coordinate was NaN or infinite.
    NotFinite,
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::EmptyDimension => write!(f, "dimension must be positive"),
            GeometryError::DimensionMismatch { expected, got } => {
                write!(f, "expected dimension {expected}, got {got}")
            }
            GeometryError::NotFinite => write!(f, "coordinates must be finite"),
        }
    }
}

impl std::error::Error for GeometryError {}

/// Validates a point for indexing.
pub fn validate_point(point: &[f64]) -> Result<(), GeometryError> {
    if point.is_empty() {
        return Err(GeometryError::EmptyDimension);
    }
    if point.iter().any(|v| !v.is_finite()) {
        return Err(GeometryError::NotFinite);
    }
    Ok(())
}

/// Squared Euclidean distance between points.
///
/// # Panics
/// Debug-asserts equal dimensionality; indexes validate on insert.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between points.
#[inline]
pub fn dist(a: &[f64], b: &[f64]) -> f64 {
    dist2(a, b).sqrt()
}

/// An axis-aligned minimum bounding rectangle in d dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Mbr {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl Mbr {
    /// The degenerate MBR of a single point.
    pub fn of_point(p: &[f64]) -> Mbr {
        Mbr {
            min: p.to_vec(),
            max: p.to_vec(),
        }
    }

    /// Builds from explicit corners.
    ///
    /// # Panics
    /// Debug-asserts `min[d] ≤ max[d]` — internal construction only.
    pub fn new(min: Vec<f64>, max: Vec<f64>) -> Mbr {
        debug_assert_eq!(min.len(), max.len());
        debug_assert!(min.iter().zip(&max).all(|(a, b)| a <= b));
        Mbr { min, max }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Lower corner.
    pub fn min(&self) -> &[f64] {
        &self.min
    }

    /// Upper corner.
    pub fn max(&self) -> &[f64] {
        &self.max
    }

    /// Grows to cover `p`.
    pub fn expand_point(&mut self, p: &[f64]) {
        for (d, &v) in p.iter().enumerate() {
            self.min[d] = self.min[d].min(v);
            self.max[d] = self.max[d].max(v);
        }
    }

    /// Grows to cover `other`.
    pub fn expand_mbr(&mut self, other: &Mbr) {
        for d in 0..self.min.len() {
            self.min[d] = self.min[d].min(other.min[d]);
            self.max[d] = self.max[d].max(other.max[d]);
        }
    }

    /// The union of two MBRs.
    pub fn union(&self, other: &Mbr) -> Mbr {
        let mut u = self.clone();
        u.expand_mbr(other);
        u
    }

    /// Hypervolume (product of extents).
    pub fn volume(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(a, b)| b - a).product()
    }

    /// Margin (sum of extents) — the R*-tree split criterion.
    pub fn margin(&self) -> f64 {
        self.min.iter().zip(&self.max).map(|(a, b)| b - a).sum()
    }

    /// Volume increase required to also cover `other`.
    pub fn enlargement(&self, other: &Mbr) -> f64 {
        self.union(other).volume() - self.volume()
    }

    /// Volume of the intersection with `other` (0 if disjoint).
    pub fn overlap(&self, other: &Mbr) -> f64 {
        let mut v = 1.0;
        for d in 0..self.dim() {
            let lo = self.min[d].max(other.min[d]);
            let hi = self.max[d].min(other.max[d]);
            if hi <= lo {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// True if the MBRs intersect (closed boxes).
    pub fn intersects(&self, other: &Mbr) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(other.min.iter().zip(&other.max))
            .all(|((alo, ahi), (blo, bhi))| alo <= bhi && blo <= ahi)
    }

    /// True if `p` lies inside (closed).
    pub fn contains_point(&self, p: &[f64]) -> bool {
        self.min
            .iter()
            .zip(&self.max)
            .zip(p)
            .all(|((lo, hi), v)| lo <= v && v <= hi)
    }

    /// Squared minimum distance from `p` to this box (0 if inside) —
    /// the MINDIST bound driving best-first k-NN search.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        let mut s = 0.0;
        for (d, &v) in p.iter().enumerate() {
            let delta = if v < self.min[d] {
                self.min[d] - v
            } else if v > self.max[d] {
                v - self.max[d]
            } else {
                0.0
            };
            s += delta * delta;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mbr(min: &[f64], max: &[f64]) -> Mbr {
        Mbr::new(min.to_vec(), max.to_vec())
    }

    #[test]
    fn point_validation() {
        assert!(validate_point(&[]).is_err());
        assert!(validate_point(&[1.0, f64::NAN]).is_err());
        assert!(validate_point(&[1.0, f64::INFINITY]).is_err());
        assert!(validate_point(&[1.0, 2.0]).is_ok());
    }

    #[test]
    fn distances() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn volume_margin_union() {
        let a = mbr(&[0.0, 0.0], &[2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = mbr(&[1.0, 1.0], &[4.0, 2.0]);
        let u = a.union(&b);
        assert_eq!(u.min(), &[0.0, 0.0]);
        assert_eq!(u.max(), &[4.0, 3.0]);
        assert_eq!(a.enlargement(&b), 12.0 - 6.0);
    }

    #[test]
    fn overlap_and_intersection() {
        let a = mbr(&[0.0, 0.0], &[2.0, 2.0]);
        let b = mbr(&[1.0, 1.0], &[3.0, 3.0]);
        assert_eq!(a.overlap(&b), 1.0);
        assert!(a.intersects(&b));
        let c = mbr(&[5.0, 5.0], &[6.0, 6.0]);
        assert_eq!(a.overlap(&c), 0.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn contains_and_min_dist() {
        let a = mbr(&[0.0, 0.0], &[2.0, 2.0]);
        assert!(a.contains_point(&[1.0, 1.0]));
        assert!(a.contains_point(&[0.0, 2.0]));
        assert!(!a.contains_point(&[2.1, 1.0]));
        assert_eq!(a.min_dist2(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist2(&[3.0, 2.0]), 1.0);
        assert_eq!(a.min_dist2(&[3.0, 3.0]), 2.0);
    }

    #[test]
    fn expand_point_grows_box() {
        let mut a = Mbr::of_point(&[1.0, 1.0]);
        a.expand_point(&[0.0, 3.0]);
        assert_eq!(a.min(), &[0.0, 1.0]);
        assert_eq!(a.max(), &[1.0, 3.0]);
        assert_eq!(Mbr::of_point(&[1.0]).volume(), 0.0);
    }
}
