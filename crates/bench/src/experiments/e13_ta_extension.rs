//! E13 — extension: the Threshold Algorithm against A₀, quantifying the
//! headroom left by §6's open problem ("finding efficient algorithms in
//! various natural cases") that Fagin–Lotem–Naor later closed.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::source::VecSource;
use fmdb_middleware::workload::{adversarial_anti, correlated_pair, independent_uniform};

use crate::report::{f3, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E13",
        "Threshold Algorithm vs the A0 family",
        "§6 open problem: \"finding efficient algorithms in various natural cases\" — answered \
         in 2001 by TA, which adapts its stopping rule to the instance",
    );
    let n = cfg.pick(1 << 14, 1 << 10);
    let k = 10usize;
    type Workload = Box<dyn Fn(u64) -> Vec<VecSource>>;
    let workloads: Vec<(&str, Workload)> = vec![
        (
            "independent",
            Box::new(move |seed| independent_uniform(n, 2, seed)),
        ),
        (
            "correlated ρ=0.8",
            Box::new(move |seed| correlated_pair(n, 0.8, seed)),
        ),
        (
            "anti ρ=-0.8",
            Box::new(move |seed| correlated_pair(n, -0.8, seed)),
        ),
        ("adversarial", Box::new(move |_| adversarial_anti(n))),
    ];
    let mut t = Table::new(
        format!("database access cost, N = {n}, m = 2, k = {k}, min"),
        &["workload", "A0", "pruned A0", "TA", "TA/A0"],
    );
    for (name, make) in &workloads {
        let fa = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, &**make);
        let pr = mean_cost(&PrunedFa::default(), &min, k, cfg.seeds, &**make);
        let ta = mean_cost(&ThresholdAlgorithm, &min, k, cfg.seeds, &**make);
        t.row(vec![
            (*name).to_owned(),
            int(fa.database_access_cost()),
            int(pr.database_access_cost()),
            int(ta.database_access_cost()),
            f3(ta.database_access_cost() as f64 / fa.database_access_cost() as f64),
        ]);
    }
    report.table(t);
    report.note(
        "on independent data the two are comparable (both ~√(kN)); the gap opens on skewed \
         instances, where TA's data-adaptive threshold stops long before A0's see-k-matches \
         rule — the instance optimality that resolved the paper's open problem.",
    );
    report
}
