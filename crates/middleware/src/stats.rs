//! Database access cost accounting (§4).
//!
//! "The *sorted access cost* is the total number of objects obtained
//! from the database under sorted access. … the *random access cost* is
//! the total number of objects obtained from the database under random
//! access. The *database access cost* is the sum."
//!
//! The paper flags this uniform measure as "somewhat controversial"
//! (a sorted access is probably much more expensive than a random one,
//! or vice versa depending on the subsystem), and \[WHTB98\] studied the
//! algorithm under "a broad range of access costs". [`CostModel`]
//! provides that broad range: a pair of unit prices that converts an
//! [`AccessStats`] into a *charged* cost, used by experiment E5.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use fmdb_core::stats::GradeHistogram;

/// Counts of the two access kinds an algorithm performed, plus the
/// engine's grade-cache counters.
///
/// `sorted`/`random` are the paper's *logical* measure: a random access
/// answered from the engine's grade cache still counts as one random
/// access (the algorithm asked the question; caching is a physical
/// optimization). The `cache_hits`/`cache_misses` pair records how many
/// of those `random` accesses were absorbed by the cache — they split
/// `random`, they never add to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Objects obtained under sorted access, summed over all sources.
    pub sorted: u64,
    /// Objects obtained under random access, summed over all sources.
    pub random: u64,
    /// Random accesses served from the engine's grade cache.
    pub cache_hits: u64,
    /// Random accesses that went through to the subsystem (only
    /// metered when a cache is in play; 0 means "no cache involved").
    pub cache_misses: u64,
    /// Worker threads the engine spawned while serving this request:
    /// prefetch workers (one per stream when parallel), shard workers
    /// under the sharded path, and — under `Engine::run_many` — the
    /// pooled batch workers, each charged once to the first request it
    /// completes. Like the cache counters this is physical-execution
    /// telemetry, not part of the paper's access cost.
    pub worker_spawns: u64,
    /// Pages read from storage while serving this request, summed over
    /// every paged source ([`crate::store::PagedSource`]) the request
    /// touched. Like the cache counters this is physical telemetry:
    /// it describes how the logical accesses were *served*, never
    /// changes what was charged. 0 means "no paged source involved".
    pub page_reads: u64,
    /// Page lookups answered from a buffer pool without touching
    /// storage.
    pub page_hits: u64,
    /// Page frames dropped from a buffer pool to make room.
    pub page_evictions: u64,
    /// Sorted-run / random-table pages a paged source *proved* it did
    /// not need via its persisted per-page grade bounds (bounded drains
    /// and probes, see [`crate::store::PagedSource`]). Physical
    /// telemetry like `page_reads`: skipping changes the work, never
    /// the answers or the charged accesses.
    pub pages_skipped: u64,
    /// Corpus scan blocks the media layer's zone maps pruned wholesale
    /// (see `fmdb_media`'s `EmbeddedCorpus` block bounds). Physical
    /// telemetry; 0 means "no embedded corpus involved".
    pub blocks_skipped: u64,
}

impl AccessStats {
    /// No accesses.
    pub const ZERO: AccessStats = AccessStats {
        sorted: 0,
        random: 0,
        cache_hits: 0,
        cache_misses: 0,
        worker_spawns: 0,
        page_reads: 0,
        page_hits: 0,
        page_evictions: 0,
        pages_skipped: 0,
        blocks_skipped: 0,
    };

    /// Creates explicit stats (no cache activity).
    pub fn new(sorted: u64, random: u64) -> AccessStats {
        AccessStats {
            sorted,
            random,
            ..AccessStats::ZERO
        }
    }

    /// The paper's database access cost: `sorted + random`.
    ///
    /// Cache counters do not contribute: they describe *how* the
    /// random accesses were served, not additional accesses.
    pub fn database_access_cost(&self) -> u64 {
        self.sorted + self.random
    }

    /// The charged cost under a [`CostModel`].
    pub fn charged(&self, model: &CostModel) -> f64 {
        self.sorted as f64 * model.sorted_unit + self.random as f64 * model.random_unit
    }
}

impl Add for AccessStats {
    type Output = AccessStats;
    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            sorted: self.sorted + rhs.sorted,
            random: self.random + rhs.random,
            cache_hits: self.cache_hits + rhs.cache_hits,
            cache_misses: self.cache_misses + rhs.cache_misses,
            worker_spawns: self.worker_spawns + rhs.worker_spawns,
            page_reads: self.page_reads + rhs.page_reads,
            page_hits: self.page_hits + rhs.page_hits,
            page_evictions: self.page_evictions + rhs.page_evictions,
            pages_skipped: self.pages_skipped + rhs.pages_skipped,
            blocks_skipped: self.blocks_skipped + rhs.blocks_skipped,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

/// Componentwise difference, saturating at zero — for diffing two
/// snapshots of a monotonically growing counter set (e.g.
/// `Engine::access_totals` before/after an experiment). Saturation
/// only engages if the operands are swapped; it never hides real
/// counts.
impl Sub for AccessStats {
    type Output = AccessStats;
    fn sub(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            sorted: self.sorted.saturating_sub(rhs.sorted),
            random: self.random.saturating_sub(rhs.random),
            cache_hits: self.cache_hits.saturating_sub(rhs.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(rhs.cache_misses),
            worker_spawns: self.worker_spawns.saturating_sub(rhs.worker_spawns),
            page_reads: self.page_reads.saturating_sub(rhs.page_reads),
            page_hits: self.page_hits.saturating_sub(rhs.page_hits),
            page_evictions: self.page_evictions.saturating_sub(rhs.page_evictions),
            pages_skipped: self.pages_skipped.saturating_sub(rhs.pages_skipped),
            blocks_skipped: self.blocks_skipped.saturating_sub(rhs.blocks_skipped),
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} sorted + {} random)",
            self.database_access_cost(),
            self.sorted,
            self.random
        )
    }
}

/// Buffer-pool I/O counters a paged source exposes through
/// [`crate::source::GradedSource::page_io`].
///
/// All counters are cumulative over the source's lifetime;
/// the engine diffs two snapshots to attribute page traffic to one
/// request ([`AccessStats::page_reads`] and friends).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageIoStats {
    /// Pages actually read from storage (buffer-pool misses plus
    /// read-ahead loads).
    pub reads: u64,
    /// Page lookups answered from the buffer pool.
    pub hits: u64,
    /// Page frames dropped from the buffer pool to make room.
    pub evictions: u64,
    /// Pages a bounded drain or probe proved unnecessary via the
    /// store's persisted per-page grade bounds and never visited.
    pub skipped: u64,
}

impl PageIoStats {
    /// No page traffic.
    pub const ZERO: PageIoStats = PageIoStats {
        reads: 0,
        hits: 0,
        evictions: 0,
        skipped: 0,
    };
}

impl Add for PageIoStats {
    type Output = PageIoStats;
    fn add(self, rhs: PageIoStats) -> PageIoStats {
        PageIoStats {
            reads: self.reads + rhs.reads,
            hits: self.hits + rhs.hits,
            evictions: self.evictions + rhs.evictions,
            skipped: self.skipped + rhs.skipped,
        }
    }
}

/// Componentwise saturating difference, for diffing two snapshots of
/// the monotone counters (same contract as `AccessStats::sub`).
impl Sub for PageIoStats {
    type Output = PageIoStats;
    fn sub(self, rhs: PageIoStats) -> PageIoStats {
        PageIoStats {
            reads: self.reads.saturating_sub(rhs.reads),
            hits: self.hits.saturating_sub(rhs.hits),
            evictions: self.evictions.saturating_sub(rhs.evictions),
            skipped: self.skipped.saturating_sub(rhs.skipped),
        }
    }
}

/// Unit prices for the two access kinds — the "more realistic cost
/// measure" the paper's open problems call for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of obtaining one object under sorted access.
    pub sorted_unit: f64,
    /// Price of obtaining one object under random access.
    pub random_unit: f64,
}

impl CostModel {
    /// The paper's uniform measure: both kinds cost 1.
    pub const UNIFORM: CostModel = CostModel {
        sorted_unit: 1.0,
        random_unit: 1.0,
    };

    /// A model where a random access costs `ratio` times a sorted one.
    ///
    /// Returns `None` for non-finite or non-positive ratios.
    pub fn random_to_sorted_ratio(ratio: f64) -> Option<CostModel> {
        (ratio.is_finite() && ratio > 0.0).then_some(CostModel {
            sorted_unit: 1.0,
            random_unit: ratio,
        })
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::UNIFORM
    }
}

/// Per-source statistics the cost-based planner prices plans with:
/// the grade distribution plus a cache-residency hint.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceStats {
    /// Equi-depth grade-distribution histogram (built from the sorted
    /// list, a sorted-access prefix, or a sample).
    pub histogram: GradeHistogram,
    /// Fraction of this source's universe currently resident in the
    /// engine's grade cache, in `[0, 1]`.
    ///
    /// This is a *physical latency* hint: the paper's charged cost
    /// counts a cache-served random access all the same (the algorithm
    /// asked the question), so residency never changes which plan the
    /// charged-cost comparison picks — it is surfaced in `Explain` and
    /// feeds the sharded-vs-serial latency advice.
    pub cache_residency: f64,
}

impl SourceStats {
    /// Stats with no cache-residency information.
    pub fn new(histogram: GradeHistogram) -> SourceStats {
        SourceStats {
            histogram,
            cache_residency: 0.0,
        }
    }

    /// Attaches a cache-residency hint (clamped to `[0, 1]`).
    pub fn with_residency(mut self, residency: f64) -> SourceStats {
        self.cache_residency = if residency.is_finite() {
            residency.clamp(0.0, 1.0)
        } else {
            0.0
        };
        self
    }

    /// The source's universe size per its histogram.
    pub fn universe(&self) -> usize {
        self.histogram.universe()
    }
}

/// Measures `c_R/c_S` for a source by micro-probing: times `probes`
/// sorted accesses, then `probes` random accesses to the ids just
/// seen, through the injectable `clock` (monotonic nanoseconds). The
/// injectable clock keeps calibration deterministic under test; pass
/// [`wall_clock`] for real measurements.
///
/// Returns `None` when the source yields no objects under sorted
/// access (nothing to probe). The measured ratio is clamped to
/// `[0.001, 1000]` so one scheduler hiccup cannot poison a plan
/// choice. The source is rewound before and after probing.
pub fn calibrate_cost_model(
    source: &mut dyn crate::source::GradedSource,
    probes: usize,
    clock: &mut dyn FnMut() -> u64,
) -> Option<CostModel> {
    let probes = probes.max(1);
    source.rewind();
    let t0 = clock();
    let mut ids = Vec::with_capacity(probes);
    for _ in 0..probes {
        match source.sorted_next() {
            Some(so) => ids.push(so.id),
            None => break,
        }
    }
    let t1 = clock();
    if ids.is_empty() {
        source.rewind();
        return None;
    }
    for i in 0..probes {
        let id = ids[i % ids.len()];
        let _ = source.random_access(id);
    }
    let t2 = clock();
    source.rewind();
    let sorted_ns = t1.saturating_sub(t0).max(1) as f64;
    let random_ns = t2.saturating_sub(t1).max(1) as f64;
    let ratio = (random_ns / sorted_ns).clamp(0.001, 1000.0);
    CostModel::random_to_sorted_ratio(ratio)
}

/// A monotonic nanosecond clock for [`calibrate_cost_model`].
pub fn wall_clock() -> impl FnMut() -> u64 {
    let start = std::time::Instant::now();
    move || start.elapsed().as_nanos() as u64
}

/// Measures `c_R/c_S` for a *paged* source from its page traffic
/// instead of wall time: runs `probes` sorted accesses, then `probes`
/// random accesses to ids drawn from across the whole universe, and
/// prices each access kind by the pages it pulled from storage
/// (charging a floor of one page per phase so a fully warm pool
/// degrades to ratio 1, never 0).
///
/// Wall-clock calibration ([`calibrate_cost_model`]) is the general
/// tool, but against real storage it is noisy under test; page reads
/// are the *deterministic* physical signal behind that latency: a
/// sorted scan amortizes one read over `entries_per_page` objects
/// while a cold random probe pays a whole page for one object — which
/// is exactly the c_R/c_S asymmetry \[WHTB98\] priced. Returns `None`
/// when the source exposes no page counters
/// ([`crate::source::GradedSource::page_io`]) or yields no objects.
/// The measured ratio is clamped to `[0.001, 1000]` like the
/// wall-clock path. The source is rewound before and after probing.
pub fn calibrate_cost_model_io(
    source: &mut dyn crate::source::GradedSource,
    probes: usize,
) -> Option<CostModel> {
    let probes = probes.max(1);
    source.page_io()?;
    let universe = source.info().universe_size as u64;
    source.rewind();
    let before_sorted = source.page_io()?;
    let mut ids = Vec::with_capacity(probes);
    for _ in 0..probes {
        match source.sorted_next() {
            Some(so) => ids.push(so.id),
            None => break,
        }
    }
    let before_random = source.page_io()?;
    if ids.is_empty() {
        source.rewind();
        return None;
    }
    // Probe ids spread across the universe, not the ids just seen:
    // the sorted prefix's pages are warm by construction, and probing
    // only them would measure the pool, not the access pattern.
    let stride = (universe / probes as u64).max(1);
    for i in 0..probes as u64 {
        let _ = source.random_access((i * stride) % universe.max(1));
    }
    let after = source.page_io()?;
    source.rewind();
    let sorted_pages = (before_random - before_sorted).reads.max(1) as f64;
    let random_pages = (after - before_random).reads.max(1) as f64;
    let per_sorted = sorted_pages / ids.len() as f64;
    let per_random = random_pages / probes as f64;
    let ratio = (per_random / per_sorted).clamp(0.001, 1000.0);
    CostModel::random_to_sorted_ratio(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_access_cost_is_the_sum() {
        // The paper's example: top 100 from one list + top 20 from the
        // other = sorted access cost 120.
        let stats = AccessStats::new(120, 35);
        assert_eq!(stats.database_access_cost(), 155);
    }

    #[test]
    fn charged_cost_respects_the_model() {
        let stats = AccessStats::new(10, 4);
        assert_eq!(stats.charged(&CostModel::UNIFORM), 14.0);
        let expensive_random = CostModel::random_to_sorted_ratio(10.0).unwrap();
        assert_eq!(stats.charged(&expensive_random), 50.0);
        let cheap_random = CostModel::random_to_sorted_ratio(0.1).unwrap();
        assert!((stats.charged(&cheap_random) - 10.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(CostModel::random_to_sorted_ratio(0.0).is_none());
        assert!(CostModel::random_to_sorted_ratio(-1.0).is_none());
        assert!(CostModel::random_to_sorted_ratio(f64::NAN).is_none());
    }

    #[test]
    fn stats_add_componentwise() {
        let mut a = AccessStats::new(1, 2);
        a += AccessStats::new(3, 4);
        assert_eq!(a, AccessStats::new(4, 6));
        assert_eq!(a + AccessStats::ZERO, a);
    }

    #[test]
    fn stats_sub_diffs_snapshots_and_saturates() {
        let before = AccessStats::new(10, 4);
        let after = AccessStats::new(25, 9);
        assert_eq!(after - before, AccessStats::new(15, 5));
        assert_eq!(before - after, AccessStats::ZERO);
    }

    #[test]
    fn display_format() {
        let s = AccessStats::new(2, 3).to_string();
        assert!(s.contains("5 accesses"));
    }

    #[test]
    fn calibration_is_deterministic_under_an_injected_clock() {
        use crate::workload::independent_uniform;
        // A scripted clock: sorted probes take 100ns total, random
        // probes 700ns — the measured ratio must be exactly 7.
        let calibrate = || {
            let mut src = independent_uniform(64, 1, 5).remove(0);
            let script = [0u64, 100, 800];
            let mut i = 0;
            let mut clock = move || {
                let t = script[i.min(script.len() - 1)];
                i += 1;
                t
            };
            calibrate_cost_model(&mut src, 8, &mut clock).expect("non-empty source")
        };
        let a = calibrate();
        let b = calibrate();
        assert_eq!(a, b, "same clock script must give the same model");
        assert!((a.random_unit / a.sorted_unit - 7.0).abs() < 1e-12);
    }

    #[test]
    fn calibration_rejects_empty_sources_and_clamps() {
        use crate::source::VecSource;
        let mut empty = VecSource::new("empty", Vec::new());
        let mut clock = || 0u64;
        assert!(calibrate_cost_model(&mut empty, 4, &mut clock).is_none());

        // A zero-width clock script degrades to ratio 1, not NaN.
        let mut src = crate::workload::independent_uniform(16, 1, 1).remove(0);
        let model = calibrate_cost_model(&mut src, 4, &mut clock).unwrap();
        assert!((model.random_unit - model.sorted_unit).abs() < 1e-12);
    }

    #[test]
    fn source_stats_residency_is_clamped() {
        use fmdb_core::score::Score;
        let grades: Vec<Score> = (0..10)
            .map(|i| Score::clamped(1.0 - i as f64 / 10.0))
            .collect();
        let h = GradeHistogram::from_sorted(&grades, 4);
        let s = SourceStats::new(h.clone());
        assert!(s.cache_residency.abs() < 1e-12);
        assert!(
            (SourceStats::new(h.clone())
                .with_residency(2.0)
                .cache_residency
                - 1.0)
                .abs()
                < 1e-12
        );
        assert!(
            SourceStats::new(h)
                .with_residency(f64::NAN)
                .cache_residency
                .abs()
                < 1e-12
        );
    }
}
