//! The lint rules and the driver that applies them.
//!
//! Every rule is a pure function from an analyzed [`SourceFile`] (plus
//! occasionally workspace-wide context) to diagnostics. The driver
//! here applies scoping policy uniformly: findings inside
//! `#[cfg(test)]` regions, test/bench/example files, or under a valid
//! `lint:allow` suppression are dropped **after** the rule runs, so
//! rules stay simple and the policy lives in one place.

pub mod bounded_channels;
pub mod crate_hygiene;
pub mod no_deprecated;
pub mod no_float_eq;
pub mod no_panic;

use crate::diagnostics::Diagnostic;
use crate::workspace::Workspace;

/// Runs every rule over the workspace and returns the surviving
/// diagnostics, sorted by path, line, column.
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let deprecated = no_deprecated::collect_deprecated(ws);
    let mut diags = Vec::new();
    for file in &ws.files {
        let mut raw = Vec::new();
        raw.extend(no_panic::check(file));
        raw.extend(no_float_eq::check(file));
        raw.extend(bounded_channels::check(file));
        raw.extend(crate_hygiene::check(file));
        raw.extend(no_deprecated::check(file, &deprecated));
        // Policy gate: suppressions silence findings; malformed
        // suppressions are findings of their own.
        diags.extend(raw.into_iter().filter(|d| !file.allowed(d.rule, d.line)));
        diags.extend(file.suppression_diags.iter().cloned());
    }
    diags.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    diags
}
