//! The top-k request: *what* to compute ([`TopKQuery`]) paired with
//! *how* to compute it ([`ExecPolicy`]).
//!
//! Historically each evaluation strategy had its own ad-hoc signature
//! (`FaginsAlgorithm::top_k`, `Nra::top_k`, `CgFilter::run`, …), so
//! neither the Garlic planner nor a service layer could drive them
//! uniformly. The first unification was a single monolithic
//! `TopKRequest` builder; it left no room for algorithm choice, cost
//! models, or approximation, so the API is now split:
//!
//! * [`TopKQuery`] — graded sources, a scoring function, `k`, and
//!   optional Fagin–Wimmers weights. Built with [`TopKQuery::compose`].
//! * [`ExecPolicy`] — algorithm, [`crate::stats::CostModel`], θ-slack,
//!   sharding. Built with [`ExecPolicy::new`].
//! * [`TopKRequest`] — the pair, accepted by every algorithm and by
//!   the batched parallel [`crate::engine::Engine`].
//!
//! ```
//! use fmdb_core::scoring::tnorms::Min;
//! use fmdb_middleware::policy::{Algo, ExecPolicy};
//! use fmdb_middleware::request::TopKQuery;
//! use fmdb_middleware::workload::independent_uniform;
//!
//! let request = TopKQuery::compose()
//!     .sources(independent_uniform(100, 2, 7))
//!     .scoring(Min)
//!     .k(5)
//!     .policy(ExecPolicy::new().algo(Algo::Ta))
//!     .request()
//!     .unwrap();
//! assert_eq!(request.k(), 5);
//! ```
//!
//! Sources are held as [`SharedSource`] (`Arc<Mutex<…>>`) so one
//! request can be executed by worker threads that each drive a
//! different source; scalar algorithms simply lock all sources up
//! front and run exactly as before.

use std::sync::{Arc, Mutex, PoisonError};

use fmdb_core::request::{SpecError, TopKSpec};
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{Weighted, Weighting};

use crate::algorithms::AlgoError;
use crate::policy::ExecPolicy;
use crate::source::GradedSource;

/// A shareable, lockable handle to one graded source.
pub type SharedSource = Arc<Mutex<dyn GradedSource + Send>>;

/// A shareable scoring function.
pub type SharedScoring = Arc<dyn ScoringFunction + Send + Sync>;

/// Wraps a concrete source into a [`SharedSource`] handle.
pub fn shared_source(source: impl GradedSource + Send + 'static) -> SharedSource {
    Arc::new(Mutex::new(source))
}

/// One fully-specified top-k *query*: `m` graded sources, the scoring
/// function combining their grades, how many answers, and optional
/// subquery weights. Execution knobs live in [`ExecPolicy`], not here.
///
/// Build with [`TopKQuery::compose`]. When weights are present the
/// scoring function exposed by [`TopKQuery::scoring`] is already the
/// Fagin–Wimmers weighted combination (§5), so algorithms need no
/// weight-awareness of their own.
#[derive(Clone)]
pub struct TopKQuery {
    sources: Vec<SharedSource>,
    scoring: SharedScoring,
    spec: TopKSpec,
}

impl std::fmt::Debug for TopKQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKQuery")
            .field("sources", &self.sources.len())
            .field("scoring", &self.scoring.name())
            .field("k", &self.k())
            .field("weights", &self.weights().map(Weighting::weights))
            .finish()
    }
}

impl TopKQuery {
    /// Starts composing a query.
    pub fn compose() -> TopKQueryBuilder {
        TopKQueryBuilder::default()
    }

    /// The source handles, in conjunct order.
    pub fn sources(&self) -> &[SharedSource] {
        &self.sources
    }

    /// The number of conjuncts `m`.
    pub fn arity(&self) -> usize {
        self.sources.len()
    }

    /// How many answers are requested.
    pub fn k(&self) -> usize {
        self.spec.k()
    }

    /// The normalized subquery weights, if the query is weighted.
    pub fn weights(&self) -> Option<&Weighting> {
        self.spec.weights().filter(|w| !w.is_uniform())
    }

    /// The effective scoring function: the one supplied to the
    /// builder, wrapped in the Fagin–Wimmers weighting when weights
    /// were given.
    pub fn scoring(&self) -> SharedScoring {
        Arc::clone(&self.scoring)
    }

    /// Locks every source and hands the scalar view `&mut [&mut dyn
    /// GradedSource]` to `f` — the bridge from the shared, thread-safe
    /// representation to the paper's sequential access model.
    pub fn with_sources<R>(&self, f: impl FnOnce(&mut [&mut dyn GradedSource]) -> R) -> R {
        let mut guards: Vec<_> = self
            .sources
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let mut refs: Vec<&mut dyn GradedSource> = guards
            .iter_mut()
            .map(|g| &mut **g as &mut dyn GradedSource)
            .collect();
        f(&mut refs)
    }

    /// Pairs the query with an execution policy.
    pub fn into_request(self, policy: ExecPolicy) -> TopKRequest {
        TopKRequest {
            query: self,
            policy,
        }
    }
}

/// A [`TopKQuery`] paired with the [`ExecPolicy`] that should evaluate
/// it — the unit every algorithm and the engine accept.
///
/// The query accessors (`sources`, `k`, `scoring`, …) are delegated so
/// algorithm code reads the same as before the split.
#[derive(Clone)]
pub struct TopKRequest {
    query: TopKQuery,
    policy: ExecPolicy,
}

impl std::fmt::Debug for TopKRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKRequest")
            .field("query", &self.query)
            .field("policy", &self.policy)
            .finish()
    }
}

impl From<TopKQuery> for TopKRequest {
    /// Pairs the query with the default policy (`Auto`, uniform costs,
    /// exact).
    fn from(query: TopKQuery) -> TopKRequest {
        query.into_request(ExecPolicy::DEFAULT)
    }
}

impl TopKRequest {
    /// Pairs a composed query with an execution policy.
    pub fn new(query: TopKQuery, policy: ExecPolicy) -> TopKRequest {
        query.into_request(policy)
    }

    /// The query half: what to compute.
    pub fn query(&self) -> &TopKQuery {
        &self.query
    }

    /// The policy half: how to compute it.
    pub fn policy(&self) -> &ExecPolicy {
        &self.policy
    }

    /// The source handles, in conjunct order.
    pub fn sources(&self) -> &[SharedSource] {
        self.query.sources()
    }

    /// The number of conjuncts `m`.
    pub fn arity(&self) -> usize {
        self.query.arity()
    }

    /// How many answers are requested.
    pub fn k(&self) -> usize {
        self.query.k()
    }

    /// The normalized subquery weights, if the query is weighted.
    pub fn weights(&self) -> Option<&Weighting> {
        self.query.weights()
    }

    /// The effective scoring function (weight-wrapped when weighted).
    pub fn scoring(&self) -> SharedScoring {
        self.query.scoring()
    }

    /// Locks every source and hands the scalar view to `f`; see
    /// [`TopKQuery::with_sources`].
    pub fn with_sources<R>(&self, f: impl FnOnce(&mut [&mut dyn GradedSource]) -> R) -> R {
        self.query.with_sources(f)
    }
}

/// Builder for [`TopKQuery`]; see [`TopKQuery::compose`].
#[derive(Default)]
pub struct TopKQueryBuilder {
    sources: Vec<SharedSource>,
    scoring: Option<SharedScoring>,
    k: usize,
    weights: Option<Vec<f64>>,
    policy: Option<ExecPolicy>,
}

// The shared sources/scoring are `dyn` trait objects without a `Debug`
// bound; a shape summary satisfies `missing_debug_implementations`.
impl std::fmt::Debug for TopKQueryBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKQueryBuilder")
            .field("sources", &self.sources.len())
            .field("has_scoring", &self.scoring.is_some())
            .field("k", &self.k)
            .field("weights", &self.weights)
            .field("policy", &self.policy)
            .finish()
    }
}

impl TopKQueryBuilder {
    /// Appends one owned source as the next conjunct.
    pub fn source(mut self, source: impl GradedSource + Send + 'static) -> Self {
        self.sources.push(shared_source(source));
        self
    }

    /// Appends an already-shared source handle (e.g. one also held by
    /// another concurrent request).
    pub fn shared_source(mut self, source: SharedSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Appends every source of an iterator.
    pub fn sources<S: GradedSource + Send + 'static>(
        mut self,
        sources: impl IntoIterator<Item = S>,
    ) -> Self {
        self.sources.extend(
            sources
                .into_iter()
                .map(|s| shared_source(s) as SharedSource),
        );
        self
    }

    /// Sets the scoring function combining conjunct grades.
    pub fn scoring(mut self, scoring: impl ScoringFunction + Send + Sync + 'static) -> Self {
        self.scoring = Some(Arc::new(scoring));
        self
    }

    /// Sets an already-shared scoring function.
    pub fn shared_scoring(mut self, scoring: SharedScoring) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// Sets how many answers to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Weights the conjuncts' importance (arbitrary nonnegative
    /// ratios; normalized at build time). One weight per source.
    pub fn weights(mut self, ratios: &[f64]) -> Self {
        self.weights = Some(ratios.to_vec());
        self
    }

    /// Sets the execution policy [`TopKQueryBuilder::request`] will
    /// attach (ignored by [`TopKQueryBuilder::build`], which yields
    /// the bare query).
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Validates and assembles the query.
    pub fn build(self) -> Result<TopKQuery, AlgoError> {
        if self.sources.is_empty() {
            return Err(AlgoError::NoSources);
        }
        let spec = match &self.weights {
            None => TopKSpec::new(self.k),
            Some(ratios) => TopKSpec::weighted(self.k, ratios),
        }
        .map_err(|e| match e {
            SpecError::ZeroK => AlgoError::ZeroK,
            SpecError::Weights(w) => AlgoError::InvalidRequest(format!("invalid weights: {w}")),
        })?;
        if !spec.fits_arity(self.sources.len()) {
            return Err(AlgoError::InvalidRequest(format!(
                "{} weights for {} sources",
                spec.weights().map_or(0, Weighting::arity),
                self.sources.len()
            )));
        }
        let base = self
            .scoring
            .ok_or_else(|| AlgoError::InvalidRequest("no scoring function supplied".to_owned()))?;
        let scoring = match spec.weights() {
            // Uniform weights are the unweighted rule (property D1) —
            // skip the wrapper so counts and grades match the plain
            // scoring exactly.
            Some(w) if !w.is_uniform() => Arc::new(Weighted::new(base, w.clone())) as SharedScoring,
            _ => base,
        };
        Ok(TopKQuery {
            sources: self.sources,
            scoring,
            spec,
        })
    }

    /// Validates the query and pairs it with the policy set via
    /// [`TopKQueryBuilder::policy`] (default policy when unset).
    pub fn request(self) -> Result<TopKRequest, AlgoError> {
        let policy = self.policy.unwrap_or(ExecPolicy::DEFAULT);
        Ok(self.build()?.into_request(policy))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Algo;
    use crate::source::VecSource;
    use fmdb_core::score::Score;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn src(grades: &[f64]) -> VecSource {
        let scores: Vec<Score> = grades.iter().map(|&g| s(g)).collect();
        VecSource::from_dense("t", &scores)
    }

    #[test]
    fn compose_assembles_a_query() {
        let query = TopKQuery::compose()
            .source(src(&[0.1, 0.9]))
            .source(src(&[0.8, 0.2]))
            .scoring(Min)
            .k(2)
            .build()
            .unwrap();
        assert_eq!(query.arity(), 2);
        assert_eq!(query.k(), 2);
        assert!(query.weights().is_none());
        assert_eq!(query.scoring().name(), "min");
    }

    #[test]
    fn request_pairs_query_and_policy() {
        let req = TopKQuery::compose()
            .source(src(&[0.1, 0.9]))
            .scoring(Min)
            .k(1)
            .policy(ExecPolicy::new().algo(Algo::Ta).theta(0.25))
            .request()
            .unwrap();
        assert_eq!(req.policy().algo, Algo::Ta);
        assert!(req.policy().approximation.is_approximate());
        assert_eq!(req.query().k(), 1);
        // Without an explicit policy the default rides along.
        let plain: TopKRequest = TopKQuery::compose()
            .source(src(&[0.5]))
            .scoring(Min)
            .k(1)
            .build()
            .unwrap()
            .into();
        assert_eq!(*plain.policy(), ExecPolicy::DEFAULT);
    }

    #[test]
    fn compose_rejects_bad_queries() {
        assert!(matches!(
            TopKQuery::compose().scoring(Min).k(1).build(),
            Err(AlgoError::NoSources)
        ));
        assert!(matches!(
            TopKQuery::compose()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(0)
                .build(),
            Err(AlgoError::ZeroK)
        ));
        assert!(matches!(
            TopKQuery::compose().source(src(&[0.5])).k(1).build(),
            Err(AlgoError::InvalidRequest(_))
        ));
        assert!(matches!(
            TopKQuery::compose()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(1)
                .weights(&[0.5, 0.5])
                .build(),
            Err(AlgoError::InvalidRequest(_))
        ));
        assert!(matches!(
            TopKQuery::compose()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(1)
                .weights(&[-1.0])
                .build(),
            Err(AlgoError::InvalidRequest(_))
        ));
    }

    #[test]
    fn weighted_queries_wrap_the_scoring() {
        let query = TopKQuery::compose()
            .source(src(&[0.2, 0.9]))
            .source(src(&[0.9, 0.3]))
            .scoring(Min)
            .k(1)
            .weights(&[2.0, 1.0])
            .build()
            .unwrap();
        assert!(query.weights().is_some());
        // Weighted-min of (1.0, 0.0) under θ=(2/3, 1/3): the formula
        // gives θ₁−θ₂ + 2θ₂·min = 1/3 ≠ plain min = 0.
        let g = query.scoring().combine(&[s(1.0), s(0.0)]);
        assert!(g.approx_eq(s(1.0 / 3.0), 1e-9), "{g}");
    }

    #[test]
    fn uniform_weights_degrade_to_plain_scoring() {
        let query = TopKQuery::compose()
            .source(src(&[0.2]))
            .source(src(&[0.9]))
            .scoring(Min)
            .k(1)
            .weights(&[1.0, 1.0])
            .build()
            .unwrap();
        // D1: uniform weighting IS the unweighted rule; the query
        // reports itself unweighted and uses the plain function.
        assert!(query.weights().is_none());
        assert_eq!(query.scoring().name(), "min");
    }

    #[test]
    fn with_sources_grants_scalar_access() {
        let query = TopKQuery::compose()
            .source(src(&[0.1, 0.9]))
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        let first = query.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(first.id, 1);
        // The cursor advanced inside the shared handle.
        let second = query.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(second.id, 0);
    }

    #[test]
    fn shared_sources_can_serve_two_requests() {
        let handle = shared_source(src(&[0.4, 0.6]));
        let a = TopKQuery::compose()
            .shared_source(Arc::clone(&handle))
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        let b = TopKQuery::compose()
            .shared_source(handle)
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        a.with_sources(|refs| {
            let _ = refs[0].sorted_next();
        });
        // b sees the same underlying cursor — it is the same source.
        let next = b.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(next.id, 0);
    }
}
