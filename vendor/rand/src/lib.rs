//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free implementation of
//! the parts of `rand` it actually uses: `StdRng::seed_from_u64`,
//! `Rng::gen`, `Rng::gen_range`, and `Rng::gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well-distributed, and fully deterministic in the seed. The exact
//! value streams differ from upstream `rand`'s `StdRng` (ChaCha12);
//! nothing in this workspace depends on specific stream values, only
//! on determinism, which this preserves.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (the `Standard` distribution).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as StandardSample>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_range!(f64, f32);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — the workspace's standard
    /// deterministic generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..10).any(|_| a.gen::<f64>() != c.gen::<f64>());
        assert!(differs);
    }

    #[test]
    fn unit_floats_land_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(-5.0f64..=5.0);
            assert!((-5.0..=5.0).contains(&w));
            let x = r.gen_range(2..=5usize);
            assert!((2..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
