//! Standalone runner for experiment `e02_disjunction`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e02_disjunction::run(&cfg).print();
}
