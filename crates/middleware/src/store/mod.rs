//! A persistent paged column store for graded sources — out-of-core
//! corpora served through the §4 access model at near-memory speed.
//!
//! Everything else in the workspace keeps grades in RAM
//! ([`crate::source::VecSource`], the media layer's SoA corpus). This
//! module makes the Fagin–Lotem–Naor cost model *physical*: a store
//! file lays out a grade-descending **sorted run** and an
//! oid-ascending **random table** in fixed-size checksummed pages
//! ([`format`]), read through a lock-striped LRU **buffer pool** with
//! pin counts ([`PagePool`] — the engine's grade-cache machinery
//! generalized to page frames), with an optional **read-ahead worker**
//! that streams the sorted run's next pages over a bounded channel,
//! mirroring the engine's prefetch-worker idiom.
//!
//! * [`build_store`] / [`build_store_from_source`] write a file crash
//!   safely in one shot (tmp + fsync + rename + parent fsync).
//! * [`PagedStore::open`] validates magic, version, checksums, and
//!   length, and loads the page directory and the persisted stats
//!   page.
//! * [`PagedSource`] is a full [`GradedSource`] over the store:
//!   batched sorted/random access, [`GradedSource::partition`] for
//!   sharded execution, and [`GradedSource::grade_histogram`] answered
//!   from the stats page without touching data pages. It is
//!   bit-identical to a `VecSource` built from the same pairs —
//!   answers, grades, and charged [`crate::stats::AccessStats`] —
//!   which the `paged_equivalence` proptest suite proves.
//!
//! Failure model: *opening* and *building* return typed
//! [`StoreError`]s. A runtime I/O failure after a successful open
//! (disk yanked mid-query) cannot surface through the infallible
//! [`GradedSource`] methods, so the source degrades — the sorted
//! stream appears drained, random access grades to zero — and the
//! first error is parked where [`PagedSource::take_error`] /
//! [`PagedStore::take_error`] retrieve it.

pub mod format;
mod pool;

use std::collections::HashMap;
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::Path;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::stats::GradeHistogram;

use crate::source::{GradedSource, Oid, ShardedSource, SourceInfo, SourcePartitioner};
use crate::stats::PageIoStats;

pub use format::{build_store, BuildConfig, Header, StoreError};
use format::{decode_entry, decode_header, page_entry_count, read_u32, read_u64, verify_page};
use pool::PagePool;

/// Open-time knobs: buffer-pool capacity and read-ahead depth.
///
/// Each knob is either `Some(n)` with `n > 0`, or `None` to disable
/// the feature explicitly (run uncached / no read-ahead worker).
/// `Some(0)` is rejected by [`PagedStore::open`] with
/// [`StoreError::InvalidOptions`] — a zero capacity used to fall
/// through and silently behave like "disabled", which is exactly the
/// kind of obscure downstream failure a typed error should catch at
/// the boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Page frames the buffer pool holds, or `None` for no caching —
    /// every access reads storage.
    pub pool_pages: Option<usize>,
    /// Sorted-run pages the read-ahead worker keeps ahead of the
    /// cursor, or `None` for no worker.
    pub readahead: Option<usize>,
}

impl StoreOptions {
    /// 256 frames (1 MiB at the default page size), read-ahead 4.
    pub const DEFAULT: StoreOptions = StoreOptions {
        pool_pages: Some(256),
        readahead: Some(4),
    };

    /// The default with a different pool capacity (`None` disables
    /// caching).
    pub fn with_pool_pages(pool_pages: usize) -> StoreOptions {
        StoreOptions {
            pool_pages: (pool_pages > 0).then_some(pool_pages),
            ..StoreOptions::DEFAULT
        }
    }

    /// Validates the knobs, returning each feature's effective
    /// capacity (0 = disabled) for the pool/worker internals.
    fn validate(&self) -> Result<(usize, usize), StoreError> {
        let pool_pages = match self.pool_pages {
            Some(0) => {
                return Err(StoreError::InvalidOptions(
                    "pool_pages must be positive; use None to disable caching",
                ))
            }
            Some(n) => n,
            None => 0,
        };
        let readahead = match self.readahead {
            Some(0) => {
                return Err(StoreError::InvalidOptions(
                    "readahead must be positive; use None to disable the worker",
                ))
            }
            Some(n) => n,
            None => 0,
        };
        Ok((pool_pages, readahead))
    }
}

impl Default for StoreOptions {
    fn default() -> StoreOptions {
        StoreOptions::DEFAULT
    }
}

/// Builds a store at `path` by draining `source`'s sorted stream —
/// the one-shot path from any existing [`GradedSource`] (a
/// `VecSource`, an embedded-corpus adapter, …). The source is rewound
/// before and after. See [`build_store`] for the persisted layout and
/// crash-safety protocol.
pub fn build_store_from_source(
    path: &Path,
    source: &mut dyn GradedSource,
    cfg: &BuildConfig,
) -> Result<(), StoreError> {
    source.rewind();
    let label = source.info().label;
    let mut pairs = Vec::new();
    loop {
        let batch = source.sorted_batch(1024);
        let done = batch.len() < 1024;
        pairs.extend(batch.into_iter().map(|so| (so.id, so.grade)));
        if done {
            break;
        }
    }
    source.rewind();
    build_store(path, &label, pairs, cfg)
}

/// Shared innards of a store: the file, its decoded geometry, the
/// in-memory directory and stats page, and the buffer pool.
#[derive(Debug)]
struct StoreInner {
    file: File,
    header: Header,
    /// First oid of each random-table page (loaded from the directory
    /// pages at open; one u64 per page, so a multi-GB store's
    /// directory is a few KiB).
    directory: Vec<Oid>,
    /// The persisted stats-page histogram.
    histogram: GradeHistogram,
    /// Per-data-page `(min, max)` grade bounds loaded from the bounds
    /// section: sorted-run pages first (indices `0..sorted_pages`),
    /// then random-table pages. Empty for version-1 stores — pruning
    /// is simply disabled, never an error.
    bounds: Vec<(Score, Score)>,
    pool: PagePool,
    /// Pages bounded drains/probes proved unnecessary and never
    /// visited (folded into [`PageIoStats::skipped`]).
    pages_skipped: std::sync::atomic::AtomicU64,
    /// First runtime I/O failure after a successful open (see the
    /// module docs' failure model).
    error: Mutex<Option<StoreError>>,
}

impl StoreInner {
    /// Reads page `page` from storage, verifying its checksum.
    fn read_page_raw(&self, page: u64) -> Result<Vec<u8>, StoreError> {
        let mut buf = vec![0u8; self.header.page_size];
        self.file
            .read_exact_at(&mut buf, page * self.header.page_size as u64)?;
        verify_page(&buf, page)?;
        Ok(buf)
    }

    /// Fetches a page through the pool: pool hit, or storage read +
    /// install.
    fn load_page(&self, page: u64) -> Result<pool::Frame, StoreError> {
        if let Some(frame) = self.pool.get(page) {
            return Ok(frame);
        }
        let frame = Arc::new(self.read_page_raw(page)?);
        self.pool.insert(page, Arc::clone(&frame));
        Ok(frame)
    }

    /// Parks the first runtime error for later retrieval.
    fn record_error(&self, e: StoreError) {
        let mut slot = self.error.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(e);
    }

    fn take_error(&self) -> Option<StoreError> {
        self.error
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .take()
    }

    /// Persisted `(min, max)` grade bounds of sorted-run page `p`
    /// (0-based within the run); `None` when the store has none
    /// (version 1) — callers must then visit the page.
    fn sorted_page_bounds(&self, p: u64) -> Option<(Score, Score)> {
        self.bounds.get(p as usize).copied()
    }

    /// Bounds of random-table page `p` (0-based within the table).
    fn random_page_bounds(&self, p: u64) -> Option<(Score, Score)> {
        let idx = self.header.sorted_pages.saturating_add(p);
        self.bounds.get(idx as usize).copied()
    }

    /// Records `pages` pages proved unnecessary by a bounded access.
    fn note_skipped(&self, pages: u64) {
        use std::sync::atomic::Ordering::Relaxed;
        // ordering(Relaxed): telemetry-only skip counter — nothing
        // branches on it, so no cross-thread ordering is required.
        self.pages_skipped.fetch_add(pages, Relaxed);
    }

    /// Pool counters with the store-level skip counter folded in.
    fn page_io(&self) -> PageIoStats {
        use std::sync::atomic::Ordering::Relaxed;
        PageIoStats {
            // ordering(Relaxed): report-time read of the telemetry
            // counter; a slightly stale value is acceptable.
            skipped: self.pages_skipped.load(Relaxed),
            ..self.pool.stats()
        }
    }
}

/// The read-ahead worker: loads hinted sorted-run pages into the pool
/// until every sender hangs up. Prefetch failures are ignored — the
/// demand read will hit the same error and surface it.
fn readahead_worker(inner: Arc<StoreInner>, rx: Receiver<u64>) {
    while let Ok(page) = rx.recv() {
        if inner.pool.contains(page) {
            continue;
        }
        if let Ok(buf) = inner.read_page_raw(page) {
            inner.pool.insert_readahead(page, Arc::new(buf));
        }
    }
}

/// An open store file: the handle sources are created from.
///
/// Dropping the store and every [`PagedSource`] created from it
/// disconnects the read-ahead channel, so the worker (which holds its
/// own `Arc` of the innards) exits and releases the file.
#[derive(Debug)]
pub struct PagedStore {
    inner: Arc<StoreInner>,
    readahead: Option<SyncSender<u64>>,
}

impl PagedStore {
    /// Opens and validates a store file.
    ///
    /// Validation is eager where it is cheap and page-local where it
    /// is not: the header's magic/version/geometry/checksum, the
    /// file's exact expected length, the stats page, and the whole
    /// directory are checked here; data pages are checksummed when
    /// first read.
    pub fn open(path: &Path, cfg: StoreOptions) -> Result<PagedStore, StoreError> {
        let (pool_pages, readahead_depth) = cfg.validate()?;
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len < format::MIN_PAGE_SIZE as u64 {
            return Err(StoreError::Truncated {
                expected: format::MIN_PAGE_SIZE as u64,
                actual: len,
            });
        }
        // Bootstrap: read the smallest legal page to learn the real
        // page size, then re-read the header at full size.
        let mut probe = vec![0u8; format::MIN_PAGE_SIZE];
        file.read_exact_at(&mut probe, 0)?;
        if probe[4..12] != format::MAGIC {
            return Err(StoreError::BadMagic);
        }
        let page_size = read_u32(&probe, 16) as usize;
        if !(format::MIN_PAGE_SIZE..=1 << 24).contains(&page_size) {
            return Err(StoreError::InvalidHeader("page size out of range"));
        }
        if len < page_size as u64 {
            return Err(StoreError::Truncated {
                expected: page_size as u64,
                actual: len,
            });
        }
        let mut header_page = vec![0u8; page_size];
        file.read_exact_at(&mut header_page, 0)?;
        let header = decode_header(&header_page)?;
        if len != header.total_bytes() {
            return Err(StoreError::Truncated {
                expected: header.total_bytes(),
                actual: len,
            });
        }

        // Stats page.
        let mut stats_page = vec![0u8; page_size];
        file.read_exact_at(&mut stats_page, page_size as u64)?;
        verify_page(&stats_page, 1)?;
        let bound_count = read_u32(&stats_page, 4) as usize;
        if bound_count > (page_size - format::PAGE_HEADER_BYTES) / 8
            || (bound_count > 0 && bound_count != header.hist_bins as usize + 1)
        {
            return Err(StoreError::InvalidStats);
        }
        let bounds: Vec<f64> = (0..bound_count)
            .map(|i| f64::from_bits(read_u64(&stats_page, format::PAGE_HEADER_BYTES + i * 8)))
            .collect();
        let histogram = GradeHistogram::from_parts(header.hist_universe as usize, bounds)
            .ok_or(StoreError::InvalidStats)?;

        // Directory pages.
        let dir_entries_per_page = (page_size - format::PAGE_HEADER_BYTES) / 8;
        let mut directory: Vec<Oid> = Vec::with_capacity(header.random_pages as usize);
        for d in 0..header.dir_pages {
            let page_no = header.dir_start() + d;
            let mut buf = vec![0u8; page_size];
            file.read_exact_at(&mut buf, page_no * page_size as u64)?;
            verify_page(&buf, page_no)?;
            let count = (read_u32(&buf, 4) as usize).min(dir_entries_per_page);
            for i in 0..count {
                directory.push(read_u64(&buf, format::PAGE_HEADER_BYTES + i * 8));
            }
        }
        if directory.len() != header.random_pages as usize {
            return Err(StoreError::InvalidHeader("directory disagrees with header"));
        }
        if directory.windows(2).any(|w| w[0] >= w[1]) {
            return Err(StoreError::InvalidHeader(
                "directory not strictly ascending",
            ));
        }

        // Bounds pages (version 2): one `(min, max)` grade pair per
        // data page, validated eagerly like the directory — corrupt
        // bounds must never silently mis-prune. Version-1 stores have
        // none; `bounds` stays empty and pruning is disabled.
        let data_pages = header.sorted_pages.saturating_add(header.random_pages);
        let mut bounds: Vec<(Score, Score)> = Vec::with_capacity(data_pages as usize);
        for b in 0..header.bounds_pages {
            let page_no = header.bounds_start().saturating_add(b);
            let mut buf = vec![0u8; page_size];
            file.read_exact_at(&mut buf, page_no.saturating_mul(page_size as u64))?;
            verify_page(&buf, page_no)?;
            let count = format::page_entry_count(&buf, header.entries_per_page);
            for i in 0..count {
                if (bounds.len() as u64) < data_pages {
                    bounds.push(format::decode_bound(&buf, i, page_no)?);
                }
            }
        }
        if header.bounds_pages > 0 && bounds.len() as u64 != data_pages {
            return Err(StoreError::InvalidHeader(
                "bounds section disagrees with page counts",
            ));
        }

        let inner = Arc::new(StoreInner {
            file,
            header,
            directory,
            histogram,
            bounds,
            pool: PagePool::new(pool_pages),
            pages_skipped: std::sync::atomic::AtomicU64::new(0),
            error: Mutex::new(None),
        });
        // The worker gets its own Arc; the sender lives only in store
        // and source handles, so dropping them all disconnects it.
        let readahead = (readahead_depth > 0).then(|| {
            let (tx, rx) = sync_channel(readahead_depth.saturating_mul(2).max(1));
            let worker_inner = Arc::clone(&inner);
            // lint:allow(detached-thread): the read-ahead worker's
            // lifetime is bounded by its channel — every sender lives
            // in a store/source handle, and when the last one drops
            // the recv() disconnects and the worker returns. Joining
            // would require the Drop impl to block on I/O in flight.
            thread::spawn(move || readahead_worker(worker_inner, rx));
            tx
        });
        Ok(PagedStore { inner, readahead })
    }

    /// A fresh [`PagedSource`] cursor over this store. Sources share
    /// the store's buffer pool (and read-ahead worker), so a warm pool
    /// serves every cursor.
    pub fn source(&self) -> PagedSource {
        PagedSource {
            inner: Arc::clone(&self.inner),
            readahead: self.readahead.clone(),
            pos: 0,
            cached_page: u64::MAX,
            cached: Vec::new(),
            threshold: Score::ZERO,
        }
    }

    /// True when the store persists per-page grade bounds (format
    /// version 2) — i.e. bounded drains and probes can actually skip
    /// pages. Version-1 stores open fine but never skip.
    pub fn has_page_bounds(&self) -> bool {
        !self.inner.bounds.is_empty()
    }

    /// Pages bounded drains/probes proved unnecessary so far (also in
    /// [`PageIoStats::skipped`] via [`PagedStore::page_io`]).
    pub fn pages_skipped(&self) -> u64 {
        self.inner.page_io().skipped
    }

    /// The decoded header: geometry and identity.
    pub fn header(&self) -> &Header {
        &self.inner.header
    }

    /// Number of `(oid, grade)` entries persisted.
    pub fn len(&self) -> u64 {
        self.inner.header.n
    }

    /// True when the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.inner.header.n == 0
    }

    /// Cumulative buffer-pool counters (reads/hits/evictions) plus the
    /// store-level skipped-page counter.
    pub fn page_io(&self) -> PageIoStats {
        self.inner.page_io()
    }

    /// Pages the read-ahead worker loaded so far.
    pub fn readahead_loads(&self) -> u64 {
        self.inner.pool.readahead_loads()
    }

    /// Page frames currently resident in the buffer pool.
    pub fn resident_pages(&self) -> usize {
        self.inner.pool.resident()
    }

    /// Drops every pooled frame and resets the pool counters —
    /// benchmarks use this to measure cold-pool behaviour without
    /// reopening the file (the OS page cache stays warm; this measures
    /// the store's own pool, not the kernel's).
    pub fn clear_pool(&self) {
        self.inner.pool.clear();
        let skipped = &self.inner.pages_skipped;
        // ordering(Relaxed): resetting the telemetry skip counter —
        // readers only ever report it, never branch on it.
        skipped.store(0, std::sync::atomic::Ordering::Relaxed);
    }

    /// Retrieves (and clears) the first runtime I/O error any cursor
    /// hit since the last call — see the module docs' failure model.
    pub fn take_error(&self) -> Option<StoreError> {
        self.inner.take_error()
    }
}

/// A [`GradedSource`] cursor over an open [`PagedStore`].
///
/// Bit-identical to a [`crate::source::VecSource`] built from the same
/// pairs: the sorted run streams in descending-grade/ascending-oid
/// order, random access answers absent oids with grade zero, and the
/// charged access counts are untouched by paging (pool hits and
/// misses are physical telemetry, surfaced via
/// [`GradedSource::page_io`]).
#[derive(Debug)]
pub struct PagedSource {
    inner: Arc<StoreInner>,
    readahead: Option<SyncSender<u64>>,
    /// Sorted-run cursor: global entry index.
    pos: u64,
    /// Which sorted page `cached` holds (`u64::MAX` = none).
    cached_page: u64,
    /// Decoded entries of `cached_page` — one decode per page visit,
    /// so a sequential drain is slice copies, not per-entry reads.
    cached: Vec<ScoredObject<Oid>>,
    /// The caller's live grade threshold
    /// ([`GradedSource::note_threshold`]): a physical hint that gates
    /// read-ahead of provably useless pages, never a demand read.
    threshold: Score,
}

impl PagedSource {
    /// Decodes the sorted page holding entry `pos` into the cursor
    /// cache (hinting the read-ahead worker about upcoming pages) and
    /// returns false when the position is past the end or the page
    /// could not be read.
    fn ensure_sorted_page(&mut self) -> bool {
        let header = &self.inner.header;
        if self.pos >= header.n {
            return false;
        }
        let epp = header.entries_per_page as u64;
        let page = header.sorted_start() + self.pos / epp;
        if page == self.cached_page {
            return true;
        }
        // Hint the pages after this one while we decode it — except
        // pages whose persisted max grade is below the caller's noted
        // threshold: prefetching those would be provably wasted I/O.
        // Demand reads are never gated, so answers cannot change.
        if let Some(tx) = &self.readahead {
            let last = header.random_start();
            let sorted_start = header.sorted_start();
            for ahead in (page + 1)..(page + 3).min(last) {
                let below = self
                    .inner
                    .sorted_page_bounds(ahead - sorted_start)
                    .is_some_and(|(_, hi)| hi < self.threshold);
                if below {
                    continue;
                }
                match tx.try_send(ahead) {
                    Ok(()) | Err(TrySendError::Full(_)) => {}
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
        }
        let frame = match self.inner.load_page(page) {
            Ok(frame) => frame,
            Err(e) => {
                self.inner.record_error(e);
                return false;
            }
        };
        let count = page_entry_count(&frame, header.entries_per_page);
        self.cached.clear();
        self.cached.reserve(count);
        for i in 0..count {
            match decode_entry(&frame, i, page) {
                Ok(so) => self.cached.push(so),
                Err(e) => {
                    self.inner.record_error(e);
                    self.cached.clear();
                    return false;
                }
            }
        }
        self.cached_page = page;
        true
    }

    /// Looks one oid up in the random table: directory binary search,
    /// one page fetch, then binary search over the page's raw entries
    /// (no full-page decode for a single probe).
    fn lookup(&mut self, oid: Oid) -> Score {
        let header = &self.inner.header;
        if header.n == 0 {
            return Score::ZERO;
        }
        // Greatest directory entry ≤ oid names the only page that can
        // hold it.
        let idx = match self.inner.directory.binary_search(&oid) {
            Ok(i) => i,
            Err(0) => return Score::ZERO,
            Err(i) => i - 1,
        };
        let page = header.random_start() + idx as u64;
        let frame = match self.inner.load_page(page) {
            Ok(frame) => frame,
            Err(e) => {
                self.inner.record_error(e);
                return Score::ZERO;
            }
        };
        let count = page_entry_count(&frame, header.entries_per_page);
        let (mut lo, mut hi) = (0usize, count);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let mid_oid = read_u64(
                &frame,
                format::PAGE_HEADER_BYTES + mid * format::ENTRY_BYTES,
            );
            match mid_oid.cmp(&oid) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return match decode_entry(&frame, mid, page) {
                        Ok(so) => so.grade,
                        Err(e) => {
                            self.inner.record_error(e);
                            Score::ZERO
                        }
                    }
                }
            }
        }
        Score::ZERO
    }

    /// Cumulative buffer-pool counters of the shared store.
    pub fn pool_stats(&self) -> PageIoStats {
        self.inner.page_io()
    }

    /// Retrieves (and clears) the first runtime I/O error — same slot
    /// as [`PagedStore::take_error`].
    pub fn take_error(&self) -> Option<StoreError> {
        self.inner.take_error()
    }
}

impl GradedSource for PagedSource {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        if !self.ensure_sorted_page() {
            return None;
        }
        let epp = self.inner.header.entries_per_page as u64;
        let slot = (self.pos % epp) as usize;
        let item = self.cached.get(slot).copied();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        self.lookup(oid)
    }

    fn rewind(&mut self) {
        self.pos = 0;
        self.cached_page = u64::MAX;
        self.cached.clear();
        self.threshold = Score::ZERO;
    }

    fn info(&self) -> SourceInfo {
        SourceInfo::new(
            self.inner.header.label.clone(),
            self.inner.header.n as usize,
        )
    }

    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        let mut out = Vec::with_capacity(n.min(self.inner.header.n as usize));
        while out.len() < n {
            if !self.ensure_sorted_page() {
                break;
            }
            let epp = self.inner.header.entries_per_page as u64;
            let slot = (self.pos % epp) as usize;
            let take = (n - out.len()).min(self.cached.len() - slot);
            if take == 0 {
                break;
            }
            out.extend_from_slice(&self.cached[slot..slot + take]);
            self.pos += take as u64;
        }
        out
    }

    fn random_batch(&mut self, oids: &[Oid]) -> Vec<Score> {
        oids.iter().map(|&oid| self.lookup(oid)).collect()
    }

    fn note_threshold(&mut self, bound: Score) {
        self.threshold = bound;
    }

    // Bounded drain answered from the persisted per-page bounds: the
    // sorted run is globally descending, so page max grades are
    // non-increasing — the first page whose persisted max is below
    // `bound` proves the whole remaining run is too, and the drain
    // stops without reading it. Entries returned (and the cursor
    // position reached) are bit-identical to `VecSource`'s reference
    // semantics; only `PageIoStats::skipped` records the saved work.
    fn sorted_drain_bounded(&mut self, bound: Score) -> Option<Vec<ScoredObject<Oid>>> {
        let mut out = Vec::new();
        loop {
            let header = &self.inner.header;
            if self.pos >= header.n {
                break;
            }
            let epp = header.entries_per_page as u64;
            let run_page = self.pos / epp;
            if let Some((_, hi)) = self.inner.sorted_page_bounds(run_page) {
                if hi < bound {
                    let remaining = header.sorted_pages.saturating_sub(run_page);
                    self.inner.note_skipped(remaining);
                    break;
                }
            }
            if !self.ensure_sorted_page() {
                break;
            }
            let slot = (self.pos % epp) as usize;
            let tail = &self.cached[slot..];
            let take = tail.partition_point(|so| so.grade >= bound);
            out.extend_from_slice(&tail[..take]);
            self.pos += take as u64;
            if take < tail.len() {
                // The boundary fell inside this page. When the store
                // carries bounds, every later page is individually
                // provable useless (its persisted max is ≤ the
                // boundary grade, which is < bound) — count them all
                // as skipped; they are never visited.
                if !self.inner.bounds.is_empty() {
                    let after = self
                        .inner
                        .header
                        .sorted_pages
                        .saturating_sub(run_page.saturating_add(1));
                    self.inner.note_skipped(after);
                }
                break;
            }
        }
        Some(out)
    }

    // Bounded probe: when the random-table page that could hold `oid`
    // has a persisted max grade below `bound`, the contract's answer
    // (`Score::ZERO`, "cannot affect the caller") is known without
    // reading the page.
    fn random_access_bounded(&mut self, oid: Oid, bound: Score) -> Score {
        if self.inner.header.n == 0 {
            return Score::ZERO;
        }
        let idx = match self.inner.directory.binary_search(&oid) {
            Ok(i) => i,
            Err(0) => return Score::ZERO,
            Err(i) => i - 1,
        };
        if let Some((_, hi)) = self.inner.random_page_bounds(idx as u64) {
            if hi < bound {
                self.inner.note_skipped(1);
                return Score::ZERO;
            }
        }
        let grade = self.lookup(oid);
        if grade >= bound {
            grade
        } else {
            Score::ZERO
        }
    }

    // Partitioning materializes the sorted run once (sequential page
    // reads through the pool) and shares the random index across
    // shards, exactly like `VecSource::partition`.
    fn partition(
        &self,
        partitioner: SourcePartitioner,
        shards: usize,
    ) -> Option<Vec<ShardedSource>> {
        if shards == 0 {
            return None;
        }
        let header = &self.inner.header;
        let mut sorted = Vec::with_capacity(header.n as usize);
        for p in 0..header.sorted_pages {
            let page = header.sorted_start() + p;
            let frame = match self.inner.load_page(page) {
                Ok(frame) => frame,
                Err(e) => {
                    self.inner.record_error(e);
                    return None;
                }
            };
            let count = page_entry_count(&frame, header.entries_per_page);
            for i in 0..count {
                match decode_entry(&frame, i, page) {
                    Ok(so) => sorted.push(so),
                    Err(e) => {
                        self.inner.record_error(e);
                        return None;
                    }
                }
            }
        }
        let by_oid: HashMap<Oid, Score> = sorted.iter().map(|so| (so.id, so.grade)).collect();
        Some(ShardedSource::split(
            &header.label,
            &sorted,
            Arc::new(by_oid),
            partitioner,
            shards,
        ))
    }

    // The stats page is the whole point: the planner prices this
    // source without touching a single data page. The persisted
    // histogram was built by the same `from_sorted_by` the in-memory
    // sources use, so it is bit-identical to `VecSource`'s at the
    // persisted resolution; other resolutions would need data pages
    // and return `None`.
    fn grade_histogram(&self, bins: usize) -> Option<GradeHistogram> {
        let h = &self.inner.histogram;
        (h.universe() == 0 || h.bins() == bins).then(|| h.clone())
    }

    fn page_io(&self) -> Option<PageIoStats> {
        Some(self.inner.page_io())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use fmdb_core::stats::DEFAULT_HISTOGRAM_BINS;
    use std::path::PathBuf;

    /// A scratch path under the workspace `target/` dir (tests must
    /// not write outside the repository).
    fn scratch(name: &str) -> PathBuf {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/store-tests");
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(name)
    }

    fn sample_pairs(n: u64, seed: u64) -> Vec<(Oid, Score)> {
        (0..n)
            .map(|i| {
                let h = (i ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (
                    i * 3,
                    Score::clamped((h >> 11) as f64 / (1u64 << 53) as f64),
                )
            })
            .collect()
    }

    #[test]
    fn roundtrip_matches_vecsource_exactly() {
        let pairs = sample_pairs(500, 7);
        let path = scratch("roundtrip.fmdb");
        build_store(
            &path,
            "colors",
            pairs.clone(),
            &BuildConfig::with_page_size(512),
        )
        .unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        let mut paged = store.source();
        let mut vec = VecSource::new("colors", pairs);

        assert_eq!(paged.info().label, vec.info().label);
        assert_eq!(paged.info().universe_size, vec.info().universe_size);

        // Whole sorted stream, bit for bit.
        loop {
            let (a, b) = (paged.sorted_next(), vec.sorted_next());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        // Random access incl. absent oids (pairs use oids ≡ 0 mod 3).
        for oid in 0..1600 {
            assert_eq!(
                paged.random_access(oid),
                vec.random_access(oid),
                "oid {oid}"
            );
        }
        // Batched access after rewind.
        paged.rewind();
        vec.rewind();
        assert_eq!(paged.sorted_batch(123), vec.sorted_batch(123));
        assert_eq!(
            paged.random_batch(&[0, 1, 3, 999]),
            vec.random_batch(&[0, 1, 3, 999])
        );
        // Histogram off the stats page: identical to the in-memory
        // one, with zero data-page reads charged for it.
        let before = store.page_io().reads;
        assert_eq!(
            paged.grade_histogram(DEFAULT_HISTOGRAM_BINS),
            vec.grade_histogram(DEFAULT_HISTOGRAM_BINS)
        );
        assert_eq!(store.page_io().reads, before, "stats page is in memory");
        assert!(store.take_error().is_none());
    }

    #[test]
    fn empty_store_roundtrips() {
        let path = scratch("empty.fmdb");
        build_store(&path, "empty", Vec::new(), &BuildConfig::DEFAULT).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        assert!(store.is_empty());
        let mut src = store.source();
        assert_eq!(src.sorted_next(), None);
        assert_eq!(src.random_access(5), Score::ZERO);
        assert_eq!(
            src.grade_histogram(4),
            VecSource::new("empty", Vec::new()).grade_histogram(4)
        );
    }

    #[test]
    fn build_from_source_drains_and_restores() {
        let mut vec = VecSource::from_dense(
            "dense",
            &(0..300)
                .map(|i| Score::clamped(i as f64 / 300.0))
                .collect::<Vec<_>>(),
        );
        let path = scratch("from-source.fmdb");
        build_store_from_source(&path, &mut vec, &BuildConfig::DEFAULT).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        assert_eq!(store.len(), 300);
        let mut paged = store.source();
        vec.rewind();
        assert_eq!(paged.sorted_batch(300), vec.sorted_batch(300));
    }

    #[test]
    fn partition_matches_vecsource_partition() {
        let pairs = sample_pairs(200, 3);
        let path = scratch("partition.fmdb");
        build_store(&path, "p", pairs.clone(), &BuildConfig::with_page_size(256)).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        let paged_shards = store
            .source()
            .partition(SourcePartitioner::Modulo, 3)
            .expect("paged stores partition");
        let vec_shards = VecSource::new("p", pairs)
            .partition(SourcePartitioner::Modulo, 3)
            .expect("vec sources partition");
        for (mut a, mut b) in paged_shards.into_iter().zip(vec_shards) {
            assert_eq!(a.info().universe_size, b.info().universe_size);
            loop {
                let (x, y) = (a.sorted_next(), b.sorted_next());
                assert_eq!(x, y);
                if x.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let path = scratch("truncated.fmdb");
        build_store(
            &path,
            "t",
            sample_pairs(500, 1),
            &BuildConfig::with_page_size(512),
        )
        .unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 700]).unwrap();
        assert!(matches!(
            PagedStore::open(&path, StoreOptions::DEFAULT),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_data_page_is_a_checksum_error() {
        let path = scratch("corrupt.fmdb");
        build_store(
            &path,
            "c",
            sample_pairs(500, 2),
            &BuildConfig::with_page_size(512),
        )
        .unwrap();
        // Flip a bit in the middle of a data page (past header, stats,
        // directory, and bounds pages — computed from the header so
        // the offset tracks the format layout).
        let sorted_start = {
            let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
            store.header().sorted_start()
        };
        let mut bytes = std::fs::read(&path).unwrap();
        let offset = 512 * sorted_start as usize + 100;
        bytes[offset] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).expect("open is page-local");
        let mut src = store.source();
        // Draining hits the bad page eventually: the stream degrades
        // (never panics) and the typed error is parked.
        while src.sorted_next().is_some() {}
        let hit_sorted = matches!(
            store.take_error(),
            Some(StoreError::ChecksumMismatch { .. })
        );
        // Random probes walk every random page: if the flipped page
        // was in the random section the error surfaces here instead.
        for oid in 0..1500 {
            let _ = src.random_access(oid);
        }
        let hit_random = matches!(
            store.take_error(),
            Some(StoreError::ChecksumMismatch { .. })
        );
        assert!(hit_sorted || hit_random, "the corrupt page must surface");
    }

    #[test]
    fn non_store_file_is_bad_magic() {
        let path = scratch("not-a-store.fmdb");
        std::fs::write(&path, vec![0u8; 4096]).unwrap();
        assert!(matches!(
            PagedStore::open(&path, StoreOptions::DEFAULT),
            Err(StoreError::BadMagic)
        ));
    }

    #[test]
    fn readahead_worker_warms_the_pool() {
        let pairs = sample_pairs(2000, 9);
        let path = scratch("readahead.fmdb");
        build_store(&path, "ra", pairs, &BuildConfig::with_page_size(256)).unwrap();
        let store = PagedStore::open(
            &path,
            StoreOptions {
                pool_pages: Some(512),
                readahead: Some(8),
            },
        )
        .unwrap();
        let mut src = store.source();
        while src.sorted_next().is_some() {}
        // The worker is asynchronous; all we assert is that it ran and
        // its loads landed in the shared pool without corrupting the
        // stream (the drain above checked every entry decoded).
        let drained: Vec<_> = {
            src.rewind();
            src.sorted_batch(usize::MAX)
        };
        assert_eq!(drained.len(), 2000);
        assert!(store.take_error().is_none());
    }

    #[test]
    fn pool_counters_distinguish_cold_and_warm() {
        let pairs = sample_pairs(1000, 4);
        let path = scratch("coldwarm.fmdb");
        build_store(&path, "cw", pairs, &BuildConfig::with_page_size(512)).unwrap();
        let store = PagedStore::open(
            &path,
            StoreOptions {
                pool_pages: Some(256),
                readahead: None,
            },
        )
        .unwrap();
        let mut src = store.source();
        while src.sorted_next().is_some() {}
        let cold = store.page_io();
        assert!(cold.reads > 0, "cold drain reads pages");
        src.rewind();
        while src.sorted_next().is_some() {}
        let warm = store.page_io();
        assert_eq!(warm.reads, cold.reads, "warm drain reads nothing new");
        assert!(warm.hits > cold.hits, "warm drain hits the pool");
        store.clear_pool();
        assert_eq!(store.page_io(), PageIoStats::ZERO);
        assert_eq!(store.resident_pages(), 0);
    }

    #[test]
    fn io_calibration_prices_random_above_sorted_when_cold() {
        let pairs = sample_pairs(4000, 11);
        let path = scratch("calibrate.fmdb");
        build_store(&path, "cal", pairs, &BuildConfig::with_page_size(512)).unwrap();
        let store = PagedStore::open(
            &path,
            StoreOptions {
                pool_pages: Some(8),
                readahead: None,
            },
        )
        .unwrap();
        let mut src = store.source();
        let model = crate::stats::calibrate_cost_model_io(&mut src, 64).expect("paged source");
        assert!(
            model.random_unit / model.sorted_unit > 4.0,
            "cold random probes cost whole pages: ratio {}",
            model.random_unit / model.sorted_unit
        );
        // An in-memory source has no page counters to calibrate from.
        let mut vec = VecSource::from_dense("v", &[Score::HALF; 8]);
        assert!(crate::stats::calibrate_cost_model_io(&mut vec, 4).is_none());
    }

    #[test]
    fn zero_options_are_rejected_with_typed_errors() {
        let path = scratch("zero-options.fmdb");
        build_store(&path, "z", sample_pairs(10, 5), &BuildConfig::DEFAULT).unwrap();
        assert!(matches!(
            PagedStore::open(
                &path,
                StoreOptions {
                    pool_pages: Some(0),
                    readahead: Some(4),
                },
            ),
            Err(StoreError::InvalidOptions(_))
        ));
        assert!(matches!(
            PagedStore::open(
                &path,
                StoreOptions {
                    pool_pages: Some(256),
                    readahead: Some(0),
                },
            ),
            Err(StoreError::InvalidOptions(_))
        ));
        // `None` is the explicit disable and still opens.
        let store = PagedStore::open(
            &path,
            StoreOptions {
                pool_pages: None,
                readahead: None,
            },
        )
        .unwrap();
        assert_eq!(store.len(), 10);
    }

    #[test]
    fn zero_page_size_is_rejected_at_build() {
        let path = scratch("zero-page-size.fmdb");
        let cfg = BuildConfig::with_page_size(0);
        assert!(matches!(
            build_store(&path, "z", sample_pairs(4, 1), &cfg),
            Err(StoreError::PageSizeTooSmall(0))
        ));
    }

    #[test]
    fn version_1_stores_open_with_pruning_disabled() {
        let pairs = sample_pairs(400, 13);
        let v1 = scratch("compat-v1.fmdb");
        let v2 = scratch("compat-v2.fmdb");
        let cfg = BuildConfig::with_page_size(512);
        format::build_store_versioned(&v1, "compat", pairs.clone(), &cfg, format::VERSION_1)
            .unwrap();
        build_store(&v2, "compat", pairs.clone(), &cfg).unwrap();

        let old = PagedStore::open(&v1, StoreOptions::DEFAULT).unwrap();
        let new = PagedStore::open(&v2, StoreOptions::DEFAULT).unwrap();
        assert!(!old.has_page_bounds(), "v1 carries no bounds");
        assert!(new.has_page_bounds(), "v2 persists bounds");

        // Both versions stream and probe identically to the reference.
        let mut vec = VecSource::new("compat", pairs);
        let mut old_src = old.source();
        let mut new_src = new.source();
        loop {
            let want = vec.sorted_next();
            assert_eq!(old_src.sorted_next(), want);
            assert_eq!(new_src.sorted_next(), want);
            if want.is_none() {
                break;
            }
        }

        // Bounded drains still answer exactly on v1 — they just cannot
        // skip, so the skip counter stays zero.
        for src in [&mut old_src, &mut new_src] {
            src.rewind();
        }
        vec.rewind();
        let bound = Score::clamped(0.8);
        let want = vec.sorted_drain_bounded(bound).unwrap();
        assert_eq!(old_src.sorted_drain_bounded(bound).unwrap(), want);
        assert_eq!(new_src.sorted_drain_bounded(bound).unwrap(), want);
        assert_eq!(old.page_io().skipped, 0, "v1 cannot skip");
        assert!(new.page_io().skipped > 0, "v2 skips the low tail");
    }

    #[test]
    fn bounded_drain_matches_vecsource_and_skips_pages() {
        let pairs = sample_pairs(2000, 21);
        let path = scratch("bounded-drain.fmdb");
        build_store(&path, "bd", pairs.clone(), &BuildConfig::with_page_size(256)).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        for bound in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            let bound = Score::clamped(bound);
            let mut paged = store.source();
            let mut vec = VecSource::new("bd", pairs.clone());
            let want = vec.sorted_drain_bounded(bound).unwrap();
            assert_eq!(paged.sorted_drain_bounded(bound).unwrap(), want);
            // After the bounded drain both cursors sit at the first
            // below-bound entry; the rest of the stream still agrees.
            loop {
                let (a, b) = (paged.sorted_next(), vec.sorted_next());
                assert_eq!(a, b, "post-drain stream at bound {bound}");
                if a.is_none() {
                    break;
                }
            }
        }
        // A selective drain on a fresh cursor must actually skip.
        store.clear_pool();
        let mut paged = store.source();
        let drained = paged.sorted_drain_bounded(Score::clamped(0.95)).unwrap();
        assert!(!drained.is_empty(), "the high head still streams");
        assert!(store.page_io().skipped > 0, "the low tail is skipped");
        assert!(store.take_error().is_none());
    }

    #[test]
    fn bounded_random_probe_skips_low_pages() {
        // Grades correlate with oid so random-table pages have tight
        // grade ranges — the realistic case where per-page bounds pay.
        let pairs: Vec<(Oid, Score)> = (0..1000)
            .map(|i| (i, Score::clamped(i as f64 / 1000.0)))
            .collect();
        let path = scratch("bounded-probe.fmdb");
        build_store(&path, "bp", pairs.clone(), &BuildConfig::with_page_size(256)).unwrap();
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
        let mut paged = store.source();
        let mut vec = VecSource::new("bp", pairs);
        let bound = Score::clamped(0.9);
        for oid in 0..1200 {
            assert_eq!(
                paged.random_access_bounded(oid, bound),
                vec.random_access_bounded(oid, bound),
                "oid {oid}"
            );
        }
        assert!(
            store.page_io().skipped > 0,
            "low-grade pages answered from bounds"
        );
        assert!(store.take_error().is_none());
    }

    #[test]
    fn corrupt_bounds_page_fails_open() {
        let path = scratch("corrupt-bounds.fmdb");
        build_store(
            &path,
            "cb",
            sample_pairs(500, 6),
            &BuildConfig::with_page_size(512),
        )
        .unwrap();
        let bounds_start = {
            let store = PagedStore::open(&path, StoreOptions::DEFAULT).unwrap();
            assert!(store.has_page_bounds());
            store.header().bounds_start()
        };
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[512 * bounds_start as usize + 40] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        // Bounds are validated eagerly: a corrupt summary must fail the
        // open, never silently mis-prune.
        assert!(matches!(
            PagedStore::open(&path, StoreOptions::DEFAULT),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}
