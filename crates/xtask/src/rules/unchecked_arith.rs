//! `unchecked-arith`: bare `+`/`-`/`*` on untyped integer counters in
//! the hot kernels (the embed distance loops and the store's page
//! machinery) must use `saturating_*`/`checked_*`/`wrapping_*` — or be
//! justified.
//!
//! These paths process attacker-sized inputs (object counts, page
//! offsets, byte lengths): release builds wrap silently on overflow,
//! which in a page-offset computation means reading the wrong page,
//! not crashing. Float arithmetic is exempt (it saturates to ±inf by
//! construction), as is literal-only constant folding.

use crate::analyze::AnalyzedFile;
use crate::diagnostics::Diagnostic;
use crate::parser::OperandHint;
use crate::workspace::FileClass;

/// Rule name, as reported and as used in `lint:allow(...)`.
pub const RULE: &str = "unchecked-arith";

/// Path fragments that mark a file as a hot kernel.
const KERNEL_PATHS: &[&str] = &["media/src/embed", "middleware/src/store"];

fn in_kernel(rel_path: &str) -> bool {
    KERNEL_PATHS.iter().any(|k| rel_path.contains(k))
}

/// An operand the rule considers integer-valued.
fn int_like(hint: OperandHint) -> bool {
    matches!(hint, OperandHint::IntLit | OperandHint::IntIdent)
}

/// Checks one parsed file.
pub fn check(af: &AnalyzedFile<'_>) -> Vec<Diagnostic> {
    if af.source.class != FileClass::Lib {
        return Vec::new();
    }
    let rel = af.source.rel_path.display().to_string();
    if !in_kernel(&rel) {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for f in &af.tree.fns {
        for site in &f.body.arith {
            // Both operands integer-like, and at least one a runtime
            // value (two literals are compile-time constant folding).
            if !int_like(site.lhs) || !int_like(site.rhs) {
                continue;
            }
            if site.lhs == OperandHint::IntLit && site.rhs == OperandHint::IntLit {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    RULE,
                    &af.source.rel_path,
                    site.line,
                    site.col,
                    format!(
                        "unchecked integer `{}` in hot kernel `{}` — wraps \
                         silently on overflow in release builds",
                        site.op, f.name
                    ),
                )
                .with_help(format!(
                    "use `saturating_*`/`checked_*`/`wrapping_*` to make the \
                     overflow policy explicit, or justify the bound: \
                     `// lint:allow({RULE}): <why the operands cannot overflow>`"
                )),
            );
        }
    }
    diags
}
