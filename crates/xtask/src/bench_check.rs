//! `cargo xtask check-bench` — gate on the `BENCH_engine.json` perf
//! trajectory.
//!
//! `e00_run_all` writes one entry per experiment; this check fails the
//! build when the artifact has drifted from the suite: a missing
//! experiment (E1–E22), a non-numeric measurement (NaN/inf serialize to
//! bare tokens, which are invalid JSON and rejected by the parser
//! here), an E22 instance-optimality ratio below 1 (the certificate
//! oracle is a lower bound — a ratio under 1 means the harness itself
//! is broken, not that an algorithm beat the optimum), an E16
//! planner-regret drift (every `regret_*` cell ≥ 1 by construction,
//! `regret_median` ≤ 2, `regret_max` ≤ 10 — the unified cost model's
//! quality bar), E18 paged-store telemetry that is missing or
//! nonsensical (cold/warm wall-clock present, `warm_hit_rate` in
//! [0, 1], `cold_page_reads` > 0 — a zero means the experiment never
//! touched the store — and `warm_ta_vs_mem` a positive finite ratio),
//! or E23 block-max pruning telemetry that is missing or nonsensical
//! (`corpus_speedup`/`drain_speedup` positive — pruned runs that take
//! no time at all mean the timer broke — and both skip rates in
//! [0, 1]).
//!
//! The parser is a minimal hand-rolled recursive-descent JSON reader —
//! same no-dependency reasoning as the writer in
//! `crates/bench/src/report.rs`.

use std::fmt::Write as _;

/// A parsed JSON value (only what the bench artifact needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `{...}` with insertion order preserved.
    Obj(Vec<(String, Json)>),
    /// `[...]`.
    Arr(Vec<Json>),
    /// A string.
    Str(String),
    /// A number (finite by construction — `NaN`/`inf` never parse).
    Num(f64),
    /// `true`/`false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("invalid JSON at byte {}: {message}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.consume(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos).copied() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return Err(self.error("bad \\u escape")),
                            }
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    if let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                        out.push_str(s);
                    }
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|v| v.is_finite())
            .map(Json::Num)
            .ok_or_else(|| self.error("bad number"))
    }
}

/// Parses a JSON document.
pub fn parse(content: &str) -> Result<Json, String> {
    let mut p = Parser::new(content);
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing garbage after document"));
    }
    Ok(value)
}

/// The experiment ids the suite must have produced.
const REQUIRED: std::ops::RangeInclusive<u32> = 1..=23;

/// Validates a `BENCH_engine.json` payload. Returns a human-readable
/// summary on success, the first failure otherwise.
pub fn check(content: &str) -> Result<String, String> {
    let root = parse(content)?;
    match root.get("schema").and_then(Json::as_str) {
        Some("fmdb-bench-engine/v1") => {}
        other => return Err(format!("unexpected schema {other:?}")),
    }
    let experiments = match root.get("experiments") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing `experiments` array".to_owned()),
    };

    let mut seen: Vec<String> = Vec::new();
    let mut min_ratio = f64::INFINITY;
    let mut ratio_count = 0usize;
    let mut regret_count = 0usize;
    let mut regret_median: Option<f64> = None;
    let mut regret_max: Option<f64> = None;
    let mut e18_cold_wall: Option<f64> = None;
    let mut e18_warm_wall: Option<f64> = None;
    let mut e18_hit_rate: Option<f64> = None;
    let mut e18_page_reads: Option<f64> = None;
    let mut e18_ta_ratio: Option<f64> = None;
    let mut e23_corpus_speedup: Option<f64> = None;
    let mut e23_drain_speedup: Option<f64> = None;
    let mut e23_corpus_skip: Option<f64> = None;
    let mut e23_page_skip: Option<f64> = None;
    for entry in experiments {
        let id = entry
            .get("id")
            .and_then(Json::as_str)
            .ok_or("experiment entry without a string `id`")?
            .to_owned();
        for field in ["wall_ms", "sorted", "random"] {
            let value = entry
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("{id}: `{field}` missing or non-numeric"))?;
            if value < 0.0 {
                return Err(format!("{id}: `{field}` is negative ({value})"));
            }
        }
        if let Some(metrics) = entry.get("metrics") {
            let fields = match metrics {
                Json::Obj(fields) => fields,
                _ => return Err(format!("{id}: `metrics` is not an object")),
            };
            for (name, value) in fields {
                let v = value
                    .as_num()
                    .ok_or_else(|| format!("{id}: metric `{name}` is non-numeric"))?;
                if id == "E22" && name.starts_with("opt_ratio_") {
                    ratio_count += 1;
                    min_ratio = min_ratio.min(v);
                    if v < 1.0 - 1e-9 {
                        return Err(format!(
                            "E22: optimality ratio `{name}` = {v} is below 1 — the \
                             certificate oracle is a lower bound, so this is a harness bug"
                        ));
                    }
                }
                if id == "E18" {
                    match name.as_str() {
                        "cold_wall_ms" => e18_cold_wall = Some(v),
                        "warm_wall_ms" => e18_warm_wall = Some(v),
                        "warm_hit_rate" => e18_hit_rate = Some(v),
                        "cold_page_reads" => e18_page_reads = Some(v),
                        "warm_ta_vs_mem" => e18_ta_ratio = Some(v),
                        _ => {}
                    }
                }
                if id == "E23" {
                    match name.as_str() {
                        "corpus_speedup" => e23_corpus_speedup = Some(v),
                        "drain_speedup" => e23_drain_speedup = Some(v),
                        "corpus_skip_rate" => e23_corpus_skip = Some(v),
                        "page_skip_rate" => e23_page_skip = Some(v),
                        _ => {}
                    }
                }
                if id == "E16" && name.starts_with("regret") {
                    if v < 1.0 - 1e-9 {
                        return Err(format!(
                            "E16: `{name}` = {v} is below 1 — regret compares against a \
                             pool that includes the optimizer's own run, so this is a \
                             harness bug"
                        ));
                    }
                    match name.as_str() {
                        "regret_median" => regret_median = Some(v),
                        "regret_max" => regret_max = Some(v),
                        _ => regret_count += 1,
                    }
                }
            }
        }
        seen.push(id);
    }

    for i in REQUIRED {
        let want = format!("E{i}");
        if !seen.contains(&want) {
            return Err(format!(
                "experiment {want} missing from the trajectory (found: {})",
                seen.join(", ")
            ));
        }
    }
    if ratio_count == 0 {
        return Err("E22 carries no `opt_ratio_*` metrics".to_owned());
    }
    if regret_count == 0 {
        return Err("E16 carries no per-cell `regret_*` metrics".to_owned());
    }
    let median = regret_median.ok_or("E16 is missing the `regret_median` metric")?;
    let max = regret_max.ok_or("E16 is missing the `regret_max` metric")?;
    if median > 2.0 + 1e-9 {
        return Err(format!(
            "E16: regret_median = {median} exceeds the 2x bound — the unified planner \
             is mispricing the common case"
        ));
    }
    if max > 10.0 + 1e-9 {
        return Err(format!(
            "E16: regret_max = {max} exceeds the 10x bound — some sweep cell picks a \
             catastrophically wrong plan"
        ));
    }
    let cold_wall = e18_cold_wall.ok_or("E18 is missing the `cold_wall_ms` metric")?;
    let warm_wall = e18_warm_wall.ok_or("E18 is missing the `warm_wall_ms` metric")?;
    if cold_wall < 0.0 || warm_wall < 0.0 {
        return Err(format!(
            "E18: negative wall-clock (cold {cold_wall}, warm {warm_wall})"
        ));
    }
    let hit_rate = e18_hit_rate.ok_or("E18 is missing the `warm_hit_rate` metric")?;
    if !(0.0..=1.0).contains(&hit_rate) {
        return Err(format!(
            "E18: warm_hit_rate = {hit_rate} is outside [0, 1] — the buffer-pool \
             counters are broken"
        ));
    }
    let page_reads = e18_page_reads.ok_or("E18 is missing the `cold_page_reads` metric")?;
    if page_reads < 1.0 {
        return Err(format!(
            "E18: cold_page_reads = {page_reads} — a cold run that reads no pages \
             never touched the store"
        ));
    }
    let ta_ratio = e18_ta_ratio.ok_or("E18 is missing the `warm_ta_vs_mem` metric")?;
    if !ta_ratio.is_finite() || ta_ratio <= 0.0 {
        return Err(format!(
            "E18: warm_ta_vs_mem = {ta_ratio} — the warm-paged vs in-memory TA ratio \
             must be a positive finite number"
        ));
    }

    let corpus_speedup =
        e23_corpus_speedup.ok_or("E23 is missing the `corpus_speedup` metric")?;
    let drain_speedup = e23_drain_speedup.ok_or("E23 is missing the `drain_speedup` metric")?;
    for (name, v) in [
        ("corpus_speedup", corpus_speedup),
        ("drain_speedup", drain_speedup),
    ] {
        if !v.is_finite() || v <= 0.0 {
            return Err(format!(
                "E23: `{name}` = {v} — a pruned-vs-unpruned wall-clock ratio must be a \
                 positive finite number"
            ));
        }
    }
    for (name, v) in [
        (
            "corpus_skip_rate",
            e23_corpus_skip.ok_or("E23 is missing the `corpus_skip_rate` metric")?,
        ),
        (
            "page_skip_rate",
            e23_page_skip.ok_or("E23 is missing the `page_skip_rate` metric")?,
        ),
    ] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!(
                "E23: `{name}` = {v} is outside [0, 1] — the skip counters are broken"
            ));
        }
    }

    let mut summary = format!(
        "check-bench: {} experiments, E1–E23 all present and numeric",
        seen.len()
    );
    let _ = write!(
        summary,
        "; {ratio_count} optimality ratios ≥ 1 (min {min_ratio:.3}); \
         {regret_count} planner regrets (median {median:.3}, max {max:.3}); \
         E18 paged store: {page_reads:.0} cold page reads, warm hit rate {hit_rate:.3}; \
         E23 pruning: corpus {corpus_speedup:.2}x, drain {drain_speedup:.2}x"
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD_E16: &str = "{\"regret_sel5_k5_r1\":1.0,\"regret_median\":1.05,\"regret_max\":1.3}";

    const GOOD_E18: &str = "{\"cold_wall_ms\":8.0,\"warm_wall_ms\":2.0,\
                            \"warm_hit_rate\":0.95,\"cold_page_reads\":64.0,\
                            \"warm_ta_vs_mem\":1.4}";

    const GOOD_E23: &str = "{\"corpus_speedup\":2.5,\"corpus_skip_rate\":0.8,\
                            \"drain_speedup\":15.0,\"page_skip_rate\":0.94}";

    fn artifact_e23(
        ids: &[&str],
        e22_metrics: &str,
        e16_metrics: &str,
        e18_metrics: &str,
        e23_metrics: &str,
    ) -> String {
        let entries: Vec<String> = ids
            .iter()
            .map(|id| {
                let metrics = match *id {
                    "E22" => e22_metrics,
                    "E16" => e16_metrics,
                    "E18" => e18_metrics,
                    "E23" => e23_metrics,
                    _ => "{}",
                };
                format!(
                    "{{\"id\":\"{id}\",\"title\":\"t\",\"wall_ms\":1.0,\"sorted\":10,\
                     \"random\":2,\"cache_hits\":0,\"cache_misses\":2,\"worker_spawns\":0,\
                     \"metrics\":{metrics}}}"
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"fmdb-bench-engine/v1\",\"quick\":true,\"experiments\":[{}]}}",
            entries.join(",")
        )
    }

    fn artifact_full(
        ids: &[&str],
        e22_metrics: &str,
        e16_metrics: &str,
        e18_metrics: &str,
    ) -> String {
        artifact_e23(ids, e22_metrics, e16_metrics, e18_metrics, GOOD_E23)
    }

    fn artifact_with(ids: &[&str], e22_metrics: &str, e16_metrics: &str) -> String {
        artifact_full(ids, e22_metrics, e16_metrics, GOOD_E18)
    }

    fn artifact(ids: &[&str], e22_metrics: &str) -> String {
        artifact_with(ids, e22_metrics, GOOD_E16)
    }

    fn all_ids() -> Vec<String> {
        (1..=23).map(|i| format!("E{i}")).collect()
    }

    #[test]
    fn accepts_a_complete_artifact() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let doc = artifact(
            &refs,
            "{\"opt_ratio_ta_t0_r1\":1.25,\"opt_ratio_ca_t0_r1\":1.0}",
        );
        let summary = check(&doc).expect("valid artifact");
        assert!(summary.contains("23 experiments"), "{summary}");
        assert!(summary.contains("min 1.000"), "{summary}");
        assert!(summary.contains("median 1.050"), "{summary}");
        assert!(summary.contains("drain 15.00x"), "{summary}");
    }

    #[test]
    fn rejects_missing_experiment() {
        let ids: Vec<String> = (1..=22).map(|i| format!("E{i}")).collect();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact(&refs, "{}")).unwrap_err();
        assert!(err.contains("E23 missing"), "{err}");
    }

    #[test]
    fn rejects_nan_measurements() {
        // NaN serializes as a bare token — invalid JSON, parser error.
        let doc = "{\"schema\":\"fmdb-bench-engine/v1\",\"quick\":true,\"experiments\":[\
                   {\"id\":\"E1\",\"wall_ms\":NaN,\"sorted\":1,\"random\":1}]}";
        assert!(check(doc).is_err());
    }

    #[test]
    fn rejects_sub_one_optimality_ratio() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact(&refs, "{\"opt_ratio_ta_t0_r1\":0.8}")).unwrap_err();
        assert!(err.contains("below 1"), "{err}");
    }

    #[test]
    fn rejects_e22_without_ratios() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact(&refs, "{}")).unwrap_err();
        assert!(err.contains("no `opt_ratio_*`"), "{err}");
    }

    const GOOD_E22: &str = "{\"opt_ratio_ta_t0_r1\":1.25}";

    #[test]
    fn rejects_e16_without_regret_cells() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact_with(&refs, GOOD_E22, "{}")).unwrap_err();
        assert!(err.contains("no per-cell `regret_*`"), "{err}");
    }

    #[test]
    fn rejects_sub_one_regret() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e16 = "{\"regret_sel5_k5_r1\":0.7,\"regret_median\":1.0,\"regret_max\":1.0}";
        let err = check(&artifact_with(&refs, GOOD_E22, e16)).unwrap_err();
        assert!(err.contains("below 1"), "{err}");
    }

    #[test]
    fn rejects_excessive_median_regret() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e16 = "{\"regret_sel5_k5_r1\":1.0,\"regret_median\":2.4,\"regret_max\":3.0}";
        let err = check(&artifact_with(&refs, GOOD_E22, e16)).unwrap_err();
        assert!(err.contains("regret_median"), "{err}");
    }

    #[test]
    fn rejects_excessive_max_regret() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e16 = "{\"regret_sel5_k5_r1\":1.0,\"regret_median\":1.1,\"regret_max\":12.0}";
        let err = check(&artifact_with(&refs, GOOD_E22, e16)).unwrap_err();
        assert!(err.contains("regret_max"), "{err}");
    }

    #[test]
    fn rejects_e16_missing_aggregates() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e16 = "{\"regret_sel5_k5_r1\":1.0,\"regret_max\":1.3}";
        let err = check(&artifact_with(&refs, GOOD_E22, e16)).unwrap_err();
        assert!(err.contains("regret_median"), "{err}");
    }

    #[test]
    fn rejects_e18_without_metrics() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact_full(&refs, GOOD_E22, GOOD_E16, "{}")).unwrap_err();
        assert!(err.contains("cold_wall_ms"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_hit_rate() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e18 = "{\"cold_wall_ms\":8.0,\"warm_wall_ms\":2.0,\
                    \"warm_hit_rate\":1.5,\"cold_page_reads\":64.0,\
                    \"warm_ta_vs_mem\":1.4}";
        let err = check(&artifact_full(&refs, GOOD_E22, GOOD_E16, e18)).unwrap_err();
        assert!(err.contains("warm_hit_rate"), "{err}");
    }

    #[test]
    fn rejects_zero_page_reads() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e18 = "{\"cold_wall_ms\":8.0,\"warm_wall_ms\":2.0,\
                    \"warm_hit_rate\":0.9,\"cold_page_reads\":0.0,\
                    \"warm_ta_vs_mem\":1.4}";
        let err = check(&artifact_full(&refs, GOOD_E22, GOOD_E16, e18)).unwrap_err();
        assert!(err.contains("cold_page_reads"), "{err}");
    }

    #[test]
    fn rejects_e18_without_warm_ta_ratio() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e18 = "{\"cold_wall_ms\":8.0,\"warm_wall_ms\":2.0,\
                    \"warm_hit_rate\":0.9,\"cold_page_reads\":64.0}";
        let err = check(&artifact_full(&refs, GOOD_E22, GOOD_E16, e18)).unwrap_err();
        assert!(err.contains("warm_ta_vs_mem"), "{err}");
    }

    #[test]
    fn rejects_nonpositive_warm_ta_ratio() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e18 = "{\"cold_wall_ms\":8.0,\"warm_wall_ms\":2.0,\
                    \"warm_hit_rate\":0.9,\"cold_page_reads\":64.0,\
                    \"warm_ta_vs_mem\":0.0}";
        let err = check(&artifact_full(&refs, GOOD_E22, GOOD_E16, e18)).unwrap_err();
        assert!(err.contains("warm_ta_vs_mem"), "{err}");
    }

    #[test]
    fn rejects_e23_without_metrics() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let err = check(&artifact_e23(&refs, GOOD_E22, GOOD_E16, GOOD_E18, "{}")).unwrap_err();
        assert!(err.contains("corpus_speedup"), "{err}");
    }

    #[test]
    fn rejects_nonpositive_pruning_speedup() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e23 = "{\"corpus_speedup\":2.5,\"corpus_skip_rate\":0.8,\
                    \"drain_speedup\":0.0,\"page_skip_rate\":0.94}";
        let err = check(&artifact_e23(&refs, GOOD_E22, GOOD_E16, GOOD_E18, e23)).unwrap_err();
        assert!(err.contains("drain_speedup"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_skip_rate() {
        let ids = all_ids();
        let refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let e23 = "{\"corpus_speedup\":2.5,\"corpus_skip_rate\":1.2,\
                    \"drain_speedup\":15.0,\"page_skip_rate\":0.94}";
        let err = check(&artifact_e23(&refs, GOOD_E22, GOOD_E16, GOOD_E18, e23)).unwrap_err();
        assert!(err.contains("corpus_skip_rate"), "{err}");
    }

    #[test]
    fn rejects_wrong_schema() {
        let err = check("{\"schema\":\"other\",\"experiments\":[]}").unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn parser_handles_escapes_and_nesting() {
        let v = parse("{\"a\":[1,2.5,{\"b\":\"x\\ny\\u0041\"}],\"c\":null}").expect("parses");
        let a = v.get("a").expect("a");
        match a {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[2].get("b"), Some(&Json::Str("x\nyA".into())));
            }
            _ => panic!("a is an array"),
        }
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{} junk").is_err());
    }
}
