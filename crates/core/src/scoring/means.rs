//! Averaging scoring functions.
//!
//! Thole, Zimmermann, and Zysno \[TZZ79\] found "various weighted and
//! unweighted arithmetic and geometric means to perform empirically
//! quite well" as conjunction evaluators, even though they are **not**
//! t-norms: the arithmetic mean does not conserve propositional
//! semantics (mean(0, 1) = ½, not 0). The paper's point (§3) is that
//! they still satisfy **strictness** and **monotonicity**, so the
//! upper/lower bounds of \[Fa96\] — and hence algorithm A₀ — apply
//! unchanged. Tests here pin down both facts.

use crate::score::Score;
use crate::scoring::ScoringFunction;

/// The arithmetic mean `(x₁ + … + x_m) / m`; value 1 on the empty tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArithmeticMean;

impl ScoringFunction for ArithmeticMean {
    fn name(&self) -> String {
        "arith-mean".to_owned()
    }

    #[inline]
    fn combine(&self, scores: &[Score]) -> Score {
        if scores.is_empty() {
            return Score::ONE;
        }
        let sum: f64 = scores.iter().map(|s| s.value()).sum();
        Score::clamped(sum / scores.len() as f64)
    }

    fn is_strict(&self) -> bool {
        // mean = 1 forces every term to be 1 (terms are ≤ 1).
        true
    }
}

/// The geometric mean `(x₁·…·x_m)^(1/m)`; value 1 on the empty tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeometricMean;

impl ScoringFunction for GeometricMean {
    fn name(&self) -> String {
        "geo-mean".to_owned()
    }

    #[inline]
    fn combine(&self, scores: &[Score]) -> Score {
        if scores.is_empty() {
            return Score::ONE;
        }
        let product: f64 = scores.iter().map(|s| s.value()).product();
        Score::clamped(product.powf(1.0 / scores.len() as f64))
    }

    fn is_strict(&self) -> bool {
        true
    }
}

/// The harmonic mean `m / (1/x₁ + … + 1/x_m)`, with value 0 if any
/// argument is 0 (the natural continuous extension); value 1 on the
/// empty tuple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HarmonicMean;

impl ScoringFunction for HarmonicMean {
    fn name(&self) -> String {
        "harm-mean".to_owned()
    }

    #[inline]
    fn combine(&self, scores: &[Score]) -> Score {
        if scores.is_empty() {
            return Score::ONE;
        }
        if scores.contains(&Score::ZERO) {
            return Score::ZERO;
        }
        let sum_inv: f64 = scores.iter().map(|s| 1.0 / s.value()).sum();
        Score::clamped(scores.len() as f64 / sum_inv)
    }

    fn is_strict(&self) -> bool {
        true
    }
}

/// A fixed-weight arithmetic mean `Σ wᵢ·xᵢ` with `Σ wᵢ = 1`, `wᵢ ≥ 0`.
///
/// This is the "easy case" of §5: when the underlying rule is the
/// average, weighting is just the weighted average. Its arity is fixed
/// by the weight vector. Contrast with
/// [`crate::weights::Weighted`], which weights an *arbitrary* rule via
/// the Fagin–Wimmers formula.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedArithmeticMean {
    weights: Vec<f64>,
}

/// Error constructing a [`WeightedArithmeticMean`].
#[derive(Debug, Clone, PartialEq)]
pub enum WeightError {
    /// A weight was negative or NaN.
    InvalidWeight(f64),
    /// Weights do not sum to 1 (within 1e-9); the payload is the sum.
    NotNormalized(f64),
    /// The weight vector was empty.
    Empty,
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::InvalidWeight(w) => write!(f, "invalid weight {w}"),
            WeightError::NotNormalized(s) => write!(f, "weights sum to {s}, expected 1"),
            WeightError::Empty => write!(f, "weight vector is empty"),
        }
    }
}

impl std::error::Error for WeightError {}

impl WeightedArithmeticMean {
    /// Creates a weighted mean from nonnegative weights summing to 1.
    pub fn new(weights: Vec<f64>) -> Result<Self, WeightError> {
        if weights.is_empty() {
            return Err(WeightError::Empty);
        }
        for &w in &weights {
            if !w.is_finite() || w < 0.0 {
                return Err(WeightError::InvalidWeight(w));
            }
        }
        let sum: f64 = weights.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(WeightError::NotNormalized(sum));
        }
        Ok(WeightedArithmeticMean { weights })
    }

    /// The arity this function accepts.
    pub fn arity(&self) -> usize {
        self.weights.len()
    }

    /// The weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl ScoringFunction for WeightedArithmeticMean {
    fn name(&self) -> String {
        format!("weighted-mean({:?})", self.weights)
    }

    /// Combines the grades.
    ///
    /// # Panics
    /// Panics if `scores.len() != self.arity()` — a fixed-weight mean is
    /// only defined at its own arity.
    fn combine(&self, scores: &[Score]) -> Score {
        assert_eq!(
            scores.len(),
            self.weights.len(),
            "weighted mean of arity {} applied to {} scores",
            self.weights.len(),
            scores.len()
        );
        let sum: f64 = scores
            .iter()
            .zip(&self.weights)
            .map(|(s, w)| s.value() * w)
            .sum();
        Score::clamped(sum)
    }

    fn is_strict(&self) -> bool {
        // Strict iff every weight is positive: a zero-weight argument
        // could be < 1 while the result is still 1.
        self.weights.iter().all(|&w| w > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn arithmetic_mean_basics() {
        assert_eq!(ArithmeticMean.combine(&[]), Score::ONE);
        assert!(ArithmeticMean
            .combine(&[s(0.2), s(0.4)])
            .approx_eq(s(0.3), 1e-12));
    }

    #[test]
    fn arithmetic_mean_is_not_conservative() {
        // The paper's example: with arguments 0 and 1 it gives ½, not 0,
        // so it is not a t-norm.
        assert_eq!(
            ArithmeticMean.combine(&[Score::ZERO, Score::ONE]),
            Score::HALF
        );
    }

    #[test]
    fn means_are_strict_on_sample_grid() {
        let fns: Vec<Box<dyn ScoringFunction>> = vec![
            Box::new(ArithmeticMean),
            Box::new(GeometricMean),
            Box::new(HarmonicMean),
        ];
        for f in &fns {
            assert!(f.is_strict());
            assert_eq!(f.combine(&[Score::ONE, Score::ONE, Score::ONE]), Score::ONE);
            assert!(
                f.combine(&[Score::ONE, s(0.999)]) < Score::ONE,
                "{}",
                f.name()
            );
        }
    }

    #[test]
    fn means_are_monotone_on_sample_grid() {
        let grid = [0.0, 0.25, 0.5, 0.75, 1.0];
        let fns: Vec<Box<dyn ScoringFunction>> = vec![
            Box::new(ArithmeticMean),
            Box::new(GeometricMean),
            Box::new(HarmonicMean),
        ];
        for f in &fns {
            for &a in &grid {
                for &b in &grid {
                    for &a2 in &grid {
                        if a2 >= a {
                            assert!(
                                f.combine(&[s(a2), s(b)]) >= f.combine(&[s(a), s(b)]),
                                "{} not monotone",
                                f.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mean_inequality_chain() {
        // harmonic ≤ geometric ≤ arithmetic on positive grades.
        for (a, b) in [(0.2, 0.8), (0.5, 0.5), (0.1, 0.9), (0.33, 0.77)] {
            let h = HarmonicMean.combine(&[s(a), s(b)]);
            let g = GeometricMean.combine(&[s(a), s(b)]);
            let m = ArithmeticMean.combine(&[s(a), s(b)]);
            assert!(h <= g || h.approx_eq(g, 1e-12));
            assert!(g <= m || g.approx_eq(m, 1e-12));
        }
    }

    #[test]
    fn harmonic_mean_zero_argument() {
        assert_eq!(
            HarmonicMean.combine(&[Score::ZERO, Score::ONE]),
            Score::ZERO
        );
    }

    #[test]
    fn weighted_mean_construction_errors() {
        assert_eq!(WeightedArithmeticMean::new(vec![]), Err(WeightError::Empty));
        assert!(matches!(
            WeightedArithmeticMean::new(vec![-0.5, 1.5]),
            Err(WeightError::InvalidWeight(_))
        ));
        assert!(matches!(
            WeightedArithmeticMean::new(vec![0.3, 0.3]),
            Err(WeightError::NotNormalized(_))
        ));
    }

    #[test]
    fn weighted_mean_combines() {
        let f = WeightedArithmeticMean::new(vec![2.0 / 3.0, 1.0 / 3.0]).unwrap();
        // The paper's slider example: color weighted twice shape.
        let v = f.combine(&[s(0.9), s(0.3)]);
        assert!(v.approx_eq(s(0.7), 1e-12));
        assert!(f.is_strict());
        assert_eq!(f.arity(), 2);
    }

    #[test]
    fn weighted_mean_zero_weight_is_not_strict() {
        let f = WeightedArithmeticMean::new(vec![1.0, 0.0]).unwrap();
        assert!(!f.is_strict());
        assert_eq!(f.combine(&[Score::ONE, Score::ZERO]), Score::ONE);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn weighted_mean_wrong_arity_panics() {
        let f = WeightedArithmeticMean::new(vec![0.5, 0.5]).unwrap();
        let _ = f.combine(&[Score::ONE]);
    }
}
