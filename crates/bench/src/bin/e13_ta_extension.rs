//! Standalone runner for experiment `e13_ta_extension`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e13_ta_extension::run(&cfg).print();
}
