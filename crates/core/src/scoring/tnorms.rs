//! Triangular norms: the classic conjunction scoring functions.
//!
//! The paper (§3) defines a t-norm by ∧-conservation, monotonicity,
//! commutativity, and associativity, and notes min is the standard one
//! (and by Theorem 3.1 the *only* one preserving logical equivalence).
//! The families below are those surveyed in [BD86, Mi89, Zi96]; all of
//! them satisfy the t-norm axioms (verified by the property tests in
//! `scoring::properties` and by proptest suites).
//!
//! Pointwise ordering (relevant for query semantics): for all `x, y`,
//! `Drastic ≤ Lukasiewicz ≤ Einstein ≤ Product ≤ Hamacher(0) ≤ Min`,
//! with `Min` the largest t-norm and `Drastic` the smallest.

use crate::float;
use crate::score::Score;
use crate::scoring::TNorm;

/// Zadeh's standard conjunction: `t(x, y) = min(x, y)`.
///
/// By Theorem 3.1 (Yager; Dubois–Prade), min is the unique monotone
/// scoring function for ∧ that preserves logical equivalence of
/// positive queries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

impl TNorm for Min {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        a.min(b)
    }

    fn norm_name(&self) -> String {
        "min".to_owned()
    }
}

/// The algebraic product: `t(x, y) = x·y`.
///
/// The natural choice when grades are interpreted as independent
/// probabilities of relevance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Product;

impl TNorm for Product {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        // Product of two values in [0,1] stays in [0,1].
        Score::clamped(a.value() * b.value())
    }

    fn norm_name(&self) -> String {
        "product".to_owned()
    }
}

/// The Łukasiewicz (bounded-difference) t-norm:
/// `t(x, y) = max(0, x + y − 1)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lukasiewicz;

impl TNorm for Lukasiewicz {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        Score::clamped(a.value() + b.value() - 1.0)
    }

    fn norm_name(&self) -> String {
        "lukasiewicz".to_owned()
    }
}

/// The drastic t-norm: `t(x, y) = min(x, y)` if `max(x, y) = 1`, else 0.
///
/// The pointwise smallest t-norm; useful as a boundary case in tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Drastic;

impl TNorm for Drastic {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        if a == Score::ONE {
            b
        } else if b == Score::ONE {
            a
        } else {
            Score::ZERO
        }
    }

    fn norm_name(&self) -> String {
        "drastic".to_owned()
    }
}

/// The Hamacher family:
/// `t(x, y) = x·y / (γ + (1−γ)(x + y − x·y))` for parameter `γ ≥ 0`.
///
/// `γ = 0` gives the Hamacher product, `γ = 1` the algebraic product,
/// `γ = 2` the Einstein product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hamacher {
    gamma: f64,
}

impl Hamacher {
    /// Creates a Hamacher t-norm. Returns `None` for `γ < 0` or NaN.
    pub fn new(gamma: f64) -> Option<Hamacher> {
        (gamma >= 0.0).then_some(Hamacher { gamma })
    }

    /// The family parameter γ.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }
}

impl TNorm for Hamacher {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        let (x, y) = (a.value(), b.value());
        let denom = self.gamma + (1.0 - self.gamma) * (x + y - x * y);
        if float::approx_zero(denom) {
            // Vanishing denominator: only approachable at γ = 0 with
            // x, y → 0, where the function's limit is 0 (and the exact
            // value is within EPSILON of it).
            Score::ZERO
        } else {
            Score::clamped(x * y / denom)
        }
    }

    fn norm_name(&self) -> String {
        format!("hamacher({})", self.gamma)
    }
}

/// The Einstein product: `t(x, y) = x·y / (2 − (x + y − x·y))`
/// (Hamacher family at γ = 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Einstein;

impl TNorm for Einstein {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        let (x, y) = (a.value(), b.value());
        Score::clamped(x * y / (2.0 - (x + y - x * y)))
    }

    fn norm_name(&self) -> String {
        "einstein".to_owned()
    }
}

/// The Yager family:
/// `t(x, y) = max(0, 1 − ((1−x)^p + (1−y)^p)^(1/p))` for `p > 0`.
///
/// `p = 1` is Łukasiewicz; `p → ∞` tends to min.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Yager {
    p: f64,
}

impl Yager {
    /// Creates a Yager t-norm. Returns `None` unless `p > 0` and finite.
    pub fn new(p: f64) -> Option<Yager> {
        (p > 0.0 && p.is_finite()).then_some(Yager { p })
    }

    /// The family exponent p.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl TNorm for Yager {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        let u = (1.0 - a.value()).powf(self.p);
        let v = (1.0 - b.value()).powf(self.p);
        Score::clamped(1.0 - (u + v).powf(1.0 / self.p))
    }

    fn norm_name(&self) -> String {
        format!("yager({})", self.p)
    }
}

/// Every shipped t-norm, boxed, for property sweeps and the axiom table
/// (experiment E14).
pub fn all_tnorms() -> Vec<Box<dyn TNorm>> {
    vec![
        Box::new(Min),
        Box::new(Product),
        Box::new(Lukasiewicz),
        Box::new(Drastic),
        // lint:allow(no-panic): constant parameter; Hamacher::new accepts any gamma >= 0
        Box::new(Hamacher::new(0.0).expect("0 is a valid gamma")),
        // lint:allow(no-panic): constant parameter; Hamacher::new accepts any gamma >= 0
        Box::new(Hamacher::new(0.5).expect("0.5 is a valid gamma")),
        Box::new(Einstein),
        // lint:allow(no-panic): constant parameter; Yager::new accepts any p >= 1
        Box::new(Yager::new(2.0).expect("2 is a valid p")),
        // lint:allow(no-panic): constant parameter; Yager::new accepts any p >= 1
        Box::new(Yager::new(5.0).expect("5 is a valid p")),
    ]
}

impl TNorm for Box<dyn TNorm> {
    fn t(&self, a: Score, b: Score) -> Score {
        (**self).t(a, b)
    }
    fn norm_name(&self) -> String {
        (**self).norm_name()
    }
}

impl<N: TNorm + ?Sized> TNorm for &N {
    fn t(&self, a: Score, b: Score) -> Score {
        (**self).t(a, b)
    }
    fn norm_name(&self) -> String {
        (**self).norm_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    /// Sample grid used by the exhaustive axiom checks.
    fn grid() -> Vec<Score> {
        [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
            .iter()
            .map(|&v| s(v))
            .collect()
    }

    fn check_tnorm_axioms(norm: &dyn TNorm) {
        let g = grid();
        // ∧-conservation.
        assert_eq!(
            norm.t(Score::ZERO, Score::ZERO),
            Score::ZERO,
            "{}",
            norm.norm_name()
        );
        for &x in &g {
            assert!(
                norm.t(x, Score::ONE).approx_eq(x, 1e-12),
                "{}: t(x,1) != x at {x}",
                norm.norm_name()
            );
            assert!(
                norm.t(Score::ONE, x).approx_eq(x, 1e-12),
                "{}: t(1,x) != x at {x}",
                norm.norm_name()
            );
        }
        for &a in &g {
            for &b in &g {
                let ab = norm.t(a, b);
                // Commutativity.
                assert!(
                    ab.approx_eq(norm.t(b, a), 1e-12),
                    "{}: commutativity at ({a},{b})",
                    norm.norm_name()
                );
                // Monotonicity against larger arguments.
                for &a2 in &g {
                    if a2 >= a {
                        assert!(
                            norm.t(a2, b) >= ab || norm.t(a2, b).approx_eq(ab, 1e-12),
                            "{}: monotonicity at ({a},{b})->({a2},{b})",
                            norm.norm_name()
                        );
                    }
                }
                // Associativity.
                for &c in &g {
                    let left = norm.t(norm.t(a, b), c);
                    let right = norm.t(a, norm.t(b, c));
                    assert!(
                        left.approx_eq(right, 1e-9),
                        "{}: associativity at ({a},{b},{c}): {left} vs {right}",
                        norm.norm_name()
                    );
                }
            }
        }
    }

    #[test]
    fn all_shipped_tnorms_satisfy_the_axioms() {
        for norm in all_tnorms() {
            check_tnorm_axioms(norm.as_ref());
        }
    }

    #[test]
    fn min_is_the_largest_drastic_the_smallest() {
        let g = grid();
        for norm in all_tnorms() {
            for &a in &g {
                for &b in &g {
                    let v = norm.t(a, b);
                    assert!(
                        v.value() <= Min.t(a, b).value() + 1e-12,
                        "{} exceeds min",
                        norm.norm_name()
                    );
                    assert!(
                        v >= Drastic.t(a, b) || v.approx_eq(Drastic.t(a, b), 1e-12),
                        "{} below drastic",
                        norm.norm_name()
                    );
                }
            }
        }
    }

    #[test]
    fn hamacher_at_one_is_product() {
        let h = Hamacher::new(1.0).unwrap();
        for (a, b) in [(0.3, 0.8), (0.5, 0.5), (0.0, 0.9), (1.0, 0.4)] {
            assert!(h.t(s(a), s(b)).approx_eq(Product.t(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn hamacher_at_two_is_einstein() {
        let h = Hamacher::new(2.0).unwrap();
        for (a, b) in [(0.3, 0.8), (0.5, 0.5), (0.0, 0.9), (1.0, 0.4)] {
            assert!(h.t(s(a), s(b)).approx_eq(Einstein.t(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn yager_at_one_is_lukasiewicz() {
        let y = Yager::new(1.0).unwrap();
        for (a, b) in [(0.3, 0.8), (0.5, 0.5), (0.9, 0.9), (1.0, 0.4)] {
            assert!(y.t(s(a), s(b)).approx_eq(Lukasiewicz.t(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn yager_tends_to_min_for_large_p() {
        let y = Yager::new(200.0).unwrap();
        for (a, b) in [(0.3, 0.8), (0.5, 0.5), (0.9, 0.9)] {
            assert!(
                y.t(s(a), s(b)).approx_eq(Min.t(s(a), s(b)), 1e-2),
                "p=200 should be close to min at ({a},{b})"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Hamacher::new(-0.1).is_none());
        assert!(Hamacher::new(f64::NAN).is_none());
        assert!(Yager::new(0.0).is_none());
        assert!(Yager::new(f64::INFINITY).is_none());
    }

    #[test]
    fn hamacher_zero_denominator_edge_case() {
        let h = Hamacher::new(0.0).unwrap();
        assert_eq!(h.t(Score::ZERO, Score::ZERO), Score::ZERO);
    }

    #[test]
    fn drastic_matches_definition() {
        assert_eq!(Drastic.t(s(0.7), Score::ONE), s(0.7));
        assert_eq!(Drastic.t(Score::ONE, s(0.7)), s(0.7));
        assert_eq!(Drastic.t(s(0.99), s(0.99)), Score::ZERO);
    }
}
