//! Standalone runner for experiment `e07_distance_bounding`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e07_distance_bounding::run(&cfg).print();
}
