//! Complex objects and the cost-based optimizer (§4.2).
//!
//! Advertisements are complex objects whose AdPhotos live in a photo
//! subsystem — and photos can be *shared* between ads. A fuzzy query
//! runs against the photos; the results are lifted to the parent ads
//! through the sub-object index. Separately, the cost-based optimizer
//! prices every plan before choosing one.
//!
//! ```sh
//! cargo run --release --example ad_campaign
//! ```

use fuzzymm::garlic::cost::CostEstimator;
use fuzzymm::garlic::demo::{ad_database, cd_store};
use fuzzymm::garlic::executor::Garlic;
use fuzzymm::garlic::sql::parse;

fn main() {
    // --- Part 1: complex objects -------------------------------------
    let (photos, ads, index) = ad_database(200, 40, 2026);
    println!("{} photos referenced by {} advertisements", 200, ads.len());
    let shared = (0..200u64)
        .filter(|&p| index.is_shared("AdPhoto", p))
        .count();
    println!("{shared} photos are shared between ads (the §4.2 complication)\n");

    // "We are interested in Advertisements with an AdPhoto that is red."
    let stmt = parse("SELECT TOP 12 WHERE Color~'red'").expect("well-formed");
    let photo_hits = photos.top_k(&stmt.query, stmt.k).expect("query runs");
    println!("top red *photos*: ");
    for p in photo_hits.answers.iter().take(5) {
        let parents = index.parents_of("AdPhoto", p.id);
        println!(
            "  photo #{:<4} grade {}  → ads {:?}",
            p.id, p.grade, parents
        );
    }

    let ad_hits = Garlic::lift_to_parents(&photo_hits, &index, "AdPhoto", 5);
    println!("\ntop red *advertisements* (max over their photos):");
    for a in &ad_hits {
        println!("  ad #{:<4} grade {}", a.id, a.grade);
    }

    // --- Part 2: the cost-based optimizer ----------------------------
    let store = cd_store(1_000, 55);
    let mut estimator = CostEstimator::default();
    estimator.calibrate_fa(4_096, 2, 10, 9);
    println!(
        "\ncost-based optimizer (A0 constant calibrated to {:.2}):",
        estimator.fa_constant
    );
    for sql in [
        "SELECT TOP 10 WHERE Artist='Beatles' AND Color~'red'", // selective crisp → filter
        "SELECT TOP 10 WHERE Color~'red' AND Shape~'round'",    // fuzzy only → A0
        "SELECT TOP 10 WHERE Color~'red' OR Texture~'coarse'",  // disjunction → m·k merge
    ] {
        let stmt = parse(sql).expect("well-formed");
        let result = store
            .top_k_optimized(&stmt.query, stmt.k, &estimator)
            .expect("query runs");
        println!("  {sql}");
        println!("    {} — actual cost {}", result.explanation, result.stats);
    }
}
