//! E17 — ablations of two design choices DESIGN.md calls out:
//!
//! 1. the **filter constant** of the distance bound: our PSD-optimal
//!    `c` (largest with `A − c·CᵀC ⪰ 0` on the zero-sum subspace) vs
//!    the naive two-stage spectral bound `λ_min(A)/σ_max(C)²`;
//! 2. the **pruned-A₀ random-access optimizations**: skip-prune alone
//!    vs skip + intra-object short-circuit vs no pruning.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_media::bounding::DistanceBound;
use fmdb_media::color::ColorHistogram;
use fmdb_media::distance::{HistogramDistance, QuadraticFormDistance};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E17",
        "ablations: filter constant and pruning components",
        "design choices: the PSD-optimal filter constant vs the naive spectral chain; \
         skip-pruning vs short-circuit probing in pruned A0",
    );

    // --- Ablation 1: filter constant tightness ---
    let n = cfg.pick(800, 200);
    let mut tightness = Table::new(
        "filter constant d̂/d tightness (median over random pairs)",
        &[
            "bins k",
            "optimal scale",
            "two-stage scale",
            "optimal d̂/d",
            "two-stage d̂/d",
        ],
    );
    for bins_per_channel in [3usize, 4] {
        let db = SyntheticDb::generate(&SynthConfig {
            count: n,
            bins_per_channel,
            seed: 17,
            ..SynthConfig::default()
        });
        let hists: Vec<ColorHistogram> = db.objects.iter().map(|o| o.histogram.clone()).collect();
        let optimal = DistanceBound::for_space(&db.space).expect("derivable");
        let two_stage = DistanceBound::for_space_two_stage(&db.space).expect("derivable");
        let qf = QuadraticFormDistance::new(db.space.similarity_matrix());

        let ratio_median = |bound: &DistanceBound| -> f64 {
            let mut ratios: Vec<f64> = Vec::new();
            for i in 0..hists.len().min(120) {
                let j = (i + 37) % hists.len();
                if i == j {
                    continue;
                }
                let full = qf.distance(&hists[i], &hists[j]).expect("same space");
                if full > 1e-9 {
                    let lower = bound.lower_bound(&hists[i], &hists[j]).expect("same space");
                    ratios.push(lower / full);
                }
            }
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            ratios[ratios.len() / 2]
        };
        tightness.row(vec![
            (bins_per_channel.pow(3)).to_string(),
            format!("{:.4}", optimal.scale()),
            format!("{:.4}", two_stage.scale()),
            f3(ratio_median(&optimal)),
            f3(ratio_median(&two_stage)),
        ]);
    }
    report.table(tightness);

    // --- Ablation 2: pruning components ---
    let n2 = cfg.pick(1 << 14, 1 << 10);
    let k = 10usize;
    let mut pruning = Table::new(
        format!("pruned-A0 random accesses by component (N = {n2}, k = {k}, min)"),
        &[
            "m",
            "plain A0",
            "skip only",
            "skip + short-circuit",
            "total saving",
        ],
    );
    for &m in &[2usize, 3, 4] {
        let plain = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, |seed| {
            independent_uniform(n2, m, seed)
        });
        let skip_only = mean_cost(
            &PrunedFa::without_short_circuit(),
            &min,
            k,
            cfg.seeds,
            |seed| independent_uniform(n2, m, seed),
        );
        let full = mean_cost(&PrunedFa::default(), &min, k, cfg.seeds, |seed| {
            independent_uniform(n2, m, seed)
        });
        pruning.row(vec![
            m.to_string(),
            int(plain.random),
            int(skip_only.random),
            int(full.random),
            format!(
                "{:.1}%",
                100.0 * (1.0 - full.random as f64 / plain.random.max(1) as f64)
            ),
        ]);
    }
    report.table(pruning);
    report.note(
        "the two-stage spectral constant chains two worst cases through ‖z‖ and lands an \
         order of magnitude below the optimal PSD constant — weak enough that its filter \
         never prunes; the PSD search is what makes experiment E7's 97% savings possible.",
    );
    report.note(
        "skip-pruning removes the objects that are hopeless before any probe; the \
         short-circuit adds per-probe abandonment, which matters more as m grows (more \
         probes per object to abandon).",
    );
    report
}
