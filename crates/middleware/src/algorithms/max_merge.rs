//! The disjunction special case (§4.1, end).
//!
//! "If the scoring function t is not strict, then A₀ is not necessarily
//! optimal. An interesting example arises when t is max … In this case
//! there is a simple algorithm whose database access cost is only
//! `m·k`, *independent of the size N of the database*!"
//!
//! The algorithm: take the top `k` of each list under sorted access
//! (`m·k` accesses) and return the best `k` of those candidates by
//! their best observed grade.
//!
//! Why the observed grades are exact for the returned objects: suppose a
//! returned object `z` had a higher grade in some list `j` where it
//! missed the top `k`. Then `k` objects of list `j` grade at least
//! `μ_j(z) = μ(z)`, and all of them are candidates whose observed grade
//! is at least `μ(z)` — strictly above `z`'s observed grade — so `z`
//! could not have been among the `k` best observed candidates.
//! Contradiction; hence observed = true for everything returned, and by
//! the same argument the returned set is a valid top-k.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// The `m·k` disjunction (max) algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxMerge;

/// Probes whether `scoring` behaves like max at a few sample points.
///
/// A grid probe cannot *prove* max semantics, but it reliably rejects
/// every other shipped scoring function, and MaxMerge is only correct
/// for max — silently accepting min would return wrong answers.
fn behaves_like_max(scoring: &dyn ScoringFunction, arity: usize) -> bool {
    let samples = [0.0, 0.3, 0.5, 0.8, 1.0];
    let mut args = vec![Score::ZERO; arity];
    for &hi in &samples {
        for pos in 0..arity {
            for (i, arg) in args.iter_mut().enumerate() {
                *arg = if i == pos {
                    Score::clamped(hi)
                } else {
                    Score::clamped(hi * 0.5)
                };
            }
            let expect = args.iter().copied().fold(Score::ZERO, Score::max);
            if !scoring.combine(&args).approx_eq(expect, 1e-9) {
                return false;
            }
        }
    }
    true
}

impl TopKAlgorithm for MaxMerge {
    fn name(&self) -> &'static str {
        "max-merge"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate(sources, scoring, k)?;
        if !behaves_like_max(scoring, sources.len()) {
            return Err(AlgoError::UnsupportedScoring {
                algorithm: "max-merge",
                requirement: "max (standard disjunction) semantics",
                scoring: scoring.name(),
            });
        }

        let mut stats = AccessStats::ZERO;
        let mut best: HashMap<Oid, Score> = HashMap::new();
        for source in sources.iter_mut() {
            source.rewind();
            for _ in 0..k {
                match source.sorted_next() {
                    Some(so) => {
                        stats.sorted += 1;
                        let entry = best.entry(so.id).or_insert(Score::ZERO);
                        *entry = (*entry).max(so.grade);
                    }
                    None => break,
                }
            }
        }

        let combined: Vec<ScoredObject<Oid>> = best
            .into_iter()
            .map(|(oid, g)| ScoredObject::new(oid, g))
            .collect();
        Ok(finalize(combined, k, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::Naive;
    use crate::source::VecSource;
    use fmdb_core::scoring::conorms::Max;
    use fmdb_core::scoring::tnorms::Min;
    use fmdb_core::scoring::ConormScoring;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn fixture() -> (VecSource, VecSource) {
        let a = VecSource::from_dense("color", &[s(0.9), s(0.8), s(0.3), s(0.6), s(0.1), s(0.5)]);
        let b = VecSource::from_dense("shape", &[s(0.2), s(0.7), s(0.95), s(0.5), s(0.85), s(0.4)]);
        (a, b)
    }

    #[test]
    fn agrees_with_naive_under_max() {
        for k in 1..=6 {
            let (mut a, mut b) = fixture();
            let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
            let mm = MaxMerge.top_k(&mut srcs, &ConormScoring(Max), k).unwrap();

            let (mut a2, mut b2) = fixture();
            let mut srcs2: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
            let naive = Naive.top_k(&mut srcs2, &ConormScoring(Max), k).unwrap();
            assert_eq!(mm.answers, naive.answers, "k={k}");
        }
    }

    #[test]
    fn cost_is_m_times_k_independent_of_n() {
        for n in [100usize, 1000, 5000] {
            let grades: Vec<Score> = (0..n).map(|i| s((i * 31 % n) as f64 / n as f64)).collect();
            let mut a = VecSource::from_dense("a", &grades);
            let mut b = VecSource::from_dense("b", &grades);
            let mut c = VecSource::from_dense("c", &grades);
            let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b, &mut c];
            let k = 10;
            let r = MaxMerge.top_k(&mut srcs, &ConormScoring(Max), k).unwrap();
            assert_eq!(r.stats.sorted, (3 * k) as u64, "n={n}");
            assert_eq!(r.stats.random, 0);
        }
    }

    #[test]
    fn rejects_min_scoring() {
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        assert!(matches!(
            MaxMerge.top_k(&mut srcs, &Min, 2),
            Err(AlgoError::UnsupportedScoring { .. })
        ));
    }

    #[test]
    fn returned_grades_are_exact_even_for_cross_list_objects() {
        // Object 0 is top of list a with 0.9 but also graded 0.2 in b;
        // object 2 is low in a (0.3) but top of b (0.95). Max grades
        // must reflect the best of *all* lists for returned objects.
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = MaxMerge.top_k(&mut srcs, &ConormScoring(Max), 2).unwrap();
        assert_eq!(r.answers[0], ScoredObject::new(2, s(0.95)));
        assert_eq!(r.answers[1], ScoredObject::new(0, s(0.9)));
    }

    #[test]
    fn short_universe_is_handled() {
        let mut a = VecSource::from_dense("a", &[s(0.4)]);
        let mut b = VecSource::from_dense("b", &[s(0.6)]);
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = MaxMerge.top_k(&mut srcs, &ConormScoring(Max), 5).unwrap();
        assert_eq!(r.answers.len(), 1);
        assert_eq!(r.answers[0].grade, s(0.6));
    }
}
