//! Synthetic grade workloads for the algorithms' cost experiments.
//!
//! Theorem 4.1's analysis assumes the conjuncts' grade lists are
//! **independent**; §6 notes a "(somewhat artificial) case where the
//! database access cost is necessarily linear". These generators cover
//! the whole spectrum:
//!
//! * [`independent_uniform`] — the theorem's model: i.i.d. uniform
//!   grades per list;
//! * [`correlated_pair`] — two lists whose grades are mixed toward
//!   agreement (ρ → 1) or disagreement (ρ → −1);
//! * [`adversarial_anti`] — the linear-lower-bound instance: the second
//!   list is exactly the reversal of the first, so under min the two
//!   sorted streams only meet in the middle.

use fmdb_core::score::Score;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::source::VecSource;

/// `m` independent lists of `n` i.i.d. uniform grades (the model of
/// Theorem 4.1). Deterministic in `seed`.
pub fn independent_uniform(n: usize, m: usize, seed: u64) -> Vec<VecSource> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|i| {
            let grades: Vec<Score> = (0..n).map(|_| Score::clamped(rng.gen::<f64>())).collect();
            VecSource::from_dense(format!("uniform-{i}"), &grades)
        })
        .collect()
}

/// Two lists over `n` objects with correlation knob `rho ∈ [−1, 1]`.
///
/// The second list's grade is a convex mixture: for `rho ≥ 0`,
/// `g₂ = rho·g₁ + (1−rho)·u`; for `rho < 0`,
/// `g₂ = |rho|·(1−g₁) + (1−|rho|)·u`, with `u` fresh uniform noise.
/// At `rho = 0` the lists are independent; at `±1` they agree/oppose
/// deterministically. (The mixture changes the marginal of `g₂` away
/// from uniform at intermediate `rho`; experiments E11 only need the
/// monotone sweep between the regimes, which this provides.)
///
/// # Panics
/// Panics if `rho` is outside `[−1, 1]` (caller bug, not data).
pub fn correlated_pair(n: usize, rho: f64, seed: u64) -> Vec<VecSource> {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation must lie in [-1, 1], got {rho}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let g1: Vec<Score> = (0..n).map(|_| Score::clamped(rng.gen::<f64>())).collect();
    let g2: Vec<Score> = g1
        .iter()
        .map(|&g| {
            let u: f64 = rng.gen();
            let base = if rho >= 0.0 {
                g.value()
            } else {
                1.0 - g.value()
            };
            Score::clamped(rho.abs() * base + (1.0 - rho.abs()) * u)
        })
        .collect();
    vec![
        VecSource::from_dense("corr-1", &g1),
        VecSource::from_dense("corr-2", &g2),
    ]
}

/// The adversarial instance behind the paper's linear lower bound:
/// object `i` grades `(i+1)/n` in list 1 and `1 − i/n` in list 2.
///
/// Under min, the best object sits at grade ≈ ½ — the *bottom middle*
/// of both sorted streams — so any algorithm limited to sorted/random
/// access must pay Ω(n) accesses before the first match appears in
/// both streams.
pub fn adversarial_anti(n: usize) -> Vec<VecSource> {
    let g1: Vec<Score> = (0..n)
        .map(|i| Score::clamped((i + 1) as f64 / n as f64))
        .collect();
    let g2: Vec<Score> = (0..n)
        .map(|i| Score::clamped(1.0 - i as f64 / n as f64))
        .collect();
    vec![
        VecSource::from_dense("anti-1", &g1),
        VecSource::from_dense("anti-2", &g2),
    ]
}

/// `m` lists where a fraction `selectivity` of objects grade 1 and the
/// rest grade 0 in the *first* list (a crisp predicate like
/// `Artist='Beatles'`), while the remaining lists carry uniform fuzzy
/// grades. Models the paper's CD-store example for the planner
/// experiments (E10).
pub fn crisp_plus_fuzzy(n: usize, m: usize, selectivity: f64, seed: u64) -> Vec<VecSource> {
    assert!(
        (0.0..=1.0).contains(&selectivity),
        "selectivity must lie in [0, 1], got {selectivity}"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let crisp: Vec<Score> = (0..n)
        .map(|_| Score::crisp(rng.gen::<f64>() < selectivity))
        .collect();
    let mut out = vec![VecSource::from_dense("crisp", &crisp)];
    for i in 1..m {
        let grades: Vec<Score> = (0..n).map(|_| Score::clamped(rng.gen::<f64>())).collect();
        out.push(VecSource::from_dense(format!("fuzzy-{i}"), &grades));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::GradedSource;

    #[test]
    fn independent_uniform_is_deterministic_in_seed() {
        let mut a = independent_uniform(20, 2, 42);
        let mut b = independent_uniform(20, 2, 42);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            assert_eq!(x.random_access(7), y.random_access(7));
        }
        let mut c = independent_uniform(20, 2, 43);
        let same = (0..20).all(|i| a[0].random_access(i) == c[0].random_access(i));
        assert!(!same, "different seeds should differ");
    }

    #[test]
    fn correlated_extremes() {
        let mut pair = correlated_pair(50, 1.0, 1);
        for i in 0..50 {
            assert_eq!(pair[0].random_access(i), pair[1].random_access(i));
        }
        let mut anti = correlated_pair(50, -1.0, 1);
        for i in 0..50 {
            let sum = anti[0].random_access(i).value() + anti[1].random_access(i).value();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn adversarial_grades_are_reversals() {
        let mut srcs = adversarial_anti(10);
        for i in 0..10u64 {
            let g1 = srcs[0].random_access(i).value();
            let g2 = srcs[1].random_access(i).value();
            assert!((g1 - (i + 1) as f64 / 10.0).abs() < 1e-12);
            assert!((g2 - (1.0 - i as f64 / 10.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn crisp_selectivity_roughly_holds() {
        let mut srcs = crisp_plus_fuzzy(1000, 2, 0.1, 7);
        let matches = (0..1000u64)
            .filter(|&i| srcs[0].random_access(i) == Score::ONE)
            .count();
        assert!((50..200).contains(&matches), "got {matches}");
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn correlation_out_of_range_panics() {
        let _ = correlated_pair(10, 1.5, 0);
    }
}
