//! E8 — the dimensionality curse (§2.1): grid files "grow exponentially
//! with the dimensionality"; R-trees "tend to be more robust … at least
//! for dimensions up to around 20"; past that, nothing beats a scan.

use fmdb_index::gridfile::{GridError, GridFile};
use fmdb_index::quadtree::{QuadError, QuadTree};
use fmdb_index::rtree::RTree;
use fmdb_index::scan::LinearScan;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::{f3, Report, Table};
use crate::runners::RunCfg;

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E8",
        "index performance vs dimensionality",
        "§2.1: grid-file directories grow exponentially with dimension; R-trees stay \"robust … \
         up to around 20\" dimensions, then degenerate toward a scan",
    );
    let n = cfg.pick(4096, 512);
    let k = 10usize;
    let queries = cfg.pick(20, 5);
    let dims: Vec<usize> = if cfg.quick {
        vec![2, 4, 8, 12]
    } else {
        vec![2, 4, 6, 8, 12, 16, 20, 24]
    };
    let grid_limit: u128 = 1 << 24;

    let mut t = Table::new(
        format!("10-NN over {n} uniform points ({queries} queries per row)"),
        &[
            "dim",
            "rtree dist/query",
            "rtree nodes/query",
            "scan dist/query",
            "rtree/scan",
            "gridfile directory",
            "grid waste",
            "quadtree cells",
        ],
    );
    for &dim in &dims {
        let points = random_points(n, dim, 5);
        let mut tree = RTree::new(dim).expect("positive dim");
        let mut scan = LinearScan::new(dim).expect("positive dim");
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as u64).expect("valid point");
            scan.insert(p, i as u64).expect("valid point");
        }
        // Grid file: insert until the directory limit trips.
        let mut grid = GridFile::new(dim, 8, grid_limit).expect("positive dim");
        let mut grid_cells: Option<u128> = Some(1);
        for (i, p) in points.iter().enumerate() {
            match grid.insert(p, i as u64) {
                Ok(()) => grid_cells = Some(grid.directory_size()),
                Err(GridError::DirectoryOverflow { .. }) => {
                    grid_cells = None;
                    break;
                }
                Err(e) => panic!("unexpected grid error {e}"),
            }
        }

        // Quadtree: same leaf-cell cap; 2^d-way splits trip it fast.
        let quad_cells: Option<u128> = match QuadTree::new(dim, 8, grid_limit) {
            Ok(mut quad) => {
                let mut cells = Some(1u128);
                for (i, p) in points.iter().enumerate() {
                    match quad.insert(p, i as u64) {
                        Ok(()) => cells = Some(quad.leaf_cells()),
                        Err(QuadError::CellOverflow { .. }) => {
                            cells = None;
                            break;
                        }
                        Err(e) => panic!("unexpected quadtree error {e}"),
                    }
                }
                cells
            }
            Err(QuadError::DimensionTooLarge { .. }) => None,
            Err(e) => panic!("unexpected quadtree error {e}"),
        };

        let probes = random_points(queries, dim, 99);
        let mut tree_dist = 0u64;
        let mut tree_nodes = 0u64;
        let mut scan_dist = 0u64;
        for q in &probes {
            let (_, ta) = tree.knn(q, k).expect("valid query");
            tree_dist += ta.distance_computations;
            tree_nodes += ta.nodes_visited;
            let (_, sa) = scan.knn(q, k).expect("valid query");
            scan_dist += sa.distance_computations;
        }
        let td = tree_dist as f64 / queries as f64;
        let sd = scan_dist as f64 / queries as f64;
        t.row(vec![
            dim.to_string(),
            f3(td),
            f3(tree_nodes as f64 / queries as f64),
            f3(sd),
            f3(td / sd),
            match grid_cells {
                Some(c) => c.to_string(),
                None => format!(">{grid_limit} (OVERFLOW)"),
            },
            match grid_cells {
                // Dense directory cells per *occupied* bucket: the
                // multiplicative waste the curse claim is about.
                Some(c) => f3(c as f64 / grid.occupied_cells().max(1) as f64),
                None => "-".into(),
            },
            match quad_cells {
                Some(c) => c.to_string(),
                None => "OVERFLOW".into(),
            },
        ]);
    }
    report.table(t);
    report.note(
        "the rtree/scan ratio climbs from a few percent in 2-D toward 1.0 as the dimension \
         grows — the curse flattening the R-tree's pruning until it degenerates to a scan \
         around dimension 20, matching [Ot92]'s observation quoted in §2.1.",
    );
    report.note(
        "the grid file pays the curse in *space*: every split plane slices the whole \
         directory slab, so the dense directory grows multiplicatively while occupied \
         buckets grow only linearly — the waste column (directory cells per occupied \
         bucket) climbs steeply until the data becomes too sparse to overflow buckets at \
         all. §2.1's verdict: \"not practical in these situations\".",
    );
    report.note(
        "the linear quadtree is even blunter: every split allocates 2^d leaf cells at once \
         (4 in 2-D, 256 in 8-D, 65,536 in 16-D), so the cells column overflows the same cap \
         that the grid file merely approaches — the paper names both structures in the same \
         breath for exactly this reason.",
    );
    report
}
