//! Rule `no-deprecated` (L5): first-party code must not call items the
//! workspace itself marks `#[deprecated]`.
//!
//! Deprecation shims (e.g. `GradedSource::universe_size`, kept so old
//! call sites compile during a migration) are for *downstream* users;
//! the workspace itself must be off them, otherwise the shim never
//! becomes deletable. rustc only warns here — this rule makes it a
//! gate.
//!
//! Mechanism: a workspace-wide pre-pass collects the names of items
//! carrying `#[deprecated]` (the item keyword's following identifier,
//! skipping visibility and further attributes). The per-file pass then
//! flags call-syntax uses of those names — an identifier followed by
//! `(`, excluding definitions (preceded by `fn`). Lexical matching
//! can't resolve paths, so an unrelated item that *shares a name* with
//! a deprecated one needs a `// lint:allow(no-deprecated): …` noting
//! the homonym.

use std::collections::BTreeSet;

use crate::diagnostics::Diagnostic;
use crate::workspace::{FileClass, SourceFile, Workspace};

const RULE: &str = "no-deprecated";

/// Item keywords whose following identifier names the deprecated item.
const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "type", "const", "static", "trait", "mod",
];

/// Pre-pass: every item name marked `#[deprecated]` anywhere in the
/// workspace (sorted for deterministic diagnostics).
pub fn collect_deprecated(ws: &Workspace) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in &ws.files {
        let code = &file.code;
        for (i, token) in code.iter().enumerate() {
            // `# [ deprecated` — optionally `(note = …)` — `]`
            if token.text != "deprecated"
                || i < 2
                || code[i - 1].text != "["
                || code[i - 2].text != "#"
            {
                continue;
            }
            // Find the end of this attribute, then the item name.
            let mut j = i;
            let mut depth = 1usize; // we are inside one `[`
            while let Some(t) = code.get(j) {
                match t.text.as_str() {
                    "[" if j > i => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(name) = item_name_after(code, j + 1) {
                names.insert(name);
            }
        }
    }
    names
}

/// Scans from `start` (just past the `#[deprecated…]` attribute) for
/// the deprecated item's name: skip further attributes and visibility,
/// find an item keyword, take the next identifier.
fn item_name_after(code: &[crate::lexer::Token], start: usize) -> Option<String> {
    let mut i = start;
    let mut budget = 32; // an item header is short; don't scan the file
    while budget > 0 {
        budget -= 1;
        let token = code.get(i)?;
        match token.text.as_str() {
            "#" if code.get(i + 1).map(|t| t.text == "[").unwrap_or(false) => {
                let mut depth = 0usize;
                i += 1;
                while let Some(t) = code.get(i) {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            kw if ITEM_KEYWORDS.contains(&kw) => {
                return code.get(i + 1).map(|t| t.text.clone());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Per-file pass: flags call-syntax uses of deprecated names.
pub fn check(file: &SourceFile, deprecated: &BTreeSet<String>) -> Vec<Diagnostic> {
    if file.class != FileClass::Lib || deprecated.is_empty() {
        return Vec::new();
    }
    let code = &file.code;
    let mut diags = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if !deprecated.contains(&token.text) {
            continue;
        }
        if file.in_test_region(token.line) {
            continue;
        }
        // Call syntax only: `name(`. Definitions (`fn name(`) and the
        // attribute site itself don't count as uses.
        let is_call = code.get(i + 1).map(|t| t.text == "(").unwrap_or(false);
        let is_definition = i
            .checked_sub(1)
            .map(|p| code[p].text == "fn")
            .unwrap_or(false);
        if is_call && !is_definition {
            diags.push(
                Diagnostic::new(
                    RULE,
                    &file.rel_path,
                    token.line,
                    token.col,
                    format!("call to deprecated item `{}`", token.text),
                )
                .with_help(
                    "migrate to the replacement named in the `#[deprecated]` note; if this \
                     is an unrelated item sharing the name, add \
                     `// lint:allow(no-deprecated): homonym of <the deprecated item>`",
                ),
            );
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::{analyze, Workspace};
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: files
                .iter()
                .map(|(p, s)| analyze(PathBuf::from(p), s))
                .collect(),
        }
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = ws(files);
        let deprecated = collect_deprecated(&ws);
        ws.files
            .iter()
            .flat_map(|f| {
                check(f, &deprecated)
                    .into_iter()
                    .filter(|d| !f.allowed(d.rule, d.line))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    const SHIM: &str = "pub trait S {\n    #[deprecated(note = \"use len\")]\n    fn universe_size(&self) -> usize {\n        0\n    }\n}\n";

    #[test]
    fn collects_deprecated_item_names() {
        let w = ws(&[("crates/middleware/src/source.rs", SHIM)]);
        let names = collect_deprecated(&w);
        assert!(names.contains("universe_size"));
    }

    #[test]
    fn flags_calls_to_deprecated_items() {
        let user = "fn f(s: &dyn S) -> usize {\n    s.universe_size()\n}\n";
        let diags = run(&[
            ("crates/middleware/src/source.rs", SHIM),
            ("crates/garlic/src/exec.rs", user),
        ]);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn the_definition_site_is_not_a_use() {
        assert!(run(&[("crates/middleware/src/source.rs", SHIM)]).is_empty());
    }

    #[test]
    fn non_call_mentions_are_not_uses() {
        // A field access or doc mention is not call syntax.
        let user =
            "struct Info { universe_size: usize }\nfn f(i: &Info) -> usize { i.universe_size }\n";
        assert!(run(&[
            ("crates/middleware/src/source.rs", SHIM),
            ("crates/garlic/src/info.rs", user),
        ])
        .is_empty());
    }

    #[test]
    fn tests_may_exercise_deprecated_shims() {
        let t = "fn t(s: &dyn S) { let _ = s.universe_size(); }\n";
        assert!(run(&[
            ("crates/middleware/src/source.rs", SHIM),
            ("crates/middleware/tests/t.rs", t),
        ])
        .is_empty());
    }

    #[test]
    fn homonyms_can_be_suppressed() {
        let user = "fn f(r: &Repo) -> usize {\n    // lint:allow(no-deprecated): Repository::universe_size is current API, homonym of the GradedSource shim\n    r.universe_size()\n}\n";
        assert!(run(&[
            ("crates/middleware/src/source.rs", SHIM),
            ("crates/garlic/src/repo.rs", user),
        ])
        .is_empty());
    }
}
