//! Property suite: a [`PagedSource`] served from a store file is
//! observationally identical to a [`VecSource`] built from the same
//! pairs — same answers, same grades, same charged access counts —
//! under every exact algorithm family (FA, TA, NRA, CA). Paging is
//! physical telemetry, never a semantic change.
//!
//! The suite also proves the failure model: a truncated store file
//! and a store file with any flipped bit must surface a typed
//! [`StoreError`] (at open or parked during reads) and must never
//! panic; and it pins the planner shift that I/O-measured cost
//! calibration produces.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fmdb_core::scoring::tnorms::Min;
use fmdb_core::stats::DEFAULT_HISTOGRAM_BINS;
use fmdb_middleware::algorithms::ca::CombinedAlgorithm;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::nra::NraLowerBound;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::planner::{choose_plan, PhysicalPlan, PlanQuery};
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::stats::{calibrate_cost_model_io, CostModel};
use fmdb_middleware::store::{
    build_store, build_store_from_source, BuildConfig, PagedStore, StoreError, StoreOptions,
};
use fmdb_middleware::workload::independent_uniform;

use fmdb_core::score::Score;

/// Unique scratch path under `target/tmp` (cargo provides the dir for
/// integration tests; tests must not write outside the repository).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("pe-{tag}-{id}.fmdb"))
}

/// One randomly drawn paged-vs-memory comparison.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    page_size: usize,
    pool_pages: usize,
    readahead: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            40usize..300,
            2usize..=3,
            prop_oneof![Just(1usize), Just(5usize), Just(25usize)],
        ),
        (
            0u64..1_000_000,
            prop_oneof![Just(256usize), Just(512usize), Just(2048usize)],
            prop_oneof![Just(2usize), Just(16usize), Just(256usize)],
            prop_oneof![Just(0usize), Just(4usize)],
        ),
    )
        .prop_map(
            |((n, m, k), (seed, page_size, pool_pages, readahead))| Scenario {
                n,
                m,
                k,
                seed,
                page_size,
                pool_pages,
                readahead,
            },
        )
}

/// Persists every workload source to its own store and opens them.
fn paged_copies(s: Scenario) -> Vec<PagedStore> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    sources
        .iter_mut()
        .map(|src| {
            let path = scratch("algo");
            build_store_from_source(&path, src, &BuildConfig::with_page_size(s.page_size))
                .expect("build store");
            PagedStore::open(
                &path,
                StoreOptions {
                    // The strategy uses 0 for "feature off" — the
                    // options API spells that `None`.
                    pool_pages: (s.pool_pages > 0).then_some(s.pool_pages),
                    readahead: (s.readahead > 0).then_some(s.readahead),
                },
            )
            .expect("open store")
        })
        .collect()
}

/// Runs `algorithm` over both backings and asserts bit-identical
/// answers and charged statistics.
fn assert_backings_agree(algorithm: &dyn TopKAlgorithm, s: Scenario) -> Result<(), TestCaseError> {
    let mut mem_sources = independent_uniform(s.n, s.m, s.seed);
    let mut mem_refs: Vec<&mut dyn GradedSource> = mem_sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let mem = algorithm
        .top_k(&mut mem_refs, &Min, s.k)
        .expect("memory run must succeed");

    let stores = paged_copies(s);
    let mut cursors: Vec<_> = stores.iter().map(|st| st.source()).collect();
    let mut paged_refs: Vec<&mut dyn GradedSource> = cursors
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let paged = algorithm
        .top_k(&mut paged_refs, &Min, s.k)
        .expect("paged run must succeed");

    prop_assert_eq!(
        &paged.answers,
        &mem.answers,
        "{} answers diverged under {:?}",
        algorithm.name(),
        s
    );
    // The whole charged AccessStats must agree — paging may not leak
    // into the logical cost accounting.
    prop_assert_eq!(paged.stats, mem.stats, "{} stats", algorithm.name());
    for store in &stores {
        if let Some(e) = store.take_error() {
            return Err(TestCaseError::fail(format!("runtime store error: {e}")));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn paged_matches_vec_under_fa(s in scenario()) {
        assert_backings_agree(&FaginsAlgorithm, s)?;
    }

    #[test]
    fn paged_matches_vec_under_ta(s in scenario()) {
        assert_backings_agree(&ThresholdAlgorithm, s)?;
    }

    #[test]
    fn paged_matches_vec_under_nra(s in scenario()) {
        assert_backings_agree(&NraLowerBound, s)?;
    }

    #[test]
    fn paged_matches_vec_under_ca(s in scenario()) {
        assert_backings_agree(&CombinedAlgorithm::new(3, 0.0), s)?;
    }

    /// Raw-pair semantics: duplicate oids (keep-last), sparse oid
    /// spaces, and degenerate grades all round-trip exactly — drain,
    /// probes, and planner histogram.
    #[test]
    fn raw_pairs_roundtrip_exactly(
        raw in proptest::collection::vec((0u64..400, 0u32..=1_000_000), 0..250),
        page_size in prop_oneof![Just(256usize), Just(1024usize)],
    ) {
        let pairs: Vec<(u64, Score)> = raw
            .iter()
            .map(|&(oid, g)| (oid, Score::clamped(g as f64 / 1_000_000.0)))
            .collect();
        let path = scratch("raw");
        build_store(&path, "raw", pairs.clone(), &BuildConfig::with_page_size(page_size))
            .expect("build store");
        let store = PagedStore::open(&path, StoreOptions::DEFAULT).expect("open store");
        let mut paged = store.source();
        let mut vec = VecSource::new("raw", pairs);

        prop_assert_eq!(paged.info().universe_size, vec.info().universe_size);
        loop {
            let (a, b) = (paged.sorted_next(), vec.sorted_next());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        for oid in 0..420u64 {
            prop_assert_eq!(paged.random_access(oid), vec.random_access(oid), "oid {}", oid);
        }
        prop_assert_eq!(
            paged.grade_histogram(DEFAULT_HISTOGRAM_BINS),
            vec.grade_histogram(DEFAULT_HISTOGRAM_BINS)
        );
        prop_assert!(store.take_error().is_none());
    }

    /// Truncating a store anywhere must yield a typed error at open —
    /// never a panic, never a silently short source.
    #[test]
    fn truncation_surfaces_a_typed_error(
        seed in 0u64..100_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let pairs: Vec<(u64, Score)> = (0..300u64)
            .map(|i| (i, Score::clamped(((i ^ seed) % 997) as f64 / 997.0)))
            .collect();
        let path = scratch("trunc");
        build_store(&path, "t", pairs, &BuildConfig::with_page_size(256)).expect("build store");
        let full = std::fs::read(&path).expect("read back");
        let keep = ((full.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &full[..keep]).expect("truncate");
        match PagedStore::open(&path, StoreOptions::DEFAULT) {
            Err(StoreError::Truncated { .. }) | Err(StoreError::BadMagic) | Err(StoreError::Io(_)) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error kind: {e}"))),
            Ok(_) => return Err(TestCaseError::fail("truncated store opened cleanly".to_owned())),
        }
    }

    /// Flipping any single bit must surface a typed error — at open
    /// when the flip hits the header/stats/directory, or parked while
    /// reading when it hits a data page. CRC32 detects every
    /// single-bit flip, so nothing may slip through, and nothing may
    /// panic.
    #[test]
    fn any_flipped_bit_surfaces_a_typed_error(
        seed in 0u64..100_000,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let oids: Vec<u64> = (0..200u64).map(|i| i * 5).collect();
        let pairs: Vec<(u64, Score)> = oids
            .iter()
            .map(|&i| (i, Score::clamped(((i ^ seed) % 991) as f64 / 991.0)))
            .collect();
        let path = scratch("flip");
        build_store(&path, "f", pairs, &BuildConfig::with_page_size(256)).expect("build store");
        let mut bytes = std::fs::read(&path).expect("read back");
        let pos = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("write corrupted");

        let store = match PagedStore::open(&path, StoreOptions::DEFAULT) {
            Err(_) => return Ok(()), // typed error at open: done
            Ok(store) => store,
        };
        // The flip landed in a data page: drain the sorted run and
        // probe every stored oid so every page is visited, then the
        // parked error must be there.
        let mut src = store.source();
        while src.sorted_next().is_some() {}
        for &oid in &oids {
            let _ = src.random_access(oid);
        }
        let parked = store.take_error();
        prop_assert!(
            matches!(parked, Some(StoreError::ChecksumMismatch { .. })),
            "flip at byte {} bit {} was swallowed: {:?}",
            pos,
            bit,
            parked
        );
    }
}

/// The calibration satellite: measuring c_R/c_S against a real paged
/// store must price random access well above sorted access, and the
/// planner's choice must shift accordingly — NRA (which never pays
/// random access) under the measured model, TA under the uniform one.
#[test]
fn io_calibrated_cost_model_shifts_the_plan() {
    let pairs: Vec<(u64, Score)> = (0..4000u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (i, Score::clamped((h >> 11) as f64 / (1u64 << 53) as f64))
        })
        .collect();
    let path = scratch("calibrate");
    build_store(&path, "cal", pairs, &BuildConfig::with_page_size(512)).expect("build store");
    // A tiny pool keeps the random probes cold, the way a store much
    // larger than memory behaves.
    let store = PagedStore::open(
        &path,
        StoreOptions {
            pool_pages: Some(4),
            readahead: None,
        },
    )
    .expect("open store");
    let mut src = store.source();
    let measured = calibrate_cost_model_io(&mut src, 64).expect("paged sources calibrate");
    assert!(
        measured.random_unit / measured.sorted_unit >= 2.0,
        "a cold random probe costs a whole page: {measured:?}"
    );

    let query = PlanQuery::fuzzy(4000, 2, 10);
    let uniform = choose_plan(
        &query,
        None,
        &ExecPolicy::new().cost_model(CostModel::UNIFORM),
    );
    let io = choose_plan(&query, None, &ExecPolicy::new().cost_model(measured));
    assert_eq!(
        uniform.chosen,
        PhysicalPlan::Ta,
        "uniform costs keep TA's eager random resolution"
    );
    assert_eq!(
        io.chosen,
        PhysicalPlan::Nra,
        "measured page costs push the plan to the no-random-access family"
    );

    // Exact-grade queries cannot take NRA; the same measured model
    // shifts them to CA with a deep interleave instead.
    let exact = PlanQuery::fuzzy(4000, 2, 10).exact_grades();
    let io_exact = choose_plan(&exact, None, &ExecPolicy::new().cost_model(measured));
    assert!(
        matches!(io_exact.chosen, PhysicalPlan::Ca { h } if h >= 2),
        "exact grades under measured page costs pick CA, got {:?}",
        io_exact.chosen
    );
}
