//! E16 — cost-based plan selection (§4.2's "cost modeling issues").
//!
//! "In order to use an optimizer, we need to understand the cost of
//! applying various operators over various data in various
//! repositories." This experiment tests exactly that understanding:
//! the unified planner (`fmdb_middleware::planner::choose_plan`, fed by
//! per-source grade histograms and the measured crisp selectivity)
//! picks a plan, every applicable strategy is then *actually executed*,
//! and the regret — the optimizer's executed charged cost over the
//! cheapest executed charged cost — is reported per cell and gated by
//! `cargo xtask check-bench` (every cell ≥ 1, median ≤ 2, max ≤ 10).
//!
//! The sweep crosses crisp selectivity × k × the c_R/c_S price ratio:
//! the same executed access counts are priced under each ratio, and the
//! planner re-chooses under each ratio, so a pick that only looks good
//! under uniform pricing is caught.

use fmdb_core::query::{Query, Target};
use fmdb_garlic::catalog::Catalog;
use fmdb_garlic::cost::CostEstimator;
use fmdb_garlic::executor::{AlgoChoice, Garlic};
use fmdb_garlic::object::Value;
use fmdb_garlic::repository::{QbicRepository, TableRepository};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::stats::{AccessStats, CostModel};

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

fn garlic_with_selectivity(n: usize, selectivity: f64, seed: u64) -> Garlic {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel: 4,
        seed,
        ..SynthConfig::default()
    });
    let mut table = TableRepository::new("store", n as u64);
    let matches = ((n as f64 * selectivity).round() as u64).max(1);
    for i in 0..n as u64 {
        let artist = if i % (n as u64 / matches).max(1) == 0 {
            "Beatles"
        } else {
            "Various"
        };
        table.set(i, "Artist", Value::text(artist));
    }
    let mut catalog = Catalog::new();
    catalog.register(Box::new(table)).expect("fresh catalog");
    catalog
        .register(Box::new(QbicRepository::new("qbic", db)))
        .expect("fresh catalog");
    Garlic::new(catalog)
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E16",
        "planner regret across selectivity, k and the c_R/c_S price ratio",
        "§4.2: \"In order to use an optimizer, we need to understand the cost of applying \
         various operators\" — the statistics-driven planner should pick within a small \
         factor of the empirically cheapest executed strategy everywhere in the sweep",
    );
    let n = cfg.pick(2000, 300);

    let q = Query::and(vec![
        Query::atomic("Artist", Target::Text("Beatles".into())),
        Query::atomic("Color", Target::Similar("red".into())),
    ]);

    let ratios: [(f64, &str); 2] = [(1.0, "r1"), (10.0, "r10")];
    let mut t = Table::new(
        format!(
            "Artist='Beatles' ∧ Color~red over {n} albums; regret = executed(pick)/executed(best)"
        ),
        &[
            "selectivity",
            "k",
            "c_R/c_S",
            "planner pick",
            "pick cost",
            "best executed",
            "best cost",
            "regret",
        ],
    );
    let mut regrets: Vec<f64> = Vec::new();
    let mut example_explanation: Option<String> = None;
    for &sel in &[0.005f64, 0.05, 0.25, 0.6] {
        for &k in &[5usize, 50] {
            let garlic = garlic_with_selectivity(n, sel, 21);
            for &(ratio, rname) in &ratios {
                let model = CostModel::random_to_sorted_ratio(ratio).expect("valid ratio");
                let estimator = CostEstimator {
                    cost_model: model,
                    ..CostEstimator::default()
                };
                let optimized = garlic.top_k_optimized(&q, k, &estimator).expect("runs");
                if example_explanation.is_none() {
                    example_explanation = Some(optimized.explanation.clone());
                }

                // Execute every forced strategy for the ground truth;
                // the optimizer's own run joins the pool, so regret is
                // ≥ 1 by construction.
                let mut actuals: Vec<(String, AccessStats)> =
                    vec![(optimized.plan.to_string(), optimized.stats)];
                for choice in [AlgoChoice::Naive, AlgoChoice::Fa, AlgoChoice::Ta] {
                    let run = garlic.top_k_with(&q, k, choice).expect("runs");
                    actuals.push((run.plan.to_string(), run.stats));
                }

                let (best_plan, best_cost) = actuals
                    .iter()
                    .map(|(name, stats)| (name.clone(), stats.charged(&model)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("non-empty");
                let pick_cost = optimized.stats.charged(&model);
                let regret = if best_cost > 0.0 {
                    pick_cost / best_cost
                } else {
                    1.0
                };
                regrets.push(regret);
                let cell = format!("regret_sel{}_k{k}_{rname}", (sel * 1000.0).round() as u64);
                report.metric(cell, regret);
                t.row(vec![
                    f3(sel),
                    k.to_string(),
                    rname.trim_start_matches('r').to_string(),
                    optimized.plan.to_string(),
                    int(pick_cost as u64),
                    best_plan,
                    int(best_cost as u64),
                    f3(regret),
                ]);
            }
        }
    }
    report.table(t);

    let mut sorted = regrets.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let max = sorted.last().copied().unwrap_or(1.0);
    report.metric("regret_median", median);
    report.metric("regret_max", max);
    report.note(format!(
        "median regret {median:.2}x, max {max:.2}x over {} cells — the unified planner's \
         pick stays within a small factor of the cheapest executed strategy as the crisp \
         predicate loses selectivity and random access gets repriced. Example decision \
         record: {}",
        sorted.len(),
        example_explanation.unwrap_or_else(|| "(none)".into()),
    ));
    report
}
