//! E7 — distance bounding (\[HSE+95\], §2.1): the 3-dimensional filter
//! answers exact k-NN with zero false dismissals while skipping most
//! O(k²) quadratic-form evaluations.

use std::time::Instant;

use fmdb_index::filter_refine::FilterRefineIndex;
use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::HistogramDistance;
use fmdb_media::synth::{SynthConfig, SyntheticDb};

use crate::report::{f3, Report, Table};
use crate::runners::RunCfg;

fn histograms(
    count: usize,
    bins_per_channel: usize,
    seed: u64,
) -> (ColorSpace, Vec<ColorHistogram>) {
    let db = SyntheticDb::generate(&SynthConfig {
        count,
        bins_per_channel,
        seed,
        ..SynthConfig::default()
    });
    let hists = db.objects.iter().map(|o| o.histogram.clone()).collect();
    (db.space, hists)
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E7",
        "filter-and-refine k-NN over color histograms",
        "§2.1/[HSE+95]: d(x,y) ≥ d̂(x̂,ŷ) lets a 3-dim filter \"eliminate from consideration\" \
         most objects with zero false dismissals",
    );
    let n = cfg.pick(2000, 300);
    let k = 10usize;
    let queries = cfg.pick(20, 5);
    let mut t = Table::new(
        format!("exact 10-NN over {n} histograms, {queries} queries"),
        &[
            "k (bins)",
            "full evals/query",
            "savings",
            "indexed d̂ evals",
            "false dismissals",
            "scan ms/query",
            "filter ms/query",
            "speedup",
        ],
    );
    for bins_per_channel in [3usize, 4, 5] {
        let (space, hists) = histograms(n, bins_per_channel, 31);
        let index = FilterRefineIndex::build(&space, hists.clone()).expect("filter derivable");
        let (_, probes) = histograms(queries, bins_per_channel, 77);
        let qf = fmdb_media::distance::QuadraticFormDistance::new(space.similarity_matrix());

        let mut full_evals = 0u64;
        let mut indexed_filter_evals = 0u64;
        let mut dismissals = 0usize;
        let mut filter_time = 0.0f64;
        let mut scan_time = 0.0f64;
        for q in &probes {
            let start = Instant::now();
            let (got, stats) = index.knn(q, k).expect("query runs");
            filter_time += start.elapsed().as_secs_f64();
            full_evals += stats.full_evaluations;
            // The short-vector R-tree variant (§2.1: "we could
            // potentially have a multidimensional index on short color
            // vectors") must agree and touch far fewer short vectors.
            let (indexed, istats) = index.knn_indexed(q, k).expect("query runs");
            indexed_filter_evals += istats.filter_evaluations;
            for ((_, a), (_, b)) in got.iter().zip(&indexed) {
                assert!((a - b).abs() < 1e-9, "indexed filter disagrees");
            }

            // Brute-force reference for the dismissal check + timing.
            let start = Instant::now();
            let mut reference: Vec<(usize, f64)> = hists
                .iter()
                .enumerate()
                .map(|(i, h)| (i, qf.distance(q, h).expect("same space")))
                .collect();
            reference.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
            scan_time += start.elapsed().as_secs_f64();
            for ((_, gd), (_, rd)) in got.iter().zip(reference.iter().take(k)) {
                if (gd - rd).abs() > 1e-9 {
                    dismissals += 1;
                }
            }
        }
        let per_query = full_evals as f64 / queries as f64;
        t.row(vec![
            (bins_per_channel * bins_per_channel * bins_per_channel).to_string(),
            f3(per_query),
            format!("{:.1}%", 100.0 * (1.0 - per_query / n as f64)),
            f3(indexed_filter_evals as f64 / queries as f64),
            dismissals.to_string(),
            f3(scan_time / queries as f64 * 1e3),
            f3(filter_time / queries as f64 * 1e3),
            f3(scan_time / filter_time.max(1e-12)),
        ]);
    }
    report.table(t);
    report.note(
        "false dismissals are zero by the lower-bound guarantee (inequality (2)); the savings \
         column is the fraction of full quadratic-form distances the filter avoided, and the \
         wall-clock speedup tracks it since each avoided evaluation is O(k²).",
    );
    report
}
