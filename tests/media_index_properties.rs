//! Property-based tests across the media and index substrates: the
//! distance-bounding guarantee (zero false dismissals), metric
//! properties of the quadratic form, and agreement of every k-NN
//! structure with the linear scan.

use proptest::prelude::*;

use fuzzymm::index::gridfile::GridFile;
use fuzzymm::media::bounding::BoundedDistance;
use fuzzymm::media::color::{ColorHistogram, ColorSpace};
use fuzzymm::prelude::*;

fn space() -> ColorSpace {
    ColorSpace::rgb_grid(3).expect("positive bins")
}

fn histogram(k: usize) -> impl Strategy<Value = ColorHistogram> {
    proptest::collection::vec(1e-6f64..1.0, k..=k)
        .prop_map(|masses| ColorHistogram::from_masses(masses).expect("positive masses"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distance_bound_never_overshoots(x in histogram(27), y in histogram(27)) {
        let sp = space();
        let bd = BoundedDistance::for_space(&sp).expect("filter derivable");
        let full = bd.full.distance(&x, &y).expect("same space");
        let lower = bd.filter.lower_bound(&x, &y).expect("same space");
        prop_assert!(full + 1e-9 >= lower, "d = {full} < d̂ = {lower}");
    }

    #[test]
    fn quadratic_form_is_a_semimetric(
        x in histogram(27),
        y in histogram(27),
        z in histogram(27),
    ) {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let d = |a: &ColorHistogram, b: &ColorHistogram| qf.distance(a, b).expect("same space");
        prop_assert!(d(&x, &x) < 1e-9);
        prop_assert!((d(&x, &y) - d(&y, &x)).abs() < 1e-12);
        prop_assert!(d(&x, &z) <= d(&x, &y) + d(&y, &z) + 1e-9);
    }

    #[test]
    fn rtree_knn_agrees_with_scan(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3..=3),
            1..80,
        ),
        k in 1usize..=6,
        query in proptest::collection::vec(0.0f64..1.0, 3..=3),
    ) {
        let mut tree = RTree::new(3).expect("positive dim");
        let mut scan = LinearScan::new(3).expect("positive dim");
        for (i, p) in points.iter().enumerate() {
            tree.insert(p, i as u64).expect("valid point");
            scan.insert(p, i as u64).expect("valid point");
        }
        let (a, _) = tree.knn(&query, k).expect("valid query");
        let (b, _) = scan.knn(&query, k).expect("valid query");
        let a_ids: Vec<u64> = a.iter().map(|n| n.id).collect();
        let b_ids: Vec<u64> = b.iter().map(|n| n.id).collect();
        prop_assert_eq!(a_ids, b_ids);
    }

    #[test]
    fn gridfile_knn_agrees_with_scan(
        points in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 2..=2),
            1..60,
        ),
        k in 1usize..=5,
        query in proptest::collection::vec(0.0f64..1.0, 2..=2),
    ) {
        let mut grid = GridFile::new(2, 4, 1 << 20).expect("positive dim");
        let mut scan = LinearScan::new(2).expect("positive dim");
        for (i, p) in points.iter().enumerate() {
            grid.insert(p, i as u64).expect("valid point");
            scan.insert(p, i as u64).expect("valid point");
        }
        let (a, _) = grid.knn(&query, k).expect("valid query");
        let (b, _) = scan.knn(&query, k).expect("valid query");
        let a_ids: Vec<u64> = a.iter().map(|n| n.id).collect();
        let b_ids: Vec<u64> = b.iter().map(|n| n.id).collect();
        prop_assert_eq!(a_ids, b_ids);
    }

    #[test]
    fn filter_refine_matches_brute_force(
        masses in proptest::collection::vec(
            proptest::collection::vec(1e-6f64..1.0, 27..=27),
            2..40,
        ),
        k in 1usize..=5,
    ) {
        let sp = space();
        let hists: Vec<ColorHistogram> = masses
            .into_iter()
            .map(|m| ColorHistogram::from_masses(m).expect("positive masses"))
            .collect();
        let query = hists[0].clone();
        let index = FilterRefineIndex::build(&sp, hists.clone()).expect("filter derivable");
        let (got, stats) = index.knn(&query, k).expect("query runs");

        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let mut expect: Vec<(usize, f64)> = hists
            .iter()
            .enumerate()
            .map(|(i, h)| (i, qf.distance(&query, h).expect("same space")))
            .collect();
        expect.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        expect.truncate(k);
        for ((_, gd), (_, ed)) in got.iter().zip(&expect) {
            prop_assert!((gd - ed).abs() < 1e-9);
        }
        prop_assert!(stats.full_evaluations <= stats.filter_evaluations);
    }

    #[test]
    fn histograms_always_normalize(masses in proptest::collection::vec(0.0f64..10.0, 1..64)) {
        prop_assume!(masses.iter().sum::<f64>() > 0.0);
        let h = ColorHistogram::from_masses(masses).expect("positive total");
        let total: f64 = h.bins().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
