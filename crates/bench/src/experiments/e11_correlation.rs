//! E11 — the independence assumption and its failure mode: Theorem 4.1
//! is probabilistic over *independent* lists; §6 notes "a (somewhat
//! artificial) case where the database access cost is necessarily
//! linear in the database size".

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::workload::{adversarial_anti, correlated_pair};

use crate::report::{f3, fit_exponent, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E11",
        "correlation sensitivity and the adversarial linear-cost instance",
        "Thm 4.1 assumes independence; §6: an adversarial instance forces linear cost \
         (provable lower bound)",
    );
    let n = cfg.pick(1 << 14, 1 << 10);
    let k = 10usize;

    let mut corr = Table::new(
        format!("A0 and TA cost vs correlation ρ (N = {n}, k = {k}, min)"),
        &["rho", "A0 cost", "TA cost", "A0 cost/√(kN)"],
    );
    for &rho in &[-1.0f64, -0.75, -0.5, 0.0, 0.5, 0.75, 1.0] {
        let fa = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, |seed| {
            correlated_pair(n, rho, seed)
        });
        let ta = mean_cost(&ThresholdAlgorithm, &min, k, cfg.seeds, |seed| {
            correlated_pair(n, rho, seed)
        });
        corr.row(vec![
            f3(rho),
            int(fa.database_access_cost()),
            int(ta.database_access_cost()),
            f3(fa.database_access_cost() as f64 / ((k * n) as f64).sqrt()),
        ]);
    }
    report.table(corr);

    let ns: Vec<usize> = if cfg.quick {
        vec![1 << 9, 1 << 10, 1 << 11]
    } else {
        vec![1 << 11, 1 << 13, 1 << 15]
    };
    let mut adv = Table::new(
        "the adversarial instance (list 2 reverses list 1): cost vs N",
        &["N", "A0 cost", "A0 cost/N", "TA cost", "TA cost/N"],
    );
    let mut fa_pts = Vec::new();
    for &n in &ns {
        let mut sources = adversarial_anti(n);
        let fa = crate::runners::run_algo(&FaginsAlgorithm, &mut sources, &min, k).stats;
        let mut sources = adversarial_anti(n);
        let ta = crate::runners::run_algo(&ThresholdAlgorithm, &mut sources, &min, k).stats;
        fa_pts.push((n as f64, fa.database_access_cost() as f64));
        adv.row(vec![
            n.to_string(),
            int(fa.database_access_cost()),
            f3(fa.database_access_cost() as f64 / n as f64),
            int(ta.database_access_cost()),
            f3(ta.database_access_cost() as f64 / n as f64),
        ]);
    }
    report.table(adv);
    report.note(format!(
        "adversarial-instance exponent for A0: {:.3} (theory: 1.0 — the linear lower bound).",
        fit_exponent(&fa_pts)
    ));
    report.note(
        "positive correlation helps (the same objects top both lists); negative correlation \
         hurts, and at ρ = −1 the cost approaches the linear worst case — exactly where \
         Theorem 4.1's independence assumption is violated.",
    );
    report
}
