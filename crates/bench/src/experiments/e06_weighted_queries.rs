//! E6 — weighted queries (§5): moving a slider from "color and shape
//! equal" to "color only" rotates the result set, the grades follow the
//! Fagin–Wimmers formula, and A₀ remains correct and roughly as cheap
//! as in the unweighted case.

use std::sync::Arc;

use fmdb_core::query::{Query, Target};
use fmdb_core::scoring::tnorms::Min;
use fmdb_core::weights::Weighting;
use fmdb_garlic::demo::cd_store;
use fmdb_garlic::executor::AlgoChoice;

use crate::report::{int, Report, Table};
use crate::runners::RunCfg;

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E6",
        "slider sweep: weighting color vs shape",
        "§5: the weighted rule f_Θ (formula (5)) keeps A0 correct and optimal; \
         sliders change emphasis continuously",
    );
    let n = cfg.pick(400, 120);
    let garlic = cd_store(n, 9);
    let color = Query::atomic("Color", Target::Similar("red".into()));
    let shape = Query::atomic("Shape", Target::Similar("round".into()));

    let mut t = Table::new(
        format!("top-5 of Color~red ∧ Shape~round over {n} covers, weighted min"),
        &[
            "θ_color",
            "θ_shape",
            "top-5 ids",
            "top grade",
            "A0 cost",
            "= naive?",
        ],
    );
    for theta_color in [0.50, 0.60, 0.70, 0.80, 0.90, 1.00] {
        let theta = Weighting::new(vec![theta_color, 1.0 - theta_color]).expect("weights sum to 1");
        let q = Query::weighted(vec![color.clone(), shape.clone()], Arc::new(Min), theta)
            .expect("arity matches");
        let fa = garlic.top_k(&q, 5).expect("query runs");
        let naive = garlic
            .top_k_with(&q, 5, AlgoChoice::Naive)
            .expect("query runs");
        let same_grades = fa
            .answers
            .iter()
            .zip(&naive.answers)
            .all(|(a, b)| a.grade.approx_eq(b.grade, 1e-9));
        let ids: Vec<String> = fa.answers.iter().map(|a| a.id.to_string()).collect();
        t.row(vec![
            format!("{theta_color:.2}"),
            format!("{:.2}", 1.0 - theta_color),
            ids.join(","),
            fa.answers[0].grade.to_string(),
            int(fa.stats.database_access_cost()),
            if same_grades {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    report.table(t);
    report.note(
        "at θ = (0.5, 0.5) the result is the plain min conjunction (desideratum D1); as θ_color \
         approaches 1 the result converges to the pure color ranking (D2 drops the shape term); \
         every row's grades match the naive reference, confirming §5's claim that A0 stays \
         correct under f_Θ.",
    );
    report
}
