//! Query planning (§4.1–§4.2).
//!
//! Garlic's implementers "ultimately decided to treat A₀ as a join";
//! picking the right physical strategy for a fuzzy query is exactly a
//! planning problem, and the paper describes three regimes:
//!
//! * a conjunction with a selective **crisp** conjunct (the Beatles
//!   example): evaluate the crisp predicate first, then random-access
//!   the fuzzy grades of the survivors — cost proportional to the
//!   selectivity, not to N^(1/2);
//! * a monotone conjunction of fuzzy conjuncts: **algorithm A₀**;
//! * a disjunction under max: the **m·k merge**;
//! * anything else (negation, nested mixes, non-monotone scoring):
//!   fall back to a **full scan** with reference semantics.
//!
//! The planner cannot introspect a user-supplied scoring function
//! symbolically, so — like Garlic, which had to "somehow guarantee
//! monotonicity" — it *probes* the function numerically before
//! committing to a plan that depends on an algebraic property.

use fmdb_core::query::{AtomicQuery, Query, ScoringHandle};
use fmdb_core::score::Score;
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::stats::DEFAULT_HISTOGRAM_BINS;
use fmdb_core::weights::Weighting;
use fmdb_middleware::planner::{choose_plan, CombinerKind, PhysicalPlan, PlanQuery, QueryStats};
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::stats::SourceStats;

use crate::catalog::Catalog;
use crate::cost::CostEstimator;
use crate::repository::AttributeKind;

/// How the flat query combines its atoms' grades.
#[derive(Clone)]
pub enum Combiner {
    /// Plain m-ary scoring function.
    Plain(ScoringHandle),
    /// Fagin–Wimmers weighted rule.
    Weighted(ScoringHandle, Weighting),
}

// `ScoringHandle` is a `dyn` function without a `Debug` bound, but it
// does carry a display name — render that.
impl std::fmt::Debug for Combiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Combiner::Plain(s) => f.debug_tuple("Plain").field(&s.name()).finish(),
            Combiner::Weighted(s, w) => {
                f.debug_tuple("Weighted").field(&s.name()).field(w).finish()
            }
        }
    }
}

impl Combiner {
    /// Evaluates the combiner on a grade tuple.
    pub fn combine(&self, grades: &[Score]) -> Score {
        match self {
            Combiner::Plain(f) => f.combine(grades),
            Combiner::Weighted(f, theta) => {
                fmdb_core::weights::weighted_combine(&**f, theta, grades)
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Combiner::Plain(f) => f.name(),
            Combiner::Weighted(f, theta) => {
                format!("weighted({}, {:?})", f.name(), theta.weights())
            }
        }
    }

    /// Monotonicity as declared by the underlying function.
    pub fn is_monotone(&self) -> bool {
        match self {
            Combiner::Plain(f) => f.is_monotone(),
            Combiner::Weighted(f, _) => f.is_monotone(),
        }
    }
}

/// A query flattened to one combination level over atomic children.
#[derive(Debug, Clone)]
pub struct FlatQuery {
    /// The atomic subqueries in positional order.
    pub atoms: Vec<AtomicQuery>,
    /// The grade combiner.
    pub combiner: Combiner,
}

/// Flattens a query if it is a single And/Or/Weighted (or bare atom)
/// over atomic children; returns `None` for nested or negated shapes.
pub fn flatten(query: &Query) -> Option<FlatQuery> {
    let (children, combiner) = match query {
        Query::Atomic(a) => {
            return Some(FlatQuery {
                atoms: vec![a.clone()],
                combiner: Combiner::Plain(std::sync::Arc::new(fmdb_core::scoring::tnorms::Min)),
            })
        }
        Query::And { children, scoring } | Query::Or { children, scoring } => {
            (children, Combiner::Plain(scoring.clone()))
        }
        Query::Weighted {
            children,
            scoring,
            weighting,
        } => (
            children,
            Combiner::Weighted(scoring.clone(), weighting.clone()),
        ),
        Query::Not(_) => return None,
    };
    let atoms = children
        .iter()
        .map(|c| match c {
            Query::Atomic(a) => Some(a.clone()),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()?;
    if atoms.is_empty() {
        return None;
    }
    Some(FlatQuery { atoms, combiner })
}

/// The physical strategies the executor implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Crisp conjuncts filter; fuzzy grades fetched by random access.
    CrispFilter,
    /// Algorithm A₀ over all conjuncts.
    FaginA0,
    /// The Threshold Algorithm over all conjuncts.
    Ta,
    /// The Combined Algorithm with interleave depth `h`.
    Ca {
        /// One random-access round per `h` sorted rounds.
        h: usize,
    },
    /// The m·k disjunction merge.
    MaxMerge,
    /// Full scan with reference semantics.
    FullScan,
}

impl PlanKind {
    /// Maps a unified-planner choice onto a Garlic-executable plan.
    /// `None` for the NRA family: Garlic's result grades are
    /// user-facing, so the planner is always asked for exact grades
    /// and never picks those.
    pub fn from_physical(plan: PhysicalPlan) -> Option<PlanKind> {
        match plan {
            PhysicalPlan::Fa => Some(PlanKind::FaginA0),
            PhysicalPlan::Ta => Some(PlanKind::Ta),
            PhysicalPlan::Ca { h } => Some(PlanKind::Ca { h }),
            PhysicalPlan::CrispFilter => Some(PlanKind::CrispFilter),
            PhysicalPlan::MaxMerge => Some(PlanKind::MaxMerge),
            PhysicalPlan::FullScan => Some(PlanKind::FullScan),
            PhysicalPlan::Nra | PhysicalPlan::ApproxTa | PhysicalPlan::ApproxNra => None,
        }
    }
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanKind::CrispFilter => write!(f, "crisp-filter"),
            PlanKind::FaginA0 => write!(f, "fagin-a0"),
            PlanKind::Ta => write!(f, "threshold-ta"),
            PlanKind::Ca { .. } => write!(f, "combined-ca"),
            PlanKind::MaxMerge => write!(f, "max-merge"),
            PlanKind::FullScan => write!(f, "full-scan"),
        }
    }
}

/// A chosen plan plus the flattened query it applies to (absent for
/// full scans of non-flat queries).
#[derive(Debug)]
pub struct Plan {
    /// The strategy.
    pub kind: PlanKind,
    /// The flattened query, when one exists.
    pub flat: Option<FlatQuery>,
    /// Human-readable explanation of the choice.
    pub explanation: String,
}

/// Sample grid used by the numeric probes.
const PROBE_SAMPLES: [f64; 4] = [0.15, 0.5, 0.85, 1.0];

/// Probes whether a grade of 0 in any position forces the combined
/// grade to 0 — the property the crisp-filter plan needs (true for
/// every t-norm, false for means and for weighted rules with unequal
/// weights).
pub fn probe_zero_absorbing(combiner: &Combiner, arity: usize) -> bool {
    if arity == 0 {
        return false;
    }
    let mut args = vec![Score::ZERO; arity];
    for pos in 0..arity {
        for &fill in &PROBE_SAMPLES {
            for (i, a) in args.iter_mut().enumerate() {
                *a = if i == pos {
                    Score::ZERO
                } else {
                    Score::clamped(fill)
                };
            }
            if combiner.combine(&args) != Score::ZERO {
                return false;
            }
        }
    }
    true
}

/// Probes whether the combiner behaves like max (the disjunction merge
/// requirement).
pub fn probe_max_like(combiner: &Combiner, arity: usize) -> bool {
    if arity == 0 {
        return false;
    }
    let mut args = vec![Score::ZERO; arity];
    for &hi in &PROBE_SAMPLES {
        for pos in 0..arity {
            for (i, a) in args.iter_mut().enumerate() {
                *a = if i == pos {
                    Score::clamped(hi)
                } else {
                    Score::clamped(hi * 0.4)
                };
            }
            let expect = args.iter().copied().fold(Score::ZERO, Score::max);
            if !combiner.combine(&args).approx_eq(expect, 1e-9) {
                return false;
            }
        }
    }
    true
}

/// Chooses a plan for `query` against `catalog`.
pub fn plan(query: &Query, catalog: &Catalog) -> Plan {
    let Some(flat) = flatten(query) else {
        return Plan {
            kind: PlanKind::FullScan,
            flat: None,
            explanation: "query is nested or negated; falling back to full scan".to_owned(),
        };
    };
    let arity = flat.atoms.len();

    if !flat.combiner.is_monotone() {
        return Plan {
            kind: PlanKind::FullScan,
            flat: Some(flat),
            explanation: "scoring function is not monotone; A0 would be incorrect".to_owned(),
        };
    }

    if probe_max_like(&flat.combiner, arity) {
        return Plan {
            kind: PlanKind::MaxMerge,
            flat: Some(flat),
            explanation: format!("disjunction under max: m·k merge over {arity} lists"),
        };
    }

    // Crisp filter applies when some conjunct is crisp and a 0 grade
    // annihilates the combination.
    let has_crisp = flat
        .atoms
        .iter()
        .any(|a| catalog.attribute_kind(&a.attribute) == Some(AttributeKind::Crisp));
    if has_crisp && arity > 1 && probe_zero_absorbing(&flat.combiner, arity) {
        return Plan {
            kind: PlanKind::CrispFilter,
            flat: Some(flat),
            explanation:
                "selective crisp conjunct filters candidates; fuzzy grades fetched by random access"
                    .to_owned(),
        };
    }

    Plan {
        kind: PlanKind::FaginA0,
        flat: Some(flat),
        explanation: format!("monotone combination of {arity} graded lists: algorithm A0"),
    }
}

/// Chooses a plan by *estimated cost* (§4.2's optimizer), routing
/// through the unified cost-based planner
/// ([`fmdb_middleware::planner::choose_plan`]) — the same decision
/// procedure `ExecPolicy::Algo::Auto` uses at the engine level.
///
/// The catalog supplies the statistics: per-atom grade histograms read
/// from the materialized sources and exact crisp match counts
/// (optimizer-time probes, not charged to the query). Garlic's result
/// grades are user-facing, so the planner is asked for **exact
/// grades** — the NRA family is never chosen here. Falls back to
/// [`plan`]'s shape rules when the query is not flat or not monotone.
pub fn plan_costed(query: &Query, catalog: &Catalog, k: usize, estimator: &CostEstimator) -> Plan {
    let Some(flat) = flatten(query) else {
        return plan(query, catalog);
    };
    if !flat.combiner.is_monotone() {
        return plan(query, catalog);
    }
    let arity = flat.atoms.len();
    // An empty catalog makes every estimate 0; keep the formulas
    // meaningful with a floor of one object.
    let n = catalog.universe_size().max(1);

    // Gather crisp statistics (a real optimizer would consult stored
    // statistics; our in-memory repositories can afford exact counts,
    // and these optimizer-time probes are not charged to the query).
    let mut crisp_count = 0usize;
    let mut survivors: Option<u64> = None;
    for atom in &flat.atoms {
        if catalog.attribute_kind(&atom.attribute) == Some(AttributeKind::Crisp) {
            if let Ok(Some(matches)) = catalog.crisp_matches(atom) {
                crisp_count += 1;
                let count = matches.len() as u64;
                survivors = Some(survivors.map_or(count, |s| s.min(count)));
            }
        }
    }

    // Classify the combiner with the numeric probes (max-like first:
    // at arity 1 both probes accept, and the k-prefix merge is then
    // the cheapest correct plan).
    let combiner = if probe_max_like(&flat.combiner, arity) {
        CombinerKind::MaxLike
    } else if probe_zero_absorbing(&flat.combiner, arity) {
        CombinerKind::ZeroAbsorbing
    } else {
        CombinerKind::Other
    };

    let mut pq = PlanQuery::fuzzy(n, arity, k)
        .combiner(combiner)
        .exact_grades()
        .fa_constant(estimator.fa_constant);
    if crisp_count > 0 && arity > 1 {
        if let Some(s) = survivors {
            pq = pq.crisp(crisp_count, s);
        }
    }

    // Per-source equi-depth histograms, all-or-nothing: partial
    // statistics would skew the comparison between plans.
    let stats: Option<QueryStats> = flat
        .atoms
        .iter()
        .map(|a| {
            catalog
                .source_for(a)
                .ok()
                .and_then(|s| s.grade_histogram(DEFAULT_HISTOGRAM_BINS))
                .map(SourceStats::new)
        })
        .collect::<Option<Vec<_>>>()
        .map(QueryStats::new);

    let policy = ExecPolicy::new().cost_model(estimator.cost_model);
    let explain = choose_plan(&pq, stats.as_ref(), &policy);
    let kind = PlanKind::from_physical(explain.chosen)
        // Unreachable under `exact_grades`, but never panic on it.
        .unwrap_or(PlanKind::FullScan);
    Plan {
        kind,
        flat: Some(flat),
        explanation: format!("cost-based choice: {explain}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Value;
    use crate::repository::TableRepository;
    use fmdb_core::query::Target;
    use fmdb_core::scoring::conorms::Max;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::Min;
    use fmdb_core::scoring::ConormScoring;
    use std::sync::Arc;

    fn catalog_with_crisp_artist() -> Catalog {
        let mut t = TableRepository::new("cds", 3);
        t.set(0, "Artist", Value::text("Beatles"));
        let mut c = Catalog::new();
        c.register(Box::new(t)).unwrap();
        c
    }

    fn artist() -> Query {
        Query::atomic("Artist", Target::Text("Beatles".into()))
    }

    fn color() -> Query {
        Query::atomic("AlbumColor", Target::Similar("red".into()))
    }

    #[test]
    fn beatles_query_gets_crisp_filter() {
        let c = catalog_with_crisp_artist();
        let q = Query::and(vec![artist(), color()]);
        let p = plan(&q, &c);
        assert_eq!(p.kind, PlanKind::CrispFilter);
    }

    #[test]
    fn fuzzy_conjunction_gets_fa() {
        let c = Catalog::new();
        let q = Query::and(vec![
            color(),
            Query::atomic("Shape", Target::Similar("round".into())),
        ]);
        assert_eq!(plan(&q, &c).kind, PlanKind::FaginA0);
    }

    #[test]
    fn mean_conjunction_with_crisp_cannot_use_crisp_filter() {
        // The arithmetic mean is not zero-absorbing, so filtering on
        // the crisp conjunct would drop objects with positive grades.
        let c = catalog_with_crisp_artist();
        let q = Query::and_with(vec![artist(), color()], Arc::new(ArithmeticMean));
        assert_eq!(plan(&q, &c).kind, PlanKind::FaginA0);
    }

    #[test]
    fn weighted_min_cannot_use_crisp_filter() {
        let c = catalog_with_crisp_artist();
        let theta = Weighting::from_ratios(&[2.0, 1.0]).unwrap();
        let q = Query::weighted(vec![artist(), color()], Arc::new(Min), theta).unwrap();
        // f_θ(0.9, 0) > 0 under weighted min, so crisp filtering is
        // unsound; the planner must pick A0 instead.
        assert_eq!(plan(&q, &c).kind, PlanKind::FaginA0);
    }

    #[test]
    fn uniform_weighted_min_is_zero_absorbing_again() {
        let c = catalog_with_crisp_artist();
        let theta = Weighting::uniform(2).unwrap();
        let q = Query::weighted(vec![artist(), color()], Arc::new(Min), theta).unwrap();
        assert_eq!(plan(&q, &c).kind, PlanKind::CrispFilter);
    }

    #[test]
    fn disjunction_gets_max_merge() {
        let c = Catalog::new();
        let q = Query::or(vec![color(), artist()]);
        assert_eq!(plan(&q, &c).kind, PlanKind::MaxMerge);
    }

    #[test]
    fn non_max_disjunction_gets_fa() {
        let c = Catalog::new();
        let q = Query::or_with(
            vec![color(), artist()],
            Arc::new(ConormScoring(fmdb_core::scoring::conorms::ProbabilisticSum)),
        );
        assert_eq!(plan(&q, &c).kind, PlanKind::FaginA0);
    }

    #[test]
    fn negation_and_nesting_get_full_scan() {
        let c = Catalog::new();
        assert_eq!(plan(&Query::not(color()), &c).kind, PlanKind::FullScan);
        let nested = Query::and(vec![color(), Query::or(vec![artist(), color()])]);
        assert_eq!(plan(&nested, &c).kind, PlanKind::FullScan);
    }

    #[test]
    fn bare_atom_is_planned_as_single_list_merge() {
        // At arity 1 every monotone combiner degenerates to the
        // identity, which the max probe accepts — and the m·k merge is
        // then exactly "read the top k of the one list", the cheapest
        // correct plan.
        let c = Catalog::new();
        let p = plan(&color(), &c);
        assert_eq!(p.kind, PlanKind::MaxMerge);
        assert_eq!(p.flat.unwrap().atoms.len(), 1);
    }

    #[test]
    fn costed_planner_picks_crisp_filter_only_when_selective() {
        let estimator = CostEstimator::default();
        // Selective crisp conjunct (1 of 3 objects): crisp filter wins.
        let c = catalog_with_crisp_artist();
        let q = Query::and(vec![artist(), color()]);
        let p = plan_costed(&q, &c, 2, &estimator);
        assert_eq!(p.kind, PlanKind::CrispFilter, "{}", p.explanation);

        // Unselective crisp conjunct (everything matches): A0 or scan
        // should win over filtering. Build a catalog where all rows are
        // Beatles.
        let mut t = TableRepository::new("cds", 1000);
        for i in 0..1000 {
            t.set(i, "Artist", Value::text("Beatles"));
        }
        let mut c2 = Catalog::new();
        c2.register(Box::new(t)).unwrap();
        let p2 = plan_costed(&q, &c2, 2, &estimator);
        assert_ne!(p2.kind, PlanKind::CrispFilter, "{}", p2.explanation);
    }

    #[test]
    fn costed_planner_prefers_merge_for_disjunctions() {
        let estimator = CostEstimator::default();
        // A realistic universe: the m·k merge (10 accesses) must beat
        // A0's ≈ 4·√(kN) estimate.
        let mut c = Catalog::new();
        c.register(Box::new(TableRepository::new("rows", 1000)))
            .unwrap();
        let q = Query::or(vec![color(), artist()]);
        let p = plan_costed(&q, &c, 5, &estimator);
        assert_eq!(p.kind, PlanKind::MaxMerge, "{}", p.explanation);
    }

    #[test]
    fn costed_planner_falls_back_for_non_flat_queries() {
        let estimator = CostEstimator::default();
        let c = Catalog::new();
        let q = Query::not(color());
        assert_eq!(plan_costed(&q, &c, 5, &estimator).kind, PlanKind::FullScan);
    }

    #[test]
    fn probes_classify_shipped_functions() {
        let min = Combiner::Plain(Arc::new(Min));
        assert!(probe_zero_absorbing(&min, 3));
        assert!(!probe_max_like(&min, 3));
        let mean = Combiner::Plain(Arc::new(ArithmeticMean));
        assert!(!probe_zero_absorbing(&mean, 3));
        let max = Combiner::Plain(Arc::new(ConormScoring(Max)));
        assert!(probe_max_like(&max, 3));
        assert!(!probe_zero_absorbing(&max, 3));
    }
}
