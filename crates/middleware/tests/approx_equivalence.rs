//! Property suite: the θ-approximate algorithms and CA keep their
//! contracts on random corpora (DESIGN.md §10).
//!
//! * **θ = 0 collapse** — `ApproxTa`/`ApproxNra` with zero slack are
//!   **bit-identical** to the exact `ThresholdAlgorithm`/`NraLowerBound`:
//!   same answers, same grades, same charged `sorted`/`random` counts.
//!   The θ ≤ 0 comparison path uses the exact `Score` ordering, so this
//!   is equality, not approximate equality.
//! * **θ > 0 guarantee** — every returned object's **true** grade `g(z)`
//!   satisfies `(1+θ)·g(z) ≥ y_k` (the true k-th grade). For `ApproxTa`
//!   the reported grades are additionally exact (TA only returns fully
//!   probed objects); `ApproxNra` reports certified lower bounds, so the
//!   guarantee is checked against the brute-force truth, not the report.
//! * **CA exactness** — `CombinedAlgorithm` with θ = 0 returns an
//!   oracle-valid exact top-k for every interleave depth the E5 cost
//!   ratios produce: the c_R/c_S knob tunes cost, never correctness.

use proptest::prelude::*;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::approx::{ApproxNra, ApproxTa};
use fmdb_middleware::algorithms::ca::CombinedAlgorithm;
use fmdb_middleware::algorithms::nra::NraLowerBound;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::{TopKAlgorithm, TopKResult};
use fmdb_middleware::oracle::{all_grades, verify_top_k};
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::stats::CostModel;
use fmdb_middleware::workload::independent_uniform;

/// One randomly drawn approximate-vs-exact comparison.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    theta: f64,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            40usize..250,
            2usize..=4,
            prop_oneof![Just(1usize), Just(7usize), Just(25usize), Just(300usize)],
        ),
        (
            0u64..1_000_000,
            prop_oneof![Just(0.01f64), Just(0.1), Just(0.5)],
        ),
    )
        .prop_map(|((n, m, k), (seed, theta))| Scenario {
            n,
            m,
            k,
            seed,
            theta,
        })
}

fn run(algorithm: &dyn TopKAlgorithm, s: Scenario) -> TopKResult {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    algorithm
        .top_k(&mut refs, &Min, s.k)
        .expect("algorithm run must succeed")
}

/// The instance's true grades, descending.
fn truth_ranked(s: Scenario) -> Vec<(fmdb_middleware::source::Oid, fmdb_core::score::Score)> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let mut ranked: Vec<_> = all_grades(&mut refs, &Min).into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// θ = 0 approximations collapse to the exact algorithms bit for
    /// bit — answers and charged access counts alike.
    #[test]
    fn zero_theta_is_bit_identical(s in scenario()) {
        let exact_ta = run(&ThresholdAlgorithm, s);
        let approx_ta = run(&ApproxTa::new(0.0), s);
        prop_assert_eq!(&exact_ta.answers, &approx_ta.answers);
        prop_assert_eq!(exact_ta.stats, approx_ta.stats);

        let exact_nra = run(&NraLowerBound, s);
        let approx_nra = run(&ApproxNra::new(0.0), s);
        prop_assert_eq!(&exact_nra.answers, &approx_nra.answers);
        prop_assert_eq!(exact_nra.stats, approx_nra.stats);
    }

    /// θ > 0 returns a θ-approximate top-k: every returned object's
    /// true grade is within the (1+θ) slack of the true k-th grade, and
    /// the answer count is unchanged.
    #[test]
    fn positive_theta_keeps_the_grade_guarantee(s in scenario()) {
        let ranked = truth_ranked(s);
        let expected = s.k.min(ranked.len());
        let kth = ranked[expected.saturating_sub(1)].1;

        for (name, result, reported_exact) in [
            ("approx-ta", run(&ApproxTa::new(s.theta), s), true),
            ("approx-nra", run(&ApproxNra::new(s.theta), s), false),
        ] {
            prop_assert_eq!(result.answers.len(), expected, "{} answer count", name);
            for answer in &result.answers {
                let true_grade = ranked
                    .iter()
                    .find(|(oid, _)| *oid == answer.id)
                    .map(|(_, g)| *g)
                    .expect("answer must exist in the universe");
                prop_assert!(
                    true_grade.value() * (1.0 + s.theta) >= kth.value() - 1e-12,
                    "{}: object {} true grade {} breaks the (1+θ) bound vs y_k {}",
                    name, answer.id, true_grade, kth
                );
                if reported_exact {
                    prop_assert_eq!(answer.grade, true_grade);
                } else {
                    prop_assert!(answer.grade <= true_grade, "NRA reports lower bounds");
                }
            }
        }
    }

    /// CA is exact at θ = 0 for every interleave depth the E5 cost
    /// ratios induce, and never beats TA's sorted-access volume by
    /// returning a wrong set.
    #[test]
    fn ca_is_exact_for_every_cost_ratio(s in scenario()) {
        for ratio in [0.1, 1.0, 10.0, 100.0] {
            let model = CostModel::random_to_sorted_ratio(ratio)
                .expect("test ratio is positive and finite");
            let ca = CombinedAlgorithm::for_cost(&model, 0.0);
            let result = run(&ca, s);
            let mut sources = independent_uniform(s.n, s.m, s.seed);
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|src| src as &mut dyn GradedSource)
                .collect();
            prop_assert!(
                verify_top_k(&mut refs, &Min, &result.answers, s.k).is_ok(),
                "CA (h = {}) returned an invalid top-k at ratio {}",
                ca.interleave(),
                ratio
            );
        }
    }

    /// CA with slack keeps the same θ-guarantee as the approximations.
    #[test]
    fn ca_with_slack_keeps_the_grade_guarantee(s in scenario()) {
        let ranked = truth_ranked(s);
        let expected = s.k.min(ranked.len());
        let kth = ranked[expected.saturating_sub(1)].1;
        let result = run(&CombinedAlgorithm::new(4, s.theta), s);
        prop_assert_eq!(result.answers.len(), expected);
        for answer in &result.answers {
            let true_grade = ranked
                .iter()
                .find(|(oid, _)| *oid == answer.id)
                .map(|(_, g)| *g)
                .expect("answer must exist in the universe");
            prop_assert!(
                true_grade.value() * (1.0 + s.theta) >= kth.value() - 1e-12,
                "CA object {} true grade {} breaks the (1+θ) bound vs y_k {}",
                answer.id, true_grade, kth
            );
        }
    }
}
