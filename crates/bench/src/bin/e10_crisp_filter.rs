//! Standalone runner for experiment `e10_crisp_filter`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e10_crisp_filter::run(&cfg).print();
}
