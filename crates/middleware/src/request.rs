//! The unified top-k request: one description of a query that every
//! algorithm — and the batched parallel [`crate::engine::Engine`] —
//! accepts.
//!
//! Historically each evaluation strategy had its own ad-hoc signature
//! (`FaginsAlgorithm::top_k`, `Nra::top_k`, `CgFilter::run`, …), so
//! neither the Garlic planner nor a service layer could drive them
//! uniformly. [`TopKRequest`] packages the four ingredients — graded
//! sources, a scoring function, `k`, and optional Fagin–Wimmers
//! weights — behind a builder, and the
//! [`Algorithm`](crate::algorithms::Algorithm) trait runs any strategy
//! against it.
//!
//! Sources are held as [`SharedSource`] (`Arc<Mutex<…>>`) so one
//! request can be executed by worker threads that each drive a
//! different source; scalar algorithms simply lock all sources up
//! front and run exactly as before.

use std::sync::{Arc, Mutex, PoisonError};

use fmdb_core::request::{SpecError, TopKSpec};
use fmdb_core::scoring::ScoringFunction;
use fmdb_core::weights::{Weighted, Weighting};

use crate::algorithms::AlgoError;
use crate::source::GradedSource;

/// A shareable, lockable handle to one graded source.
pub type SharedSource = Arc<Mutex<dyn GradedSource + Send>>;

/// A shareable scoring function.
pub type SharedScoring = Arc<dyn ScoringFunction + Send + Sync>;

/// Wraps a concrete source into a [`SharedSource`] handle.
pub fn shared_source(source: impl GradedSource + Send + 'static) -> SharedSource {
    Arc::new(Mutex::new(source))
}

/// One fully-specified top-k query: `m` graded sources, the scoring
/// function combining their grades, how many answers, and optional
/// subquery weights.
///
/// Build with [`TopKRequest::builder`]. When weights are present the
/// scoring function exposed by [`TopKRequest::scoring`] is already the
/// Fagin–Wimmers weighted combination (§5), so algorithms need no
/// weight-awareness of their own.
#[derive(Clone)]
pub struct TopKRequest {
    sources: Vec<SharedSource>,
    scoring: SharedScoring,
    spec: TopKSpec,
}

impl std::fmt::Debug for TopKRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKRequest")
            .field("sources", &self.sources.len())
            .field("scoring", &self.scoring.name())
            .field("k", &self.k())
            .field("weights", &self.weights().map(Weighting::weights))
            .finish()
    }
}

impl TopKRequest {
    /// Starts building a request.
    pub fn builder() -> TopKRequestBuilder {
        TopKRequestBuilder::default()
    }

    /// The source handles, in conjunct order.
    pub fn sources(&self) -> &[SharedSource] {
        &self.sources
    }

    /// The number of conjuncts `m`.
    pub fn arity(&self) -> usize {
        self.sources.len()
    }

    /// How many answers are requested.
    pub fn k(&self) -> usize {
        self.spec.k()
    }

    /// The normalized subquery weights, if the request is weighted.
    pub fn weights(&self) -> Option<&Weighting> {
        self.spec.weights().filter(|w| !w.is_uniform())
    }

    /// The effective scoring function: the one supplied to the
    /// builder, wrapped in the Fagin–Wimmers weighting when weights
    /// were given.
    pub fn scoring(&self) -> SharedScoring {
        Arc::clone(&self.scoring)
    }

    /// Locks every source and hands the scalar view `&mut [&mut dyn
    /// GradedSource]` to `f` — the bridge from the shared, thread-safe
    /// representation to the paper's sequential access model.
    pub fn with_sources<R>(&self, f: impl FnOnce(&mut [&mut dyn GradedSource]) -> R) -> R {
        let mut guards: Vec<_> = self
            .sources
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let mut refs: Vec<&mut dyn GradedSource> = guards
            .iter_mut()
            .map(|g| &mut **g as &mut dyn GradedSource)
            .collect();
        f(&mut refs)
    }
}

/// Builder for [`TopKRequest`]; see [`TopKRequest::builder`].
#[derive(Default)]
pub struct TopKRequestBuilder {
    sources: Vec<SharedSource>,
    scoring: Option<SharedScoring>,
    k: usize,
    weights: Option<Vec<f64>>,
}

// The shared sources/scoring are `dyn` trait objects without a `Debug`
// bound; a shape summary satisfies `missing_debug_implementations`.
impl std::fmt::Debug for TopKRequestBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopKRequestBuilder")
            .field("sources", &self.sources.len())
            .field("has_scoring", &self.scoring.is_some())
            .field("k", &self.k)
            .field("weights", &self.weights)
            .finish()
    }
}

impl TopKRequestBuilder {
    /// Appends one owned source as the next conjunct.
    pub fn source(mut self, source: impl GradedSource + Send + 'static) -> Self {
        self.sources.push(shared_source(source));
        self
    }

    /// Appends an already-shared source handle (e.g. one also held by
    /// another concurrent request).
    pub fn shared_source(mut self, source: SharedSource) -> Self {
        self.sources.push(source);
        self
    }

    /// Appends every source of an iterator.
    pub fn sources<S: GradedSource + Send + 'static>(
        mut self,
        sources: impl IntoIterator<Item = S>,
    ) -> Self {
        self.sources.extend(
            sources
                .into_iter()
                .map(|s| shared_source(s) as SharedSource),
        );
        self
    }

    /// Sets the scoring function combining conjunct grades.
    pub fn scoring(mut self, scoring: impl ScoringFunction + Send + Sync + 'static) -> Self {
        self.scoring = Some(Arc::new(scoring));
        self
    }

    /// Sets an already-shared scoring function.
    pub fn shared_scoring(mut self, scoring: SharedScoring) -> Self {
        self.scoring = Some(scoring);
        self
    }

    /// Sets how many answers to return.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Weights the conjuncts' importance (arbitrary nonnegative
    /// ratios; normalized at build time). One weight per source.
    pub fn weights(mut self, ratios: &[f64]) -> Self {
        self.weights = Some(ratios.to_vec());
        self
    }

    /// Validates and assembles the request.
    pub fn build(self) -> Result<TopKRequest, AlgoError> {
        if self.sources.is_empty() {
            return Err(AlgoError::NoSources);
        }
        let spec = match &self.weights {
            None => TopKSpec::new(self.k),
            Some(ratios) => TopKSpec::weighted(self.k, ratios),
        }
        .map_err(|e| match e {
            SpecError::ZeroK => AlgoError::ZeroK,
            SpecError::Weights(w) => AlgoError::InvalidRequest(format!("invalid weights: {w}")),
        })?;
        if !spec.fits_arity(self.sources.len()) {
            return Err(AlgoError::InvalidRequest(format!(
                "{} weights for {} sources",
                spec.weights().map_or(0, Weighting::arity),
                self.sources.len()
            )));
        }
        let base = self
            .scoring
            .ok_or_else(|| AlgoError::InvalidRequest("no scoring function supplied".to_owned()))?;
        let scoring = match spec.weights() {
            // Uniform weights are the unweighted rule (property D1) —
            // skip the wrapper so counts and grades match the plain
            // scoring exactly.
            Some(w) if !w.is_uniform() => Arc::new(Weighted::new(base, w.clone())) as SharedScoring,
            _ => base,
        };
        Ok(TopKRequest {
            sources: self.sources,
            scoring,
            spec,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use fmdb_core::score::Score;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn src(grades: &[f64]) -> VecSource {
        let scores: Vec<Score> = grades.iter().map(|&g| s(g)).collect();
        VecSource::from_dense("t", &scores)
    }

    #[test]
    fn builder_assembles_a_request() {
        let req = TopKRequest::builder()
            .source(src(&[0.1, 0.9]))
            .source(src(&[0.8, 0.2]))
            .scoring(Min)
            .k(2)
            .build()
            .unwrap();
        assert_eq!(req.arity(), 2);
        assert_eq!(req.k(), 2);
        assert!(req.weights().is_none());
        assert_eq!(req.scoring().name(), "min");
    }

    #[test]
    fn builder_rejects_bad_requests() {
        assert!(matches!(
            TopKRequest::builder().scoring(Min).k(1).build(),
            Err(AlgoError::NoSources)
        ));
        assert!(matches!(
            TopKRequest::builder()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(0)
                .build(),
            Err(AlgoError::ZeroK)
        ));
        assert!(matches!(
            TopKRequest::builder().source(src(&[0.5])).k(1).build(),
            Err(AlgoError::InvalidRequest(_))
        ));
        assert!(matches!(
            TopKRequest::builder()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(1)
                .weights(&[0.5, 0.5])
                .build(),
            Err(AlgoError::InvalidRequest(_))
        ));
        assert!(matches!(
            TopKRequest::builder()
                .source(src(&[0.5]))
                .scoring(Min)
                .k(1)
                .weights(&[-1.0])
                .build(),
            Err(AlgoError::InvalidRequest(_))
        ));
    }

    #[test]
    fn weighted_requests_wrap_the_scoring() {
        let req = TopKRequest::builder()
            .source(src(&[0.2, 0.9]))
            .source(src(&[0.9, 0.3]))
            .scoring(Min)
            .k(1)
            .weights(&[2.0, 1.0])
            .build()
            .unwrap();
        assert!(req.weights().is_some());
        // Weighted-min of (1.0, 0.0) under θ=(2/3, 1/3): the formula
        // gives θ₁−θ₂ + 2θ₂·min = 1/3 ≠ plain min = 0.
        let g = req.scoring().combine(&[s(1.0), s(0.0)]);
        assert!(g.approx_eq(s(1.0 / 3.0), 1e-9), "{g}");
    }

    #[test]
    fn uniform_weights_degrade_to_plain_scoring() {
        let req = TopKRequest::builder()
            .source(src(&[0.2]))
            .source(src(&[0.9]))
            .scoring(Min)
            .k(1)
            .weights(&[1.0, 1.0])
            .build()
            .unwrap();
        // D1: uniform weighting IS the unweighted rule; the request
        // reports itself unweighted and uses the plain function.
        assert!(req.weights().is_none());
        assert_eq!(req.scoring().name(), "min");
    }

    #[test]
    fn with_sources_grants_scalar_access() {
        let req = TopKRequest::builder()
            .source(src(&[0.1, 0.9]))
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        let first = req.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(first.id, 1);
        // The cursor advanced inside the shared handle.
        let second = req.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(second.id, 0);
    }

    #[test]
    fn shared_sources_can_serve_two_requests() {
        let handle = shared_source(src(&[0.4, 0.6]));
        let a = TopKRequest::builder()
            .shared_source(Arc::clone(&handle))
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        let b = TopKRequest::builder()
            .shared_source(handle)
            .scoring(Min)
            .k(1)
            .build()
            .unwrap();
        a.with_sources(|refs| {
            let _ = refs[0].sorted_next();
        });
        // b sees the same underlying cursor — it is the same source.
        let next = b.with_sources(|refs| refs[0].sorted_next().unwrap());
        assert_eq!(next.id, 0);
    }
}
