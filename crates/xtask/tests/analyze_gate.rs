//! End-to-end test of the `fmdb-analyze` gate: builds a throwaway
//! mini-workspace on disk, runs the real `xtask` binary against it
//! with `--root`, and checks exit status plus diagnostics for every
//! concurrency/invariant rule — seeded violations must fail, the
//! justified twin must pass. Also covers the `suppressions` audit
//! (live vs stale markers) and the shared exit-code contract
//! (0 clean / 1 violations / 2 usage error) across subcommands.
//!
//! The final test points `analyze --root` at the real repository:
//! every workspace `.rs` file must parse with zero `parse-error`
//! diagnostics and the gate must be green, which is the bar CI holds.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A unique temp directory per test, cleaned up on drop.
struct TempCrate {
    root: PathBuf,
}

impl TempCrate {
    fn new(tag: &str) -> TempCrate {
        let root = std::env::temp_dir().join(format!("fmdb-analyze-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("create temp workspace");
        TempCrate { root }
    }

    fn write(&self, rel: &str, contents: &str) {
        let path = self.root.join(rel);
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).expect("create parent dirs");
        }
        fs::write(path, contents).expect("write fixture file");
    }
}

impl Drop for TempCrate {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

fn run_xtask(sub: &str, root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_xtask"));
    cmd.arg(sub).arg("--root").arg(root);
    cmd.args(extra);
    cmd.output().expect("run xtask")
}

fn stdout_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_workspace_exits_zero() {
    let tc = TempCrate::new("clean");
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn double(x: u32) -> u32 { x.saturating_mul(2) }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    let stdout = stdout_of(&out);
    assert!(out.status.success(), "expected clean exit, got:\n{stdout}");
    assert!(stdout.contains("clean"), "{stdout}");
}

#[test]
fn seeded_atomic_ordering_fails_and_justified_passes() {
    let tc = TempCrate::new("atomic");
    let seeded = "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn peek(a: &AtomicU64) -> u64 {\n\
         \x20   a.load(Ordering::SeqCst)\n\
         }\n";
    tc.write("crates/demo/src/lib.rs", seeded);
    let out = run_xtask("analyze", &tc.root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("atomic-ordering"),
        "{}",
        stdout_of(&out)
    );

    tc.write(
        "crates/demo/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn peek(a: &AtomicU64) -> u64 {\n\
         \x20   // ordering(SeqCst): fixture — the test wants the strongest fence\n\
         \x20   a.load(Ordering::SeqCst)\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn relaxed_telemetry_counter_idiom_is_whitelisted() {
    let tc = TempCrate::new("idiom");
    // fetch_add(1, Relaxed) on a counter, plus a Relaxed load of the
    // same counter: both sides of whitelist idiom 1 + 2, no comments.
    tc.write(
        "crates/demo/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn bump(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n\
         pub fn read(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn seeded_lock_cycle_fails_and_consistent_order_passes() {
    let tc = TempCrate::new("lock");
    tc.write(
        "crates/demo/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
         \x20   let _ga = a.lock();\n\
         \x20   let _gb = b.lock();\n\
         }\n\
         pub fn backward(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
         \x20   let _gb = b.lock();\n\
         \x20   let _ga = a.lock();\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("\"rule\": \"lock-order\""),
        "{}",
        stdout_of(&out)
    );

    tc.write(
        "crates/demo/src/lib.rs",
        "use std::sync::Mutex;\n\
         pub fn forward(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
         \x20   let _ga = a.lock();\n\
         \x20   let _gb = b.lock();\n\
         }\n\
         pub fn also_forward(a: &Mutex<u32>, b: &Mutex<u32>) {\n\
         \x20   let _ga = a.lock();\n\
         \x20   let _gb = b.lock();\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn seeded_detached_thread_fails_and_justified_passes() {
    let tc = TempCrate::new("spawn");
    let seeded = "pub fn fire_and_forget() {\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n";
    tc.write("crates/demo/src/lib.rs", seeded);
    let out = run_xtask("analyze", &tc.root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("detached-thread"),
        "{}",
        stdout_of(&out)
    );

    // Joined spawn: no finding at all.
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn joined() {\n\
         \x20   let h = std::thread::spawn(|| {});\n\
         \x20   let _ = h.join();\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));

    // Detached but justified: suppressed.
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn fire_and_forget() {\n\
         \x20   // lint:allow(detached-thread): fixture — worker lifetime is process lifetime\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn seeded_ignored_result_fails_and_justified_passes() {
    let tc = TempCrate::new("ignored");
    let seeded = "pub fn save() -> Result<(), String> { Ok(()) }\n\
         pub fn caller() {\n\
         \x20   let _ = save();\n\
         }\n";
    tc.write("crates/demo/src/lib.rs", seeded);
    let out = run_xtask("analyze", &tc.root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("ignored-result"),
        "{}",
        stdout_of(&out)
    );

    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn save() -> Result<(), String> { Ok(()) }\n\
         pub fn caller() {\n\
         \x20   // lint:allow(ignored-result): fixture — failure here is advisory\n\
         \x20   let _ = save();\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn seeded_unchecked_arith_fails_and_justified_passes() {
    let tc = TempCrate::new("arith");
    // The rule only watches hot-kernel paths — this fixture file path
    // contains `media/src/embed`, so it is in scope.
    let seeded = "pub fn offset(i: usize, k: usize) -> usize { i * k }\n";
    tc.write("crates/media/src/embed/kernel.rs", seeded);
    tc.write("crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let out = run_xtask("analyze", &tc.root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("unchecked-arith"),
        "{}",
        stdout_of(&out)
    );

    tc.write(
        "crates/media/src/embed/kernel.rs",
        "// lint:allow(unchecked-arith): fixture — i < n and n*k == len by construction\n\
         pub fn offset(i: usize, k: usize) -> usize { i * k }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));

    // The same expression outside a kernel path is not flagged.
    let tc2 = TempCrate::new("arith-out");
    tc2.write("crates/demo/src/lib.rs", seeded);
    let out = run_xtask("analyze", &tc2.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn multi_line_justifications_cover_the_next_statement() {
    let tc = TempCrate::new("multiline");
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn fire_and_forget() {\n\
         \x20   // lint:allow(detached-thread): fixture — a justification that\n\
         \x20   // needs several comment lines to state its whole argument\n\
         \x20   // before the code it covers finally appears.\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn parse_errors_fail_the_gate_and_cannot_be_suppressed() {
    let tc = TempCrate::new("parse");
    tc.write(
        "crates/demo/src/lib.rs",
        "// lint:allow-file(detached-thread): fixture — markers cannot hide parse errors\n\
         pub fn broken( {\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout_of(&out));
    assert!(
        stdout_of(&out).contains("parse-error"),
        "{}",
        stdout_of(&out)
    );
}

#[test]
fn test_code_is_exempt_from_analyze_rules() {
    let tc = TempCrate::new("testcode");
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn ok() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn spawns() { std::thread::spawn(|| {}); }\n\
         }\n",
    );
    tc.write(
        "crates/demo/tests/it.rs",
        "fn helper() { std::thread::spawn(|| {}); }\n",
    );
    let out = run_xtask("analyze", &tc.root, &[]);
    assert!(out.status.success(), "{}", stdout_of(&out));
}

#[test]
fn json_output_is_machine_readable() {
    let tc = TempCrate::new("json");
    tc.write(
        "crates/demo/src/lib.rs",
        "pub fn fire_and_forget() {\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n",
    );
    let out = run_xtask("analyze", &tc.root, &["--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = stdout_of(&out);
    let trimmed = json.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "{json}");
    assert!(json.contains("\"rule\": \"detached-thread\""), "{json}");
    assert!(json.contains("\"line\": 2"), "{json}");
}

#[test]
fn suppressions_lists_live_markers_and_exits_zero() {
    let tc = TempCrate::new("supp-live");
    tc.write(
        "crates/demo/src/lib.rs",
        "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn peek(a: &AtomicU64) -> u64 {\n\
         \x20   // ordering(SeqCst): fixture — strongest fence wanted here\n\
         \x20   a.load(Ordering::SeqCst)\n\
         }\n\
         pub fn fire_and_forget() {\n\
         \x20   // lint:allow(detached-thread): fixture — bounded by the test harness\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n",
    );
    let out = run_xtask("suppressions", &tc.root, &[]);
    let stdout = stdout_of(&out);
    assert!(out.status.success(), "{stdout}");
    assert!(stdout.contains("ordering(SeqCst)"), "{stdout}");
    assert!(stdout.contains("lint:allow(detached-thread)"), "{stdout}");
    assert!(stdout.contains("0 stale"), "{stdout}");
}

#[test]
fn stale_suppressions_fail_the_audit() {
    let tc = TempCrate::new("supp-stale");
    // The marker names a real rule but covers code that triggers
    // nothing — removing it would change no gate, so it is stale.
    tc.write(
        "crates/demo/src/lib.rs",
        "// lint:allow(detached-thread): fixture — nothing here spawns at all\n\
         pub fn quiet() {}\n",
    );
    let out = run_xtask("suppressions", &tc.root, &[]);
    let stdout = stdout_of(&out);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(stdout.contains("STALE"), "{stdout}");

    let out = run_xtask("suppressions", &tc.root, &["--format", "json"]);
    let json = stdout_of(&out);
    assert_eq!(out.status.code(), Some(1), "{json}");
    assert!(json.contains("\"stale\": true"), "{json}");
}

#[test]
fn usage_errors_exit_two_across_subcommands() {
    for sub in ["analyze", "suppressions"] {
        let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
            .args([sub, "--format", "yaml"])
            .output()
            .expect("run xtask");
        assert_eq!(out.status.code(), Some(2), "{sub} must reject bad formats");
    }
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["check-bench", "/nonexistent/bench.json"])
        .output()
        .expect("run xtask");
    assert_eq!(
        out.status.code(),
        Some(2),
        "missing artifact is an I/O error"
    );
}

#[test]
fn real_workspace_parses_clean_and_passes_the_gate() {
    // CARGO_MANIFEST_DIR is crates/xtask — the repo root is two up.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root");
    let out = run_xtask("analyze", &repo_root, &["--format", "json"]);
    let json = stdout_of(&out);
    assert!(
        !json.contains("\"rule\": \"parse-error\""),
        "workspace file failed to parse:\n{json}"
    );
    assert!(
        out.status.success(),
        "analyze must be green on the real workspace:\n{json}"
    );
}
