//! Standalone runner for experiment `e14_axiom_table`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e14_axiom_table::run(&cfg).print();
}
