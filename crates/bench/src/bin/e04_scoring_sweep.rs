//! Standalone runner for experiment `e04_scoring_sweep`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e04_scoring_sweep::run(&cfg).print();
}
