//! The experiment suite: one module per paper claim (see DESIGN.md's
//! experiment index and EXPERIMENTS.md for recorded results).

pub mod e01_fa_scaling;
pub mod e02_disjunction;
pub mod e03_lower_bound;
pub mod e04_scoring_sweep;
pub mod e05_access_costs;
pub mod e06_weighted_queries;
pub mod e07_distance_bounding;
pub mod e08_dimensionality;
pub mod e09_precomputed;
pub mod e10_crisp_filter;
pub mod e11_correlation;
pub mod e12_filter_conditions;
pub mod e13_ta_extension;
pub mod e14_axiom_table;
pub mod e15_weighting_laws;
pub mod e16_optimizer;
pub mod e17_ablations;
pub mod e18_page_costs;
pub mod e19_no_random_access;
pub mod e20_embedding;

use crate::report::Report;
use crate::runners::RunCfg;

/// Runs every experiment in order (the `e00_run_all` binary).
pub fn run_all(cfg: &RunCfg) -> Vec<Report> {
    vec![
        e01_fa_scaling::run(cfg),
        e02_disjunction::run(cfg),
        e03_lower_bound::run(cfg),
        e04_scoring_sweep::run(cfg),
        e05_access_costs::run(cfg),
        e06_weighted_queries::run(cfg),
        e07_distance_bounding::run(cfg),
        e08_dimensionality::run(cfg),
        e09_precomputed::run(cfg),
        e10_crisp_filter::run(cfg),
        e11_correlation::run(cfg),
        e12_filter_conditions::run(cfg),
        e13_ta_extension::run(cfg),
        e14_axiom_table::run(cfg),
        e15_weighting_laws::run(cfg),
        e16_optimizer::run(cfg),
        e17_ablations::run(cfg),
        e18_page_costs::run(cfg),
        e19_no_random_access::run(cfg),
        e20_embedding::run(cfg),
    ]
}
