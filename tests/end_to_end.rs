//! End-to-end integration: SQL text → parser → planner → executor →
//! answers, across every plan kind, checked against the full-scan
//! reference semantics.

use fuzzymm::garlic::demo::{ad_database, cd_store};
use fuzzymm::garlic::executor::{AlgoChoice, Garlic};
use fuzzymm::garlic::planner::PlanKind;
use fuzzymm::garlic::sql::parse;
use fuzzymm::prelude::*;

/// Runs a SQL query both through the planner and through the forced
/// naive reference, asserting the grade sequences agree.
fn check_against_reference(garlic: &Garlic, sql: &str) -> (PlanKind, AccessStats) {
    let stmt = parse(sql).unwrap_or_else(|e| panic!("parse '{sql}': {e}"));
    let fast = garlic
        .top_k(&stmt.query, stmt.k)
        .unwrap_or_else(|e| panic!("execute '{sql}': {e}"));
    // FullScan *is* the reference; compare plans only when there is a
    // faster path.
    if fast.plan != PlanKind::FullScan {
        let slow = garlic
            .top_k_with(&stmt.query, stmt.k, AlgoChoice::Naive)
            .unwrap_or_else(|e| panic!("naive '{sql}': {e}"));
        let fast_grades: Vec<Score> = fast.answers.iter().map(|a| a.grade).collect();
        let slow_grades: Vec<Score> = slow.answers.iter().map(|a| a.grade).collect();
        for (f, s) in fast_grades.iter().zip(&slow_grades) {
            assert!(
                f.approx_eq(*s, 1e-9),
                "'{sql}': plan {} grade {f} != reference {s}",
                fast.plan
            );
        }
        assert_eq!(fast_grades.len(), slow_grades.len(), "'{sql}'");
    }
    (fast.plan, fast.stats)
}

#[test]
fn all_plan_kinds_agree_with_reference_semantics() {
    let garlic = cd_store(200, 77);
    let cases: Vec<(&str, PlanKind)> = vec![
        (
            "SELECT TOP 10 WHERE Artist='Beatles' AND Color~'red'",
            PlanKind::CrispFilter,
        ),
        // The cost-based planner prices TA's shallower stopping depth
        // below A₀'s for these fuzzy conjunctions (DESIGN.md §11).
        (
            "SELECT TOP 10 WHERE Color~'red' AND Shape~'round'",
            PlanKind::Ta,
        ),
        (
            "SELECT TOP 10 WHERE Color~'red' AND Shape~'round' AND Color~'yellow'",
            PlanKind::Ta,
        ),
        (
            "SELECT TOP 10 WHERE Color~'red' OR Color~'blue'",
            PlanKind::MaxMerge,
        ),
        ("SELECT TOP 10 WHERE Color~'red'", PlanKind::MaxMerge),
        (
            "SELECT TOP 10 WHERE Color~'red' AND Shape~'round' WEIGHTS 3, 1",
            PlanKind::Ta,
        ),
        ("SELECT TOP 10 WHERE NOT Color~'red'", PlanKind::FullScan),
        (
            "SELECT TOP 10 WHERE Color~'red' AND (Shape~'round' OR Shape~'boxy')",
            PlanKind::FullScan,
        ),
    ];
    for (sql, expected_plan) in cases {
        let (plan, _) = check_against_reference(&garlic, sql);
        assert_eq!(plan, expected_plan, "'{sql}'");
    }
}

#[test]
fn plans_cost_less_than_the_reference() {
    let garlic = cd_store(400, 3);
    for sql in [
        "SELECT TOP 5 WHERE Artist='Beatles' AND Color~'red'",
        "SELECT TOP 5 WHERE Color~'red' OR Color~'blue'",
    ] {
        let stmt = parse(sql).expect("well-formed");
        let fast = garlic.top_k(&stmt.query, stmt.k).expect("runs");
        let slow = garlic
            .top_k_with(&stmt.query, stmt.k, AlgoChoice::Naive)
            .expect("runs");
        assert!(
            fast.stats.database_access_cost() < slow.stats.database_access_cost() / 2,
            "'{sql}': {} vs naive {}",
            fast.stats,
            slow.stats
        );
    }
}

#[test]
fn algorithm_overrides_return_the_same_grades() {
    let garlic = cd_store(150, 9);
    let stmt = parse("SELECT TOP 8 WHERE Color~'red' AND Shape~'spiky'").expect("well-formed");
    let reference = garlic
        .top_k_with(&stmt.query, stmt.k, AlgoChoice::Naive)
        .expect("runs");
    for choice in [
        AlgoChoice::Auto,
        AlgoChoice::Fa,
        AlgoChoice::PrunedFa,
        AlgoChoice::Ta,
    ] {
        let r = garlic
            .top_k_with(&stmt.query, stmt.k, choice)
            .expect("runs");
        let got: Vec<Score> = r.answers.iter().map(|a| a.grade).collect();
        let want: Vec<Score> = reference.answers.iter().map(|a| a.grade).collect();
        for (g, w) in got.iter().zip(&want) {
            assert!(g.approx_eq(*w, 1e-9), "{choice:?}");
        }
    }
}

#[test]
fn year_and_artist_double_crisp_filter() {
    let garlic = cd_store(100, 11);
    // Two crisp conjuncts + one fuzzy: survivors must satisfy both.
    let stmt = parse("SELECT TOP 5 WHERE Artist='Beatles' AND Year=1960 AND Color~'red'")
        .expect("well-formed");
    let r = garlic.top_k(&stmt.query, stmt.k).expect("runs");
    assert_eq!(r.plan, PlanKind::CrispFilter);
    for a in &r.answers {
        if a.grade > Score::ZERO {
            // Artist rotates mod 5, year rotates mod 10; both hit at
            // multiples of 10.
            assert_eq!(a.id % 10, 0, "object {}", a.id);
        }
    }
}

#[test]
fn purely_crisp_conjunctions_work_through_the_crisp_filter() {
    // No fuzzy conjunct at all: the filter plan degenerates to a
    // relational conjunctive query; matches grade 1, the rest 0.
    let garlic = cd_store(100, 53);
    let stmt = parse("SELECT TOP 4 WHERE Artist='Beatles' AND Year=1960").expect("ok");
    let fast = garlic.top_k(&stmt.query, stmt.k).expect("runs");
    assert_eq!(fast.plan, PlanKind::CrispFilter);
    let slow = garlic
        .top_k_with(&stmt.query, stmt.k, AlgoChoice::Naive)
        .expect("runs");
    let fg: Vec<Score> = fast.answers.iter().map(|a| a.grade).collect();
    let sg: Vec<Score> = slow.answers.iter().map(|a| a.grade).collect();
    assert_eq!(fg, sg);
    // Album ids divisible by lcm(5 artists, 10 years) = 10 match both.
    for a in &fast.answers {
        if a.grade == Score::ONE {
            assert_eq!(a.id % 10, 0);
        }
    }
}

#[test]
fn complex_object_query_lifts_to_advertisements() {
    let (garlic, ads, index) = ad_database(60, 15, 5);
    let stmt = parse("SELECT TOP 10 WHERE Color~'blue'").expect("well-formed");
    let photos = garlic.top_k(&stmt.query, stmt.k).expect("runs");
    let lifted = Garlic::lift_to_parents(&photos, &index, "AdPhoto", 5);
    assert!(!lifted.is_empty());
    let ad_ids: Vec<u64> = ads.iter().map(|a| a.id).collect();
    for p in &lifted {
        assert!(ad_ids.contains(&p.id));
    }
    // A parent's grade equals the max of its photos' grades among the
    // returned photo set.
    for parent in &lifted {
        let ad = ads.iter().find(|a| a.id == parent.id).expect("is an ad");
        let expected = photos
            .answers
            .iter()
            .filter(|p| ad.subs("AdPhoto").contains(&p.id))
            .map(|p| p.grade)
            .max()
            .expect("lifted parents have at least one returned photo");
        assert_eq!(parent.grade, expected);
    }
}

#[test]
fn query_by_example_via_sql() {
    // §2: "selecting an image I … and asking for other images whose
    // colors are 'close to' that of image I."
    let garlic = cd_store(80, 17);
    let stmt = parse("SELECT TOP 3 WHERE Color~'#12'").expect("well-formed");
    let r = garlic.top_k(&stmt.query, stmt.k).expect("runs");
    assert_eq!(r.answers[0].id, 12, "the example matches itself best");
    assert_eq!(r.answers[0].grade, Score::ONE);
}

#[test]
fn qbic_sources_honor_the_access_contract() {
    // Wrap every source the catalog produces in a ValidatingSource and
    // drain it with interleaved random accesses: the sorted stream must
    // be non-increasing, duplicate-free, and consistent with random
    // access (§4's contract, on which A₀'s correctness proof leans).
    use fuzzymm::core::query::{AtomicQuery, Target};
    use fuzzymm::middleware::source::ValidatingSource;
    let garlic = cd_store(60, 23);
    let atoms = [
        AtomicQuery::new("Artist", Target::Text("Beatles".into())),
        AtomicQuery::new("Color", Target::Similar("red".into())),
        AtomicQuery::new("Shape", Target::Similar("round".into())),
        AtomicQuery::new("Texture", Target::Similar("coarse".into())),
        AtomicQuery::new("Color", Target::Similar("#3".into())),
    ];
    for atom in &atoms {
        let source = garlic.catalog().source_for(atom).expect("source builds");
        let mut validated = ValidatingSource::new(source);
        let mut ids = Vec::new();
        while let Some(so) = validated.sorted_next() {
            ids.push(so.id);
        }
        for id in ids {
            let _ = validated.random_access(id);
        }
        assert!(
            validated.is_clean(),
            "{atom:?} violated the contract: {:?}",
            validated.violations()
        );
    }
}

#[test]
fn using_clause_changes_the_ranking_rule_end_to_end() {
    let garlic = cd_store(120, 31);
    let min_q = parse("SELECT TOP 5 WHERE Color~'red' AND Shape~'round'").expect("ok");
    let prod_q =
        parse("SELECT TOP 5 WHERE Color~'red' AND Shape~'round' USING product").expect("ok");
    let r_min = garlic.top_k(&min_q.query, 5).expect("runs");
    let r_prod = garlic.top_k(&prod_q.query, 5).expect("runs");
    // Product grades are bounded by min grades pointwise on the same
    // object set; top grades must differ unless degenerate.
    assert!(r_prod.answers[0].grade <= r_min.answers[0].grade);
    // And both agree with their own naive reference.
    let n_prod = garlic
        .top_k_with(&prod_q.query, 5, AlgoChoice::Naive)
        .expect("runs");
    for (a, b) in r_prod.answers.iter().zip(&n_prod.answers) {
        assert!(a.grade.approx_eq(b.grade, 1e-9));
    }
}

#[test]
fn full_scan_handles_repeated_atoms_and_nested_weighted_nodes() {
    use fuzzymm::core::weights::Weighting;
    use std::sync::Arc;
    let garlic = cd_store(60, 41);
    // The same atom appears twice; idempotence of max makes
    // (red ∨ red) ≡ red, and the executor must not double-drain it.
    let red = || {
        fuzzymm::core::query::Query::atomic(
            "Color",
            fuzzymm::core::query::Target::Similar("red".into()),
        )
    };
    let round = || {
        fuzzymm::core::query::Query::atomic(
            "Shape",
            fuzzymm::core::query::Target::Similar("round".into()),
        )
    };
    let doubled =
        fuzzymm::core::query::Query::not(fuzzymm::core::query::Query::or(vec![red(), red()]));
    let single = fuzzymm::core::query::Query::not(red());
    let a = garlic.top_k(&doubled, 5).expect("runs");
    let b = garlic.top_k(&single, 5).expect("runs");
    for (x, y) in a.answers.iter().zip(&b.answers) {
        assert!(x.grade.approx_eq(y.grade, 1e-9));
    }
    // A weighted node *nested* under a disjunction forces the full
    // scan; grades must follow the reference semantics.
    let weighted = fuzzymm::core::query::Query::weighted(
        vec![red(), round()],
        Arc::new(fuzzymm::core::scoring::tnorms::Min),
        Weighting::from_ratios(&[2.0, 1.0]).expect("positive ratios"),
    )
    .expect("arity matches");
    let nested = fuzzymm::core::query::Query::or(vec![weighted, round()]);
    let r = garlic.top_k(&nested, 5).expect("runs");
    assert_eq!(r.plan, PlanKind::FullScan);
    assert_eq!(r.answers.len(), 5);
    for w in r.answers.windows(2) {
        assert!(w[0].grade >= w[1].grade);
    }
}

#[test]
fn optimizer_and_heuristic_agree_on_answers() {
    use fuzzymm::garlic::cost::CostEstimator;
    let garlic = cd_store(150, 47);
    let estimator = CostEstimator::default();
    for sql in [
        "SELECT TOP 6 WHERE Artist='Beatles' AND Color~'red'",
        "SELECT TOP 6 WHERE Color~'red' AND Shape~'round'",
        "SELECT TOP 6 WHERE Color~'red' OR Color~'blue'",
    ] {
        let stmt = parse(sql).expect("well-formed");
        let heuristic = garlic.top_k(&stmt.query, stmt.k).expect("runs");
        let optimized = garlic
            .top_k_optimized(&stmt.query, stmt.k, &estimator)
            .expect("runs");
        let hg: Vec<Score> = heuristic.answers.iter().map(|a| a.grade).collect();
        let og: Vec<Score> = optimized.answers.iter().map(|a| a.grade).collect();
        for (h, o) in hg.iter().zip(&og) {
            assert!(h.approx_eq(*o, 1e-9), "'{sql}'");
        }
    }
}

#[test]
fn explain_is_stable_and_informative() {
    let garlic = cd_store(50, 13);
    let stmt = parse("SELECT TOP 3 WHERE Artist='Beatles' AND Color~'red'").expect("well-formed");
    let text = garlic.explain(&stmt.query);
    assert!(text.contains("crisp-filter"), "{text}");
    // The decision record lists every priced candidate (DESIGN.md §11).
    assert!(text.contains("cost-based choice"), "{text}");
    assert!(text.contains("candidates:"), "{text}");
}
