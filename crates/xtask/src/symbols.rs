//! The workspace-wide symbol table: every parsed function definition,
//! keyed by name, so rules can link a call site to the definitions it
//! might resolve to.
//!
//! Name-level linking is deliberately conservative. The analyzer has
//! no type information, so a method call `x.run()` could resolve to
//! any workspace `fn run`; rules that act on a call therefore ask
//! questions quantified over **all** candidate definitions
//! ([`SymbolTable::all_return_result`]) or **any** of them
//! ([`SymbolTable::any_returns_guard`]), choosing the quantifier that
//! makes false positives impossible rather than false negatives:
//!
//! * `ignored-result` flags a discarded call only when *every*
//!   workspace definition with that name returns `Result` — a homonym
//!   that returns plain data would otherwise produce noise;
//! * `lock-order` treats a call as a guard acquisition when *any*
//!   definition with that name returns a guard type — missing an
//!   acquisition hides a deadlock, so the rule over-approximates.

use std::collections::HashMap;
use std::path::PathBuf;

use crate::parser::FileTree;

/// One function definition, as the symbol table records it.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Workspace-relative path of the defining file.
    pub path: PathBuf,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Enclosing `impl`/`trait` type, if any.
    pub impl_type: Option<String>,
    /// Declared return type mentions `Result`.
    pub returns_result: bool,
    /// Declared return type is a `MutexGuard`/`RwLock*Guard`.
    pub returns_guard: bool,
}

/// Workspace-wide `fn name → definitions` map.
#[derive(Debug, Default)]
pub struct SymbolTable {
    defs: HashMap<String, Vec<FnDef>>,
}

impl SymbolTable {
    /// Builds the table from every parsed file.
    pub fn build<'a>(trees: impl IntoIterator<Item = (&'a PathBuf, &'a FileTree)>) -> SymbolTable {
        let mut defs: HashMap<String, Vec<FnDef>> = HashMap::new();
        for (path, tree) in trees {
            for f in &tree.fns {
                defs.entry(f.name.clone()).or_default().push(FnDef {
                    path: path.clone(),
                    line: f.line,
                    impl_type: f.impl_type.clone(),
                    returns_result: f.returns_result,
                    returns_guard: f.returns_guard,
                });
            }
        }
        SymbolTable { defs }
    }

    /// The candidate definitions a call to `name` might resolve to.
    pub fn candidates(&self, name: &str) -> &[FnDef] {
        self.defs.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True when `name` is defined in the workspace and **every**
    /// definition a call of this form could reach returns `Result`
    /// (the `ignored-result` quantifier). A `.name(…)` method call
    /// only reaches `impl`/`trait` definitions — a free workspace fn
    /// that shares its name with a std trait method (`collect`,
    /// `write`, …) must not be linked to method-call sites.
    pub fn all_return_result(&self, name: &str, method_call: bool) -> bool {
        let c: Vec<&FnDef> = self
            .candidates(name)
            .iter()
            .filter(|d| !method_call || d.impl_type.is_some())
            .collect();
        !c.is_empty() && c.iter().all(|d| d.returns_result)
    }

    /// True when **any** workspace definition of `name` returns a lock
    /// guard (the `lock-order` quantifier).
    pub fn any_returns_guard(&self, name: &str) -> bool {
        self.candidates(name).iter().any(|d| d.returns_guard)
    }

    /// Where the first candidate is defined, for diagnostic help text.
    pub fn definition_note(&self, name: &str) -> Option<String> {
        let d = self.candidates(name).first()?;
        let owner = d
            .impl_type
            .as_deref()
            .map(|t| format!("{t}::"))
            .unwrap_or_default();
        Some(format!(
            "`{owner}{name}` is defined at {}:{}",
            d.path.display(),
            d.line
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, TokenKind};
    use crate::parser::parse;

    fn table(sources: &[(&str, &str)]) -> SymbolTable {
        let parsed: Vec<(PathBuf, FileTree)> = sources
            .iter()
            .map(|(path, src)| {
                let toks: Vec<_> = lex(src)
                    .into_iter()
                    .filter(|t| t.kind != TokenKind::Comment)
                    .collect();
                (PathBuf::from(path), parse(&toks))
            })
            .collect();
        SymbolTable::build(parsed.iter().map(|(p, t)| (p, t)))
    }

    #[test]
    fn links_result_fns_across_files() {
        let t = table(&[
            ("a.rs", "pub fn build() -> Result<u32, E> { Ok(0) }"),
            ("b.rs", "pub fn plain() -> u32 { 0 }"),
        ]);
        assert!(t.all_return_result("build", false));
        assert!(!t.all_return_result("plain", false));
        assert!(!t.all_return_result("undefined_anywhere", false));
    }

    #[test]
    fn homonyms_must_agree_for_result_linking() {
        let t = table(&[
            (
                "a.rs",
                "impl A { pub fn get(&self) -> Result<u32, E> { Ok(0) } }",
            ),
            ("b.rs", "impl B { pub fn get(&self) -> u32 { 0 } }"),
        ]);
        assert!(
            !t.all_return_result("get", true),
            "ambiguous homonym must not flag"
        );
        assert_eq!(t.candidates("get").len(), 2);
    }

    #[test]
    fn guard_helpers_link_by_any_quantifier() {
        let t = table(&[
            (
                "a.rs",
                "impl Pool { fn stripe(&self) -> MutexGuard<'_, u32> { self.m.lock().unwrap() } }",
            ),
            ("b.rs", "fn stripe() -> u32 { 0 }"),
        ]);
        assert!(t.any_returns_guard("stripe"));
        assert!(!t.any_returns_guard("other"));
    }

    #[test]
    fn definition_note_names_the_impl_type() {
        let t = table(&[(
            "crates/m/src/pool.rs",
            "impl Pool { fn stripe(&self) -> MutexGuard<'_, u32> { self.m.lock().unwrap() } }",
        )]);
        let note = t.definition_note("stripe").expect("defined");
        assert!(note.contains("Pool::stripe"), "{note}");
        assert!(note.contains("pool.rs:1"), "{note}");
    }
}
