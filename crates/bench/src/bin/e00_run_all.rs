//! Runs the full experiment suite in order.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    for report in fmdb_bench::experiments::run_all(&cfg) {
        report.print();
        println!("{}", "=".repeat(72));
    }
}
