//! Offline stand-in for the `criterion` crate (0.5 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free benchmark harness.
//! It keeps criterion's calling conventions — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — but replaces the
//! statistical machinery with straightforward wall-clock timing:
//! each benchmark is warmed up briefly, then timed over `sample_size`
//! samples, and the median/mean/min per-iteration times are printed.
//! No HTML reports, no baseline comparisons.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Opaque identity function preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine
/// call per setup call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// A benchmark label of the form `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter display value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        let mut id = function_name.into();
        let _ = write!(id, "/{parameter}");
        BenchmarkId { id }
    }

    /// A label from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; records per-iteration timings.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// Like [`Bencher::iter_batched`] with a by-reference routine.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up pass populates caches and lazy statics.
        {
            let mut warmup = Vec::new();
            let mut b = Bencher {
                samples: &mut warmup,
                sample_size: 1,
            };
            f(&mut b);
        }
        let mut b = Bencher {
            samples: &mut samples,
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &samples);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// per-benchmark).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    println!(
        "{group}/{id}: median {} | mean {} | min {} ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver. One per `criterion_group!`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // FMDB_BENCH_SAMPLES trims runs in constrained environments.
        let default_sample_size = std::env::var("FMDB_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&n: &usize| n >= 1)
            .unwrap_or(10);
        Criterion {
            default_sample_size,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Collects benchmark functions into a runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_separates_setup() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::LargeInput)
        });
    }

    #[test]
    fn benchmark_id_formats_as_path() {
        assert_eq!(BenchmarkId::new("fa", 65536).to_string(), "fa/65536");
    }
}
