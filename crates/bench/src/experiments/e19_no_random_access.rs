//! E19 — the no-random-access regime (extension; §4.2).
//!
//! "Given an object from one input stream, the algorithm needs to be
//! able to find the matching attributes of the same object in the
//! second stream … This information may not be easily available."
//! When it is *not* available at all, A₀ cannot run; NRA answers the
//! same top-k question from sorted access alone, paying deeper streams
//! and (sometimes) returning grade intervals instead of exact values.

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::nra::Nra;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::{correlated_pair, independent_uniform};

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E19",
        "top-k without random access: NRA vs A0",
        "§4.2: cross-subsystem id lookups \"may not be easily available\" — the regime where \
         A0 is inapplicable and sorted access must carry the whole query",
    );
    let n = cfg.pick(1 << 14, 1 << 10);
    let mut t = Table::new(
        format!("sorted/random accesses and exactness, N = {n}, m = 2, min"),
        &[
            "workload",
            "k",
            "A0 sorted",
            "A0 random",
            "NRA sorted",
            "NRA exact grades",
            "NRA/A0 total",
        ],
    );
    let workloads: [(&str, f64); 3] = [("independent", 0.0), ("correlated", 0.8), ("anti", -0.8)];
    for (name, rho) in workloads {
        for &k in &[5usize, 25] {
            let mut total_fa_sorted = 0u64;
            let mut total_fa_random = 0u64;
            let mut total_nra_sorted = 0u64;
            let mut exact = 0usize;
            let mut answers = 0usize;
            for seed in 0..cfg.seeds {
                let make = |s: u64| {
                    if name == "independent" {
                        independent_uniform(n, 2, s)
                    } else {
                        correlated_pair(n, rho, s)
                    }
                };
                let mut a = make(seed);
                let mut refs: Vec<&mut dyn GradedSource> =
                    a.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
                let fa = FaginsAlgorithm
                    .top_k(&mut refs, &Min, k)
                    .expect("valid run");
                total_fa_sorted += fa.stats.sorted;
                total_fa_random += fa.stats.random;

                let mut b = make(seed);
                let mut refs_b: Vec<&mut dyn GradedSource> =
                    b.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
                let nra = Nra.top_k(&mut refs_b, &Min, k).expect("valid run");
                assert_eq!(nra.stats.random, 0);
                total_nra_sorted += nra.stats.sorted;
                exact += nra.answers.iter().filter(|x| x.is_exact()).count();
                answers += nra.answers.len();
            }
            let seeds = cfg.seeds;
            let fa_total = (total_fa_sorted + total_fa_random) / seeds;
            t.row(vec![
                name.to_owned(),
                k.to_string(),
                int(total_fa_sorted / seeds),
                int(total_fa_random / seeds),
                int(total_nra_sorted / seeds),
                format!("{:.0}%", 100.0 * exact as f64 / answers.max(1) as f64),
                f3((total_nra_sorted / seeds) as f64 / fa_total.max(1) as f64),
            ]);
        }
    }
    report.table(t);
    report.note(
        "NRA's sorted streams run only slightly deeper than A0's, and since it never pays \
         for random probes its *total* cost is about half of A0's on independent data; \
         only strong positive correlation (where A0 stops almost immediately) reverses \
         the ranking. Under min the exactness column is 100% by construction: an object \
         with any unknown conjunct has lower bound 0, so certified top-k members are \
         always fully resolved — means and other rules can return genuine intervals.",
    );
    report
}
