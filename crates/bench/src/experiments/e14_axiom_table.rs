//! E14 — the §3 taxonomy as a generated table: which shipped scoring
//! functions satisfy which axioms, with Theorem 3.1's uniqueness
//! visible as the idempotence column.

use fmdb_core::scoring::conorms::all_conorms;
use fmdb_core::scoring::means::{ArithmeticMean, GeometricMean, HarmonicMean};
use fmdb_core::scoring::properties::{audit, sample_grid, AxiomReport};
use fmdb_core::scoring::tnorms::all_tnorms;
use fmdb_core::scoring::{ConormScoring, ScoringFunction};
use fmdb_core::weights::{Weighted, Weighting};

use crate::report::{Report, Table};
use crate::runners::RunCfg;

fn audit_row(t: &mut Table, r: &AxiomReport) {
    t.row(vec![
        r.name.clone(),
        r.and_conservation.to_string(),
        r.or_conservation.to_string(),
        r.monotone.to_string(),
        r.commutative.to_string(),
        r.associative.to_string(),
        r.idempotent.to_string(),
        r.strict.to_string(),
        if r.is_tnorm() { "yes" } else { "-" }.to_owned(),
        if r.is_conorm() { "yes" } else { "-" }.to_owned(),
    ]);
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E14",
        "scoring-function axiom audit",
        "§3 + Theorem 3.1: t-norm/co-norm axioms, strictness and monotonicity (the two \
         properties the algorithmic results need), and idempotence (which only min/max have)",
    );
    let grid = sample_grid(cfg.pick(12, 6));
    let headers = [
        "function", "∧-cons", "∨-cons", "monotone", "commut", "assoc", "idemp", "strict", "t-norm",
        "co-norm",
    ];

    let mut t = Table::new("audited at arity 2 on a dense grid", &headers);
    for norm in all_tnorms() {
        audit_row(&mut t, &audit(&norm, &grid));
    }
    for conorm in all_conorms() {
        audit_row(&mut t, &audit(&ConormScoring(conorm), &grid));
    }
    let means: Vec<Box<dyn ScoringFunction>> = vec![
        Box::new(ArithmeticMean),
        Box::new(GeometricMean),
        Box::new(HarmonicMean),
        Box::new(Weighted::new(
            fmdb_core::scoring::tnorms::Min,
            Weighting::new(vec![0.7, 0.3]).expect("valid weighting"),
        )),
    ];
    for f in &means {
        audit_row(&mut t, &audit(f.as_ref(), &grid));
    }
    report.table(t);
    report.note(
        "only min is an idempotent t-norm and only max an idempotent co-norm — the grid-level \
         shadow of Theorem 3.1's uniqueness. The means fail ∧-conservation (mean(0,1) = ½, \
         the paper's own counterexample) yet keep strictness and monotonicity, so the bounds \
         of [Fa96] still apply to them.",
    );
    report
}
