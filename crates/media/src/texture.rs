//! Texture features (§4: QBIC "can search for images by various visual
//! characteristics such as color, shape, and **texture**").
//!
//! A [`TexturePatch`] is a small grayscale raster; a
//! [`TextureDescriptor`] summarizes it with the three classic Tamura
//! features (simplified to their standard discrete forms):
//!
//! * **coarseness** — the dominant scale of intensity variation, found
//!   by comparing non-overlapping block means at powers of two;
//! * **contrast** — Tamura's `σ / α₄^¼` (standard deviation tempered
//!   by kurtosis), normalized into `[0, 1]`;
//! * **directionality** — the concentration of the gradient
//!   orientation distribution (1 = a single dominant direction,
//!   0 = isotropic), with angles doubled so opposite gradients agree.

use std::f64::consts::PI;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Error for malformed texture input.
#[derive(Debug, Clone, PartialEq)]
pub enum TextureError {
    /// Patch side length too small to analyze.
    TooSmall(usize),
    /// Pixel buffer length does not match `size²`.
    SizeMismatch {
        /// Expected pixel count.
        expected: usize,
        /// Provided pixel count.
        got: usize,
    },
    /// A pixel was NaN or infinite.
    NotFinite,
}

impl fmt::Display for TextureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextureError::TooSmall(n) => write!(f, "patch side {n} is below the minimum of 8"),
            TextureError::SizeMismatch { expected, got } => {
                write!(f, "expected {expected} pixels, got {got}")
            }
            TextureError::NotFinite => write!(f, "pixels must be finite"),
        }
    }
}

impl std::error::Error for TextureError {}

/// A square grayscale raster with intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct TexturePatch {
    size: usize,
    pixels: Vec<f64>,
}

impl TexturePatch {
    /// Minimum supported side length.
    pub const MIN_SIZE: usize = 8;

    /// Wraps raw pixels (row-major, clamped into `[0, 1]`).
    pub fn new(size: usize, pixels: Vec<f64>) -> Result<TexturePatch, TextureError> {
        if size < Self::MIN_SIZE {
            return Err(TextureError::TooSmall(size));
        }
        if pixels.len() != size * size {
            return Err(TextureError::SizeMismatch {
                expected: size * size,
                got: pixels.len(),
            });
        }
        if pixels.iter().any(|v| !v.is_finite()) {
            return Err(TextureError::NotFinite);
        }
        Ok(TexturePatch {
            size,
            pixels: pixels.into_iter().map(|v| v.clamp(0.0, 1.0)).collect(),
        })
    }

    /// A sinusoidal grating: `frequency` cycles across the patch at
    /// `orientation` radians, amplitude `contrast`, plus uniform noise
    /// of amplitude `noise`. The workhorse synthetic texture.
    pub fn grating(
        size: usize,
        frequency: f64,
        orientation: f64,
        contrast: f64,
        noise: f64,
        seed: u64,
    ) -> Result<TexturePatch, TextureError> {
        if size < Self::MIN_SIZE {
            return Err(TextureError::TooSmall(size));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let (sin_o, cos_o) = orientation.sin_cos();
        let mut pixels = Vec::with_capacity(size * size);
        for y in 0..size {
            for x in 0..size {
                let u = x as f64 / size as f64;
                let v = y as f64 / size as f64;
                let phase = 2.0 * PI * frequency * (u * cos_o + v * sin_o);
                let value = 0.5
                    + 0.5 * contrast.clamp(0.0, 1.0) * phase.sin()
                    + noise * (rng.gen::<f64>() - 0.5);
                pixels.push(value.clamp(0.0, 1.0));
            }
        }
        TexturePatch::new(size, pixels)
    }

    /// Pure uniform noise of the given amplitude around mid-gray —
    /// the isotropic reference texture.
    pub fn noise(size: usize, amplitude: f64, seed: u64) -> Result<TexturePatch, TextureError> {
        if size < Self::MIN_SIZE {
            return Err(TextureError::TooSmall(size));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let pixels = (0..size * size)
            .map(|_| (0.5 + amplitude * (rng.gen::<f64>() - 0.5)).clamp(0.0, 1.0))
            .collect();
        TexturePatch::new(size, pixels)
    }

    /// Side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Pixel at `(x, y)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f64 {
        self.pixels[y * self.size + x]
    }
}

/// The three Tamura-style texture features, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TextureDescriptor {
    /// Dominant variation scale relative to the patch (1 = whole-patch
    /// waves, → 0 = pixel-level detail).
    pub coarseness: f64,
    /// Kurtosis-tempered standard deviation, normalized.
    pub contrast: f64,
    /// Orientation concentration (1 = single direction, 0 = isotropic).
    pub directionality: f64,
}

impl TextureDescriptor {
    /// Analyzes a patch.
    pub fn of(patch: &TexturePatch) -> TextureDescriptor {
        TextureDescriptor {
            coarseness: coarseness(patch),
            contrast: contrast(patch),
            directionality: directionality(patch),
        }
    }

    /// Euclidean distance in feature space (each axis already in
    /// `[0, 1]`, so the distance lies in `[0, √3]`).
    pub fn distance(&self, other: &TextureDescriptor) -> f64 {
        let dc = self.coarseness - other.coarseness;
        let dk = self.contrast - other.contrast;
        let dd = self.directionality - other.directionality;
        (dc * dc + dk * dk + dd * dd).sqrt()
    }

    /// The features as a fixed-size vector (for generic indexing).
    pub fn as_vector(&self) -> [f64; 3] {
        [self.coarseness, self.contrast, self.directionality]
    }
}

/// Dominant scale: for block sizes 2^k, the mean absolute difference
/// between horizontally/vertically adjacent block means; the best k
/// (scaled) is the coarseness.
fn coarseness(patch: &TexturePatch) -> f64 {
    let n = patch.size;
    let max_k = (n.trailing_zeros().max(3) as usize).min(6);
    let mut best_k = 0usize;
    let mut best_e = f64::NEG_INFINITY;
    for k in 0..max_k {
        let w = 1usize << k;
        if 2 * w > n {
            break;
        }
        let blocks = n / w;
        // Block means.
        let mut means = vec![0.0; blocks * blocks];
        for by in 0..blocks {
            for bx in 0..blocks {
                let mut s = 0.0;
                for y in 0..w {
                    for x in 0..w {
                        s += patch.get(bx * w + x, by * w + y);
                    }
                }
                means[by * blocks + bx] = s / (w * w) as f64;
            }
        }
        // Mean absolute difference between adjacent blocks.
        let mut diff = 0.0;
        let mut count = 0u32;
        for by in 0..blocks {
            for bx in 0..blocks {
                if bx + 1 < blocks {
                    diff += (means[by * blocks + bx + 1] - means[by * blocks + bx]).abs();
                    count += 1;
                }
                if by + 1 < blocks {
                    diff += (means[(by + 1) * blocks + bx] - means[by * blocks + bx]).abs();
                    count += 1;
                }
            }
        }
        if count == 0 {
            break;
        }
        let e = diff / f64::from(count);
        if e > best_e {
            best_e = e;
            best_k = k;
        }
    }
    // Scale 2^best_k into (0, 1]: pixel-level detail → small value.
    (1 << best_k) as f64 * 2.0 / patch.size as f64
}

/// Tamura contrast: `σ / α₄^¼`, normalized by the maximum standard
/// deviation (0.5) of a `[0, 1]` signal.
fn contrast(patch: &TexturePatch) -> f64 {
    let n = patch.pixels.len() as f64;
    let mean = patch.pixels.iter().sum::<f64>() / n;
    let mut m2 = 0.0;
    let mut m4 = 0.0;
    for &p in &patch.pixels {
        let d = p - mean;
        m2 += d * d;
        m4 += d * d * d * d;
    }
    m2 /= n;
    m4 /= n;
    if m2 < 1e-12 {
        return 0.0; // flat patch
    }
    let kurtosis = (m4 / (m2 * m2)).max(1e-6);
    let sigma = m2.sqrt();
    (sigma / kurtosis.powf(0.25) / 0.5).clamp(0.0, 1.0)
}

/// Directionality: resultant length of the magnitude-weighted gradient
/// orientation distribution, with angles doubled (axial data).
fn directionality(patch: &TexturePatch) -> f64 {
    let n = patch.size;
    let mut sum_cos = 0.0;
    let mut sum_sin = 0.0;
    let mut sum_mag = 0.0;
    for y in 1..n - 1 {
        for x in 1..n - 1 {
            // Sobel gradients.
            let gx = (patch.get(x + 1, y - 1)
                + 2.0 * patch.get(x + 1, y)
                + patch.get(x + 1, y + 1))
                - (patch.get(x - 1, y - 1) + 2.0 * patch.get(x - 1, y) + patch.get(x - 1, y + 1));
            let gy = (patch.get(x - 1, y + 1)
                + 2.0 * patch.get(x, y + 1)
                + patch.get(x + 1, y + 1))
                - (patch.get(x - 1, y - 1) + 2.0 * patch.get(x, y - 1) + patch.get(x + 1, y - 1));
            let mag = (gx * gx + gy * gy).sqrt();
            if mag > 1e-9 {
                let theta = gy.atan2(gx);
                sum_cos += mag * (2.0 * theta).cos();
                sum_sin += mag * (2.0 * theta).sin();
                sum_mag += mag;
            }
        }
    }
    if sum_mag < 1e-9 {
        return 0.0;
    }
    ((sum_cos * sum_cos + sum_sin * sum_sin).sqrt() / sum_mag).clamp(0.0, 1.0)
}

/// Named texture prototypes for query targets ("coarse", "fine",
/// "smooth", "rough", "directional"), analyzed from reference patches.
pub fn named_texture(name: &str) -> Option<TextureDescriptor> {
    let patch = match name.to_ascii_lowercase().as_str() {
        "coarse" => TexturePatch::grating(32, 2.0, 0.3, 0.9, 0.02, 7),
        "fine" => TexturePatch::grating(32, 12.0, 0.3, 0.9, 0.02, 7),
        "smooth" => TexturePatch::noise(32, 0.05, 7),
        "rough" => TexturePatch::noise(32, 1.0, 7),
        "directional" => TexturePatch::grating(32, 6.0, 0.0, 1.0, 0.0, 7),
        _ => return None,
    };
    Some(TextureDescriptor::of(
        // lint:allow(no-panic): the prototype table holds constant in-domain parameters
        &patch.expect("prototype parameters are valid"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(matches!(
            TexturePatch::new(4, vec![0.0; 16]),
            Err(TextureError::TooSmall(4))
        ));
        assert!(matches!(
            TexturePatch::new(8, vec![0.0; 10]),
            Err(TextureError::SizeMismatch {
                expected: 64,
                got: 10
            })
        ));
        assert!(matches!(
            TexturePatch::new(8, vec![f64::NAN; 64]),
            Err(TextureError::NotFinite)
        ));
        assert!(TexturePatch::new(8, vec![0.5; 64]).is_ok());
    }

    #[test]
    fn gratings_are_deterministic_in_seed() {
        let a = TexturePatch::grating(16, 4.0, 0.5, 0.8, 0.1, 3).unwrap();
        let b = TexturePatch::grating(16, 4.0, 0.5, 0.8, 0.1, 3).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn low_frequency_is_coarser_than_high_frequency() {
        let coarse = TexturePatch::grating(32, 2.0, 0.2, 0.9, 0.0, 1).unwrap();
        let fine = TexturePatch::grating(32, 14.0, 0.2, 0.9, 0.0, 1).unwrap();
        let dc = TextureDescriptor::of(&coarse);
        let df = TextureDescriptor::of(&fine);
        assert!(
            dc.coarseness > df.coarseness,
            "coarse {} vs fine {}",
            dc.coarseness,
            df.coarseness
        );
    }

    #[test]
    fn contrast_feature_tracks_contrast_parameter() {
        let lo = TexturePatch::grating(32, 6.0, 0.2, 0.1, 0.0, 1).unwrap();
        let hi = TexturePatch::grating(32, 6.0, 0.2, 0.9, 0.0, 1).unwrap();
        let dlo = TextureDescriptor::of(&lo);
        let dhi = TextureDescriptor::of(&hi);
        assert!(
            dhi.contrast > dlo.contrast * 2.0,
            "{} vs {}",
            dhi.contrast,
            dlo.contrast
        );
    }

    #[test]
    fn gratings_are_directional_noise_is_not() {
        let grating = TexturePatch::grating(32, 6.0, 0.7, 1.0, 0.0, 1).unwrap();
        let noise = TexturePatch::noise(32, 1.0, 1).unwrap();
        let dg = TextureDescriptor::of(&grating);
        let dn = TextureDescriptor::of(&noise);
        assert!(
            dg.directionality > 0.8,
            "grating directionality {}",
            dg.directionality
        );
        assert!(
            dn.directionality < 0.35,
            "noise directionality {}",
            dn.directionality
        );
    }

    #[test]
    fn directionality_is_rotation_robust() {
        // Different orientations of the same grating are equally
        // directional (the *amount* of directionality is invariant
        // even though the direction itself differs).
        for angle in [0.0, 0.4, 0.9, 1.3] {
            let patch = TexturePatch::grating(32, 6.0, angle, 1.0, 0.0, 1).unwrap();
            let d = TextureDescriptor::of(&patch);
            assert!(
                d.directionality > 0.7,
                "angle {angle}: {}",
                d.directionality
            );
        }
    }

    #[test]
    fn flat_patch_has_zero_contrast_and_directionality() {
        let flat = TexturePatch::new(16, vec![0.5; 256]).unwrap();
        let d = TextureDescriptor::of(&flat);
        assert_eq!(d.contrast, 0.0);
        assert_eq!(d.directionality, 0.0);
    }

    #[test]
    fn descriptor_distance_is_a_semimetric() {
        let a = TextureDescriptor::of(&TexturePatch::grating(32, 3.0, 0.1, 0.8, 0.05, 1).unwrap());
        let b = TextureDescriptor::of(&TexturePatch::grating(32, 12.0, 1.2, 0.3, 0.2, 2).unwrap());
        assert!(a.distance(&a) < 1e-12);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn similar_textures_are_closer_than_dissimilar_ones() {
        let base =
            TextureDescriptor::of(&TexturePatch::grating(32, 4.0, 0.3, 0.8, 0.05, 1).unwrap());
        let near =
            TextureDescriptor::of(&TexturePatch::grating(32, 4.5, 0.35, 0.75, 0.05, 2).unwrap());
        let far = TextureDescriptor::of(&TexturePatch::noise(32, 0.9, 3).unwrap());
        assert!(
            base.distance(&near) < base.distance(&far),
            "near {} vs far {}",
            base.distance(&near),
            base.distance(&far)
        );
    }

    #[test]
    fn as_vector_mirrors_the_fields() {
        let d = TextureDescriptor::of(&TexturePatch::grating(16, 4.0, 0.2, 0.8, 0.0, 1).unwrap());
        assert_eq!(d.as_vector(), [d.coarseness, d.contrast, d.directionality]);
    }

    #[test]
    fn named_prototypes_resolve_and_differ() {
        let coarse = named_texture("coarse").unwrap();
        let fine = named_texture("FINE").unwrap();
        let smooth = named_texture("smooth").unwrap();
        let rough = named_texture("rough").unwrap();
        assert!(named_texture("fluffy").is_none());
        assert!(coarse.coarseness > fine.coarseness);
        assert!(rough.contrast > smooth.contrast);
    }
}
