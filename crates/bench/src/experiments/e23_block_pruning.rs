//! E23 — block-max pruning: grade zone maps over the embedded corpus
//! and persisted page bounds in the paged store.
//!
//! §6 asks for "a more realistic cost measure" — E18 made page I/O
//! physical; this experiment makes it *avoidable*. Per-block
//! coordinate bounding boxes let a threshold-seeded corpus scan skip
//! whole blocks whose minimum possible distance already exceeds the
//! running k-th best, and per-page grade bounds persisted in the v2
//! store directory let a bounded sorted drain stop — and random
//! probes bail — at page granularity. Both layers are proven
//! answer-preserving by the `pruned_equivalence` suites; here we
//! measure what the proofs buy: wall-clock speedup and skip rate as a
//! function of selectivity, plus the `AccessStats` telemetry
//! (`blocks_skipped` / `pages_skipped`) that feeds the planner's
//! [`fmdb_middleware::planner::PlanQuery::expected_skip`] discount.

use std::path::{Path, PathBuf};
use std::time::Instant;

use fmdb_core::score::Score;
use fmdb_media::embed::{EmbeddedCorpus, EmbeddedSpace};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::planner::{estimate_cost, PhysicalPlan, PlanQuery};
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::stats::{AccessStats, CostModel};
use fmdb_middleware::store::{build_store_from_source, BuildConfig, PagedStore, StoreOptions};
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

/// Scratch directory for store files, inside the workspace `target/`
/// dir so benchmarks never write outside the repository.
fn store_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-stores");
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    dir
}

/// Best-of-`reps` wall-clock for one closure, in milliseconds.
fn best_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E23",
        "block-max pruning: zone-map scans and bounded page drains",
        "grade zone maps (per-block bounding boxes) and persisted per-page grade bounds \
         let threshold-seeded scans and drains skip provably useless blocks/pages — \
         answers stay bit-identical (pruned_equivalence suites) while selective \
         workloads drop most of the wall-clock",
    );
    let reps = if cfg.quick { 3 } else { 7 };

    // ---- Corpus side: zone-map pruned kNN scans --------------------
    let n = cfg.pick(8192, 1024);
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel: 4,
        seed: 29,
        ..SynthConfig::default()
    });
    let mut hists: Vec<_> = db.objects.iter().map(|o| o.histogram.clone()).collect();
    // Zone maps bound *blocks of adjacent indices*, so they pay off in
    // proportion to the corpus's index locality. Real collections are
    // ingested in correlated batches (same shoot, same scene); the
    // synthetic generator is order-free, so restore that locality by
    // clustering on the dominant bin — the same trick a store would
    // apply at build time by sorting on any coarse feature key.
    hists.sort_by_key(|h| {
        h.bins()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map_or(0, |(i, _)| i)
    });
    let corpus = EmbeddedCorpus::build(
        EmbeddedSpace::for_space(&db.space).expect("QBIC matrix embeds"),
        &hists,
    )
    .expect("same space");
    let query = &db.objects[0].histogram;
    let (oracle, _) = corpus.knn_brute(query, n).expect("same space");

    let mut t = Table::new(
        format!("threshold-seeded corpus scans, N = {n}, k = 10"),
        &[
            "selectivity",
            "unpruned ms",
            "pruned ms",
            "speedup",
            "block skip rate",
        ],
    );
    let mut corpus_speedup = 0.0;
    let mut corpus_skip_rate = 0.0;
    let mut blocks_skipped_total = 0u64;
    for (label, q) in [("tight (q=10)", 10usize), ("mid (q=n/8)", n / 8)] {
        let bound = oracle[q.saturating_sub(1)].1;
        let unpruned_ms = best_ms(reps, || {
            corpus.knn_within(query, 10, bound, false).expect("scan")
        });
        let pruned_ms = best_ms(reps, || {
            corpus.knn_within(query, 10, bound, true).expect("scan")
        });
        let (pruned_answers, stats) = corpus.knn_within(query, 10, bound, true).expect("scan");
        let (unpruned_answers, _) = corpus.knn_within(query, 10, bound, false).expect("scan");
        assert_eq!(
            pruned_answers, unpruned_answers,
            "pruned scans must match unpruned scans bit for bit"
        );
        let total_blocks = n.div_ceil(corpus.prune_block()) as u64;
        let skip_rate = if total_blocks == 0 {
            0.0
        } else {
            stats.blocks_skipped as f64 / total_blocks as f64
        };
        let speedup = if pruned_ms > 1e-6 {
            unpruned_ms / pruned_ms
        } else {
            1.0
        };
        t.row(vec![
            label.to_owned(),
            f3(unpruned_ms),
            f3(pruned_ms),
            f3(speedup),
            f3(skip_rate),
        ]);
        if q == 10 {
            corpus_speedup = speedup;
            corpus_skip_rate = skip_rate;
        }
        blocks_skipped_total += stats.blocks_skipped;
    }
    report.table(t);

    // ---- Store side: bounded drains over persisted page bounds -----
    let sn = cfg.pick(1 << 15, 1 << 12);
    let mut src: VecSource = independent_uniform(sn, 1, 31).remove(0);
    let path = store_dir().join("e23-drain.fmdb");
    build_store_from_source(&path, &mut src, &BuildConfig::with_page_size(4096))
        .expect("build store");
    src.rewind();
    let store = PagedStore::open(&path, StoreOptions::DEFAULT).expect("open store");
    // Warm the pool so the comparison isolates pruning, not cold I/O.
    {
        let mut cursor = store.source();
        while cursor.sorted_next().is_some() {}
    }

    let mut d = Table::new(
        format!("bounded sorted drains, N = {sn}, page size 4096"),
        &[
            "selectivity",
            "full drain ms",
            "bounded ms",
            "speedup",
            "page skip rate",
            "pages skipped",
        ],
    );
    let full_ms = best_ms(reps, || {
        let mut cursor = store.source();
        let mut count = 0u64;
        while cursor.sorted_next().is_some() {
            count += 1;
        }
        count
    });
    let sorted_pages = store.header().sorted_pages as f64;
    let mut drain_speedup = 0.0;
    let mut page_skip_rate = 0.0;
    let mut pages_skipped_headline = 0u64;
    for (sel_idx, selectivity) in [0.01f64, 0.1, 0.5].into_iter().enumerate() {
        let bound = Score::clamped(1.0 - selectivity);
        let bounded_ms = best_ms(reps, || {
            let mut cursor = store.source();
            cursor.sorted_drain_bounded(bound).map(|v| v.len())
        });
        store.clear_pool();
        {
            // Re-warm, then measure the skip telemetry of one drain.
            let mut cursor = store.source();
            while cursor.sorted_next().is_some() {}
        }
        let before = store.pages_skipped();
        let mut cursor = store.source();
        let drained = cursor.sorted_drain_bounded(bound).map_or(0, |v| {
            // The drained prefix must agree with the in-memory
            // reference exactly.
            let mut reference = src.clone();
            reference.rewind();
            let want = reference.sorted_drain_bounded(bound).expect("vec drains");
            assert_eq!(v, want, "bounded drain must match the in-memory source");
            v.len()
        });
        let skipped = store.pages_skipped().saturating_sub(before);
        let skip_rate = if sorted_pages > 0.0 {
            (skipped as f64 / sorted_pages).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let speedup = if bounded_ms > 1e-6 {
            full_ms / bounded_ms
        } else {
            1.0
        };
        d.row(vec![
            format!("{selectivity} ({drained} rows)"),
            f3(full_ms),
            f3(bounded_ms),
            f3(speedup),
            f3(skip_rate),
            int(skipped),
        ]);
        // The headline metric is the most selective row (the first).
        if sel_idx == 0 {
            drain_speedup = speedup;
            page_skip_rate = skip_rate;
            pages_skipped_headline = skipped;
        }
    }
    report.table(d);

    // ---- Telemetry → planner feedback ------------------------------
    // The skip counters land in the same `AccessStats` the engine
    // reports, and the measured page skip rate feeds the planner's
    // full-scan discount.
    let telemetry = AccessStats {
        blocks_skipped: blocks_skipped_total,
        pages_skipped: pages_skipped_headline,
        ..AccessStats::ZERO
    };
    let plan = PlanQuery::fuzzy(sn, 1, 10);
    let undiscounted =
        estimate_cost(PhysicalPlan::FullScan, &plan, None, &CostModel::UNIFORM, 0.0)
            .expect("full scan always applies");
    let discounted = estimate_cost(
        PhysicalPlan::FullScan,
        &plan.expected_skip(page_skip_rate),
        None,
        &CostModel::UNIFORM,
        0.0,
    )
    .expect("full scan always applies");
    report.note(format!(
        "telemetry: {} blocks and {} pages proven skippable, reported through \
         AccessStats::blocks_skipped / pages_skipped; feeding the measured page skip \
         rate back as PlanQuery::expected_skip drops the planner's full-scan estimate \
         from {undiscounted:.0} to {discounted:.0} charged accesses",
        telemetry.blocks_skipped, telemetry.pages_skipped,
    ));

    report.metric("corpus_speedup", corpus_speedup);
    report.metric("corpus_skip_rate", corpus_skip_rate);
    report.metric("drain_speedup", drain_speedup);
    report.metric("page_skip_rate", page_skip_rate);

    report.note(
        "zone maps engage harder the tighter the threshold: at q = 10 the bound is the \
         10th-nearest distance, so nearly every block's bounding box proves its rows \
         are too far and the scan touches a handful of blocks; the mid-selectivity row \
         shows the graceful degradation as the bound loosens.",
    );
    report.note(
        "page bounds turn the sorted run's global descending order into a stopping \
         proof: the first page whose persisted max falls below the bound certifies the \
         whole remaining run skippable, so a 1%-selective drain reads ~1% of the pages \
         (plus one boundary page) and charges exactly the rows it returns.",
    );
    report
}
