//! θ-approximate TA and NRA (Fagin–Lotem–Naor §9).
//!
//! A **θ-approximation** of the top-k answers (θ > 0) is a set of `k`
//! objects such that for every returned `z` and every non-returned
//! `y`: `(1 + θ)·g(z) ≥ g(y)`. The algorithms buy access savings by
//! relaxing their stopping rules:
//!
//! * **TA**: halt as soon as `k` seen objects have
//!   `g·(1 + θ) ≥ τ` — the unseen are bounded by `τ`, so the slack
//!   absorbs whatever the scan has not confirmed yet. Returned grades
//!   are exact (TA resolves every seen object by random access).
//! * **NRA**: halt as soon as every non-candidate upper bound is
//!   `≤ (1 + θ)·Mₖ`, `Mₖ` the k-th best lower bound. Returned grades
//!   are certified lower bounds, as in exact NRA.
//!
//! At `θ = 0` both relaxed rules degenerate to the exact comparisons —
//! bit for bit, because the θ ≤ 0 path compares [`Score`]s directly
//! instead of multiplying by `(1 + θ)` (`tests/approx_equivalence.rs`
//! proves the equivalence by property).

use fmdb_core::score::Score;
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::nra::nra_core;
use crate::algorithms::ta::ta_core;
use crate::algorithms::{AlgoError, TopKAlgorithm, TopKResult};
use crate::source::GradedSource;

/// TA's relaxed certification: does grade `g` certify against the
/// threshold `τ` under slack `θ`? Exact `Score` comparison at θ ≤ 0 so
/// the θ = 0 path is bit-identical to the exact algorithm.
pub(crate) fn grade_certifies(g: Score, tau: Score, theta: f64) -> bool {
    if theta <= 0.0 {
        g >= tau
    } else {
        g.value() * (1.0 + theta) >= tau.value()
    }
}

/// NRA's relaxed exclusion: is an `upper` bound excluded by the k-th
/// lower bound `tau` under slack `θ`? Exact comparison at θ ≤ 0.
pub(crate) fn upper_excluded(upper: Score, tau: Score, theta: f64) -> bool {
    if theta <= 0.0 {
        upper <= tau
    } else {
        upper.value() <= tau.value() * (1.0 + theta)
    }
}

/// Rejects negative or non-finite slacks.
pub(crate) fn validate_theta(theta: f64) -> Result<(), AlgoError> {
    if theta.is_finite() && theta >= 0.0 {
        Ok(())
    } else {
        Err(AlgoError::InvalidRequest(format!(
            "approximation slack θ must be finite and ≥ 0, got {theta}"
        )))
    }
}

/// θ-approximate Threshold Algorithm. Grades of returned objects are
/// exact; the *set* is a θ-approximation of the true top k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxTa {
    theta: f64,
}

impl ApproxTa {
    /// A TA run tolerating a `(1 + theta)` grade slack.
    pub fn new(theta: f64) -> ApproxTa {
        ApproxTa { theta }
    }

    /// The configured slack.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl TopKAlgorithm for ApproxTa {
    fn name(&self) -> &'static str {
        "approx-ta"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate_theta(self.theta)?;
        ta_core(sources, scoring, k, self.theta)
    }
}

/// θ-approximate NRA. Like [`crate::algorithms::nra::NraLowerBound`],
/// answers are flattened to their certified **lower** bounds; the set
/// is a θ-approximation of the true top k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxNra {
    theta: f64,
}

impl ApproxNra {
    /// An NRA run tolerating a `(1 + theta)` grade slack.
    pub fn new(theta: f64) -> ApproxNra {
        ApproxNra { theta }
    }

    /// The configured slack.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

impl TopKAlgorithm for ApproxNra {
    fn name(&self) -> &'static str {
        "approx-nra"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate_theta(self.theta)?;
        let result = nra_core(sources, scoring, k, self.theta)?;
        Ok(TopKResult {
            answers: result
                .answers
                .iter()
                .map(|b| fmdb_core::score::ScoredObject::new(b.id, b.lower))
                .collect(),
            stats: result.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::nra::NraLowerBound;
    use crate::algorithms::ta::ThresholdAlgorithm;
    use crate::oracle::all_grades;
    use crate::source::VecSource;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::tnorms::Min;

    fn run(algo: &dyn TopKAlgorithm, sources: &mut [VecSource], k: usize) -> TopKResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, &Min, k).unwrap()
    }

    #[test]
    fn theta_zero_is_bit_identical_to_the_exact_algorithms() {
        for seed in [3u64, 17, 99] {
            let mut a = independent_uniform(400, 2, seed);
            let exact_ta = run(&ThresholdAlgorithm, &mut a, 7);
            let mut b = independent_uniform(400, 2, seed);
            let approx_ta = run(&ApproxTa::new(0.0), &mut b, 7);
            assert_eq!(exact_ta.answers, approx_ta.answers);
            assert_eq!(exact_ta.stats, approx_ta.stats);

            let mut c = independent_uniform(400, 2, seed);
            let exact_nra = run(&NraLowerBound, &mut c, 7);
            let mut d = independent_uniform(400, 2, seed);
            let approx_nra = run(&ApproxNra::new(0.0), &mut d, 7);
            assert_eq!(exact_nra.answers, approx_nra.answers);
            assert_eq!(exact_nra.stats, approx_nra.stats);
        }
    }

    #[test]
    fn slack_saves_accesses_and_respects_the_guarantee() {
        let k = 10;
        let mut a = independent_uniform(4000, 2, 42);
        let exact = run(&ThresholdAlgorithm, &mut a, k);
        let mut b = independent_uniform(4000, 2, 42);
        let approx = run(&ApproxTa::new(0.5), &mut b, k);
        assert!(
            approx.stats.database_access_cost() <= exact.stats.database_access_cost(),
            "θ = 0.5 must not cost more than exact TA: {} vs {}",
            approx.stats,
            exact.stats
        );

        let mut c = independent_uniform(4000, 2, 42);
        let mut refs: Vec<&mut dyn GradedSource> =
            c.iter_mut().map(|s| s as &mut dyn GradedSource).collect();
        let truth = all_grades(&mut refs, &Min);
        let mut grades: Vec<f64> = truth.values().map(|g| g.value()).collect();
        grades.sort_by(|x, y| y.total_cmp(x));
        let kth = grades[k - 1];
        for answer in &approx.answers {
            assert!(
                truth[&answer.id].value() * 1.5 + 1e-9 >= kth,
                "answer {} at {} violates the (1+θ) guarantee vs k-th {}",
                answer.id,
                truth[&answer.id],
                kth
            );
        }
    }

    #[test]
    fn invalid_theta_is_rejected() {
        let mut sources = independent_uniform(10, 2, 1);
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        assert!(matches!(
            ApproxTa::new(-1.0).top_k(&mut refs, &Min, 2),
            Err(AlgoError::InvalidRequest(_))
        ));
        assert!(matches!(
            ApproxNra::new(f64::INFINITY).top_k(&mut refs, &Min, 2),
            Err(AlgoError::InvalidRequest(_))
        ));
    }
}
