//! Criterion benchmarks: the batched, parallel [`Engine`] vs scalar A₀.
//!
//! In-memory `VecSource` accesses cost nanoseconds, so the engine's
//! value shows where it matters: against *remote* subsystems — the
//! paper's actual setting, Garlic middleware over autonomous systems
//! like QBIC (§4). [`RemoteSource`] models that: every sorted-access
//! call is one subsystem round-trip (a real `thread::sleep`, so
//! overlapping it genuinely helps), while random access is a local
//! index probe (§4.2's "through an index"). Scalar A₀ pays one
//! round-trip per object; the engine fetches whole batches per
//! round-trip and its per-stream workers keep the `m = 4` streams'
//! round-trips in flight concurrently.
//!
//! The raw in-memory case is also measured so the engine's overhead on
//! trivially cheap sources stays visible. This is a wall-clock
//! companion, *not* an access-count claim: engine and scalar charge
//! identical `sorted`/`random` counts by construction (the equivalence
//! suite enforces it).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::engine::{Engine, EngineConfig};
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::request::{TopKQuery, TopKRequest};
use fmdb_middleware::source::{GradedSource, Oid, SourceInfo, VecSource};
use fmdb_middleware::workload::independent_uniform;

const N: usize = 1 << 16; // 65,536
const M: usize = 4;
const K: usize = 10;

/// One subsystem round-trip. `thread::sleep` granularity means the
/// effective delay lands near 70µs — a LAN round-trip.
const ROUND_TRIP: Duration = Duration::from_micros(5);

/// A [`VecSource`] behind a simulated network: each sorted-access
/// *call* — scalar or batched — costs one round-trip, so a batch of
/// `n` objects amortizes the latency `n`-fold, exactly the economics
/// that make middleware batch. Random access probes a local index and
/// pays no round-trip.
struct RemoteSource {
    inner: VecSource,
}

impl RemoteSource {
    fn new(inner: VecSource) -> RemoteSource {
        RemoteSource { inner }
    }
}

impl GradedSource for RemoteSource {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        std::thread::sleep(ROUND_TRIP);
        self.inner.sorted_next()
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        self.inner.random_access(oid)
    }

    fn rewind(&mut self) {
        self.inner.rewind();
    }

    fn info(&self) -> SourceInfo {
        self.inner.info()
    }

    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        std::thread::sleep(ROUND_TRIP);
        // One round-trip returns the whole batch; the per-object
        // accounting (one sorted access each) is unchanged.
        self.inner.sorted_batch(n)
    }
}

fn remote_request() -> TopKRequest {
    let mut builder = TopKQuery::compose();
    for source in independent_uniform(N, M, 7) {
        builder = builder.source(RemoteSource::new(source));
    }
    builder.scoring(Min).k(K).request().expect("valid request")
}

fn bench_remote(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_remote");
    // Scalar A₀ pays ~30k round-trips per run (seconds); keep the
    // sample count low.
    group.sample_size(3);

    group.bench_function(BenchmarkId::new("scalar_fa", "remote"), |b| {
        let mut sources: Vec<RemoteSource> = independent_uniform(N, M, 7)
            .into_iter()
            .map(RemoteSource::new)
            .collect();
        b.iter(|| {
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            FaginsAlgorithm
                .top_k(&mut refs, &Min, K)
                .expect("valid run")
        });
    });

    group.bench_function(BenchmarkId::new("engine_batched", "remote"), |b| {
        let engine = Engine::new(EngineConfig::serial());
        let request = remote_request();
        b.iter(|| engine.run(&request).expect("valid run"));
    });

    group.bench_function(BenchmarkId::new("engine_parallel", "remote"), |b| {
        let engine = Engine::default();
        let request = remote_request();
        b.iter(|| engine.run(&request).expect("valid run"));
    });

    group.finish();
}

fn bench_in_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_mem");
    group.sample_size(10);

    // Raw in-memory sources: accesses are ~free, so this measures the
    // engine's own overhead (threads, channels, mutexes).
    group.bench_function(BenchmarkId::new("scalar_fa", "mem"), |b| {
        let mut sources = independent_uniform(N, M, 7);
        b.iter(|| {
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            FaginsAlgorithm
                .top_k(&mut refs, &Min, K)
                .expect("valid run")
        });
    });

    group.bench_function(BenchmarkId::new("engine_parallel", "mem"), |b| {
        let engine = Engine::new(EngineConfig {
            cache_capacity: 0,
            ..EngineConfig::DEFAULT
        });
        let request = TopKQuery::compose()
            .sources(independent_uniform(N, M, 7))
            .scoring(Min)
            .k(K)
            .request()
            .expect("valid request");
        b.iter(|| engine.run(&request).expect("valid run"));
    });

    group.finish();
}

/// Intra-query sharding on a large in-memory corpus: the serial engine
/// vs partition-parallel TA at 2/4/8 shards. The corpus is ≥ 100k
/// objects so each shard's scan is long enough to amortize worker
/// setup; on a multi-core host 4 shards should cut wall-clock by ≥ 2×
/// (on a single-core host the sharded rows can only tie or lose —
/// thread setup with no extra hardware is pure overhead).
fn bench_sharded(c: &mut Criterion) {
    const N_SHARDED: usize = 1 << 17; // 131,072 objects
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);

    // Sharding rides on the request policy; the engines themselves are
    // default-configured.
    let request = |policy: ExecPolicy| {
        TopKQuery::compose()
            .sources(independent_uniform(N_SHARDED, 2, 7))
            .scoring(Min)
            .k(K)
            .policy(policy)
            .request()
            .expect("valid request")
    };

    group.bench_function(BenchmarkId::new("engine_serial", "ta"), |b| {
        let engine = Engine::new(EngineConfig::serial());
        let request = request(ExecPolicy::new());
        b.iter(|| {
            engine
                .run_algorithm(&ThresholdAlgorithm, &request)
                .expect("valid run")
        });
    });

    for shards in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("engine_sharded", shards), |b| {
            let engine = Engine::default();
            let request = request(ExecPolicy::new().sharded_over(shards));
            b.iter(|| {
                engine
                    .run_algorithm(&ThresholdAlgorithm, &request)
                    .expect("valid run")
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_remote, bench_in_memory, bench_sharded);
criterion_main!(benches);
