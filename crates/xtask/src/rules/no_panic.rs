//! Rule `no-panic` (L1): library code must not contain panicking
//! shortcuts — `.unwrap()`, `.expect(…)`, `panic!(…)`, `todo!(…)`,
//! `unimplemented!(…)`.
//!
//! Scope policy:
//!
//! * only [`FileClass::Lib`](crate::workspace::FileClass) files are
//!   checked — tests, benches, examples, and build scripts may
//!   fail fast by design;
//! * `#[cfg(test)]` regions inside library files are exempt (the
//!   driver filters those);
//! * the `bench` crate is exempt wholesale: it is the experiment
//!   harness, where aborting on a malformed configuration is the
//!   correct behaviour;
//! * a justified `// lint:allow(no-panic): …` suppresses a finding
//!   (e.g. an invariant the type system already guarantees).
//!
//! The runtime complement of this rule is `fmdb-core`'s
//! `debug_assert!` layer: panics that *should* exist (invariant
//! checks) live there, compiled out of release builds.

use crate::diagnostics::Diagnostic;
use crate::workspace::{FileClass, SourceFile};

const RULE: &str = "no-panic";

/// Crates exempt from this rule (experiment harnesses).
const EXEMPT_CRATES: &[&str] = &["bench"];

/// Macros that panic by design.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Checks one file.
pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.class != FileClass::Lib || EXEMPT_CRATES.contains(&file.crate_dir.as_str()) {
        return Vec::new();
    }
    let code = &file.code;
    let mut diags = Vec::new();
    for (i, token) in code.iter().enumerate() {
        if file.in_test_region(token.line) {
            continue;
        }
        let prev = i.checked_sub(1).and_then(|p| code.get(p));
        let next = code.get(i + 1).map(|t| t.text.as_str());
        match token.text.as_str() {
            // `.unwrap()` / `.expect(…)`: method-call syntax only, so
            // idents like `unwrap_or` or attribute `#[expect]` don't
            // match.
            "unwrap" | "expect"
                if prev.map(|t| t.text.as_str()) == Some(".") && next == Some("(") =>
            {
                diags.push(
                    Diagnostic::new(
                        RULE,
                        &file.rel_path,
                        token.line,
                        token.col,
                        format!("`.{}()` in library code can panic", token.text),
                    )
                    .with_help(
                        "propagate an error instead, or add \
                         `// lint:allow(no-panic): <why this cannot fail>`",
                    ),
                );
            }
            m if PANIC_MACROS.contains(&m) && next == Some("!") => {
                diags.push(
                    Diagnostic::new(
                        RULE,
                        &file.rel_path,
                        token.line,
                        token.col,
                        format!("`{m}!` in library code aborts the caller"),
                    )
                    .with_help(
                        "return an error, use `debug_assert!` for invariants, or add \
                         `// lint:allow(no-panic): <justification>`",
                    ),
                );
            }
            _ => {}
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::analyze;
    use std::path::PathBuf;

    fn check_src(path: &str, src: &str) -> Vec<Diagnostic> {
        let file = analyze(PathBuf::from(path), src);
        check(&file)
            .into_iter()
            .filter(|d| !file.allowed(d.rule, d.line))
            .collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    if a == 0 { panic!(\"boom\") }\n    todo!()\n}\n";
        let diags = check_src("crates/core/src/f.rs", src);
        assert_eq!(diags.len(), 4);
        assert_eq!(diags[0].line, 2);
        assert!(diags[2].message.contains("panic!"));
    }

    #[test]
    fn ignores_non_panicking_lookalikes() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap_or(0)\n}\nfn g() -> u8 { let unwrap = 1; unwrap }\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn ignores_strings_and_comments() {
        let src = "fn f() {\n    // never call x.unwrap() here\n    let s = \"panic!\";\n    let _ = s;\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn exempts_cfg_test_regions() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn exempts_test_bench_and_example_files() {
        let src = "fn t() { Some(1).unwrap(); }\n";
        assert!(check_src("crates/core/tests/t.rs", src).is_empty());
        assert!(check_src("crates/core/benches/b.rs", src).is_empty());
        assert!(check_src("examples/demo.rs", src).is_empty());
    }

    #[test]
    fn exempts_the_bench_crate() {
        let src = "fn harness() { std::fs::read(\"x\").unwrap(); }\n";
        assert!(check_src("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn honors_justified_suppressions() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic): x is Some by construction two lines up\n    x.unwrap()\n}\n";
        assert!(check_src("crates/core/src/f.rs", src).is_empty());
    }

    #[test]
    fn unjustified_suppression_does_not_silence() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(no-panic)\n    x.unwrap()\n}\n";
        assert_eq!(check_src("crates/core/src/f.rs", src).len(), 1);
    }
}
