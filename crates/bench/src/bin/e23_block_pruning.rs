//! Standalone runner for experiment `e23_block_pruning`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e23_block_pruning::run(&cfg).print();
}
