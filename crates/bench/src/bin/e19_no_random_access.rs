//! Standalone runner for experiment `e19_no_random_access`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e19_no_random_access::run(&cfg).print();
}
