//! Filter-and-refine k-NN over histograms using the \[HSE+95\]
//! distance-bounding filter (§2.1).
//!
//! "We see from (2) that we can restrict our attention to objects whose
//! short color vector ŷ is close to the short color vector x̂.
//! Intuitively, x̂ is being used as a 'filter' to eliminate from
//! consideration objects … where d̂(ŷ, x̂) is too large."
//!
//! Search: compute the cheap lower bound `d̂` to every object (O(k) per
//! object), then refine candidates in ascending `d̂` order with the
//! expensive O(k²) quadratic-form distance, stopping as soon as the
//! next lower bound exceeds the current k-th best exact distance. The
//! lower-bound property guarantees **zero false dismissals**; the
//! fraction of full-distance computations avoided is experiment E7's
//! headline number.

use std::fmt;

use fmdb_media::bounding::{BoundError, BoundedDistance, ShortVector};
use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::{DistanceError, HistogramDistance};

use crate::geometry::GeometryError;
use crate::rtree::RTree;

/// Error raised by the filter-refine index.
#[derive(Debug, Clone)]
pub enum FilterError {
    /// Distance bounding failed.
    Bound(BoundError),
    /// Exact distance failed.
    Distance(DistanceError),
    /// Short-vector index failure.
    Index(GeometryError),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::Bound(e) => write!(f, "{e}"),
            FilterError::Distance(e) => write!(f, "{e}"),
            FilterError::Index(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for FilterError {}

impl From<BoundError> for FilterError {
    fn from(e: BoundError) -> Self {
        FilterError::Bound(e)
    }
}

impl From<DistanceError> for FilterError {
    fn from(e: DistanceError) -> Self {
        FilterError::Distance(e)
    }
}

impl From<GeometryError> for FilterError {
    fn from(e: GeometryError) -> Self {
        FilterError::Index(e)
    }
}

/// Per-query cost of a filter-refine search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Cheap lower-bound evaluations — equal to the number of objects
    /// for the linear filter; far fewer with the short-vector index.
    pub filter_evaluations: u64,
    /// Expensive full-distance evaluations actually performed.
    pub full_evaluations: u64,
    /// Short-vector index nodes visited (0 for the linear filter).
    pub index_nodes: u64,
}

impl FilterStats {
    /// Fraction of full distances avoided relative to a plain scan.
    pub fn savings(&self) -> f64 {
        if self.filter_evaluations == 0 {
            0.0
        } else {
            1.0 - self.full_evaluations as f64 / self.filter_evaluations as f64
        }
    }
}

/// A filter-refine index over a fixed set of histograms.
#[derive(Debug, Clone)]
pub struct FilterRefineIndex {
    bounded: BoundedDistance,
    histograms: Vec<ColorHistogram>,
    shorts: Vec<ShortVector>,
    /// 3-dim R-tree over the short vectors — "we could potentially have
    /// a multidimensional index on short color vectors" (§2.1).
    short_index: RTree,
}

impl FilterRefineIndex {
    /// Builds the index: derives the filter for `space` and projects
    /// every histogram to its short vector.
    pub fn build(
        space: &ColorSpace,
        histograms: Vec<ColorHistogram>,
    ) -> Result<FilterRefineIndex, FilterError> {
        let bounded = BoundedDistance::for_space(space)?;
        let shorts = histograms
            .iter()
            .map(|h| bounded.filter.project(h))
            .collect::<Result<Vec<_>, _>>()?;
        let mut short_index = RTree::new(3)?;
        for (i, s) in shorts.iter().enumerate() {
            short_index.insert(&s.coords, i as u64)?;
        }
        Ok(FilterRefineIndex {
            bounded,
            histograms,
            shorts,
            short_index,
        })
    }

    /// Exact k-NN through the short-vector **R-tree**: candidates are
    /// streamed by ascending lower bound from the 3-dim index instead
    /// of sorting all N lower bounds — the fully indexed version of
    /// [`FilterRefineIndex::knn`].
    pub fn knn_indexed(
        &self,
        query: &ColorHistogram,
        k: usize,
    ) -> Result<(Vec<(usize, f64)>, FilterStats), FilterError> {
        let mut stats = FilterStats::default();
        if k == 0 || self.histograms.is_empty() {
            return Ok((Vec::new(), stats));
        }
        let q_short = self.bounded.filter.project(query)?;
        let mut stream = self.short_index.nearest_iter(&q_short.coords)?;

        let mut result: Vec<(usize, f64)> = Vec::new();
        let mut kth = f64::INFINITY;
        for neighbor in stream.by_ref() {
            // neighbor.distance IS d̂ (the scale is baked into the
            // stored coordinates).
            if result.len() == k && neighbor.distance > kth {
                break;
            }
            let i = neighbor.id as usize;
            let d = self.bounded.full.distance(query, &self.histograms[i])?;
            stats.full_evaluations += 1;
            if result.len() < k || d < kth {
                result.push((i, d));
                result.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("finite distances")
                        .then(a.0.cmp(&b.0))
                });
                result.truncate(k);
                if result.len() == k {
                    kth = result[k - 1].1;
                }
            }
        }
        let access = stream.access();
        stats.index_nodes = access.nodes_visited;
        stats.filter_evaluations = access.distance_computations;
        Ok((result, stats))
    }

    /// Number of indexed histograms.
    pub fn len(&self) -> usize {
        self.histograms.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.histograms.is_empty()
    }

    /// The `k` nearest histograms to `query` under the exact
    /// quadratic-form distance, answered with filter-and-refine.
    ///
    /// Returns `(index, exact_distance)` pairs in ascending distance,
    /// plus the cost statistics.
    pub fn knn(
        &self,
        query: &ColorHistogram,
        k: usize,
    ) -> Result<(Vec<(usize, f64)>, FilterStats), FilterError> {
        let mut stats = FilterStats::default();
        if k == 0 || self.histograms.is_empty() {
            return Ok((Vec::new(), stats));
        }
        let q_short = self.bounded.filter.project(query)?;
        // Filter phase: lower bounds to every object.
        let mut order: Vec<(f64, usize)> = self
            .shorts
            .iter()
            .enumerate()
            .map(|(i, s)| (q_short.distance(s), i))
            .collect();
        stats.filter_evaluations = order.len() as u64;
        order.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("finite bounds")
                .then(a.1.cmp(&b.1))
        });

        // Refine phase in ascending lower-bound order.
        let mut result: Vec<(usize, f64)> = Vec::new();
        let mut kth = f64::INFINITY;
        for (lower, i) in order {
            if result.len() == k && lower > kth {
                break; // d ≥ d̂ > kth for everything that follows.
            }
            let d = self.bounded.full.distance(query, &self.histograms[i])?;
            stats.full_evaluations += 1;
            if result.len() < k || d < kth {
                result.push((i, d));
                result.sort_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("finite distances")
                        .then(a.0.cmp(&b.0))
                });
                result.truncate(k);
                if result.len() == k {
                    kth = result[k - 1].1;
                }
            }
        }
        Ok((result, stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmdb_media::color::Rgb;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_histograms(space: &ColorSpace, n: usize, seed: u64) -> Vec<ColorHistogram> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                // Concentrated around a dominant color, like real images.
                let dominant = Rgb::new(rng.gen(), rng.gen(), rng.gen());
                let colors: Vec<Rgb> = (0..60)
                    .map(|_| {
                        Rgb::new(
                            dominant.r + rng.gen_range(-0.15..0.15),
                            dominant.g + rng.gen_range(-0.15..0.15),
                            dominant.b + rng.gen_range(-0.15..0.15),
                        )
                    })
                    .collect();
                ColorHistogram::from_colors(space, &colors).expect("non-empty colors")
            })
            .collect()
    }

    #[test]
    fn zero_false_dismissals_vs_brute_force() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 150, 5);
        let index = FilterRefineIndex::build(&space, hists.clone()).unwrap();
        let queries = random_histograms(&space, 10, 77);
        for q in &queries {
            let (got, _) = index.knn(q, 5).unwrap();
            // Brute-force reference.
            let mut expect: Vec<(usize, f64)> = hists
                .iter()
                .enumerate()
                .map(|(i, h)| (i, index.bounded.full.distance(q, h).unwrap()))
                .collect();
            expect.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
            expect.truncate(5);
            let got_d: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
            let exp_d: Vec<f64> = expect.iter().map(|&(_, d)| d).collect();
            for (g, e) in got_d.iter().zip(&exp_d) {
                assert!((g - e).abs() < 1e-9, "distance mismatch {g} vs {e}");
            }
        }
    }

    #[test]
    fn filter_avoids_some_full_distances() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 300, 9);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let q = random_histograms(&space, 1, 123).pop().unwrap();
        let (_, stats) = index.knn(&q, 5).unwrap();
        assert_eq!(stats.filter_evaluations, 300);
        assert!(stats.full_evaluations < 300, "no savings at all: {stats:?}");
        assert!(stats.savings() > 0.0);
    }

    #[test]
    fn indexed_knn_matches_linear_knn() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 250, 12);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let queries = random_histograms(&space, 8, 99);
        for q in &queries {
            let (linear, _) = index.knn(q, 6).unwrap();
            let (indexed, stats) = index.knn_indexed(q, 6).unwrap();
            let ld: Vec<f64> = linear.iter().map(|&(_, d)| d).collect();
            let id: Vec<f64> = indexed.iter().map(|&(_, d)| d).collect();
            for (a, b) in ld.iter().zip(&id) {
                assert!((a - b).abs() < 1e-9, "{ld:?} vs {id:?}");
            }
            // The index must examine far fewer short vectors than N.
            assert!(
                stats.filter_evaluations < 250,
                "index did not prune: {stats:?}"
            );
            assert!(stats.index_nodes > 0);
        }
    }

    #[test]
    fn edge_cases() {
        let space = ColorSpace::rgb_grid(3).unwrap();
        let hists = random_histograms(&space, 10, 3);
        let index = FilterRefineIndex::build(&space, hists).unwrap();
        let q = random_histograms(&space, 1, 4).pop().unwrap();
        assert!(index.knn(&q, 0).unwrap().0.is_empty());
        assert_eq!(index.knn(&q, 100).unwrap().0.len(), 10);
        assert!(index.knn_indexed(&q, 0).unwrap().0.is_empty());
        assert_eq!(index.knn_indexed(&q, 100).unwrap().0.len(), 10);
        assert_eq!(index.len(), 10);
    }
}
