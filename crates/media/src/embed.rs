//! The Cholesky-embedded Euclidean distance kernel (§2.1).
//!
//! The quadratic-form color distance of eq. (1),
//! `d(x, y) = √((x−y)ᵀA(x−y))`, costs O(k²) per pair — the cost §2.1
//! is all about avoiding. Following the \[HSE+95\]-style preprocessing
//! idea, factor `A = L·Lᵀ` **once** (O(k³)) and embed every histogram
//! as `x′ = Lᵀx` (O(k²), once per object). Then for any pair
//!
//! ```text
//! d(x, y)² = (x−y)ᵀ L Lᵀ (x−y) = ‖x′ − y′‖²,
//! ```
//!
//! a plain squared Euclidean norm: O(k) per pair with a branch-free,
//! cache-friendly inner loop.
//!
//! The QBIC similarity matrix is only positive *semi*definite on the
//! full space (it is PD on the zero-sum subspace where differences of
//! normalized histograms live), so `A` itself has no Cholesky factor.
//! [`EmbeddedSpace`] instead factors the ridge-projected matrix
//! `M = P·A·P + J` of [`SymMatrix::project_zero_sum_with_ridge`]: for
//! any zero-sum `z`, `zᵀMz = zᵀAz` **exactly** (`Pz = z` and
//! `zᵀJz = (Σzᵢ)²/n = 0`), so the embedded distance equals the
//! quadratic-form distance up to float round-off — no approximation is
//! involved. If even `M` is numerically on the PSD boundary, a tiny
//! relative ridge `εI` is added (ε ≤ 1e-8·max diag), which perturbs
//! squared distances by at most `ε·‖z‖²`.
//!
//! [`EmbeddedCorpus`] carries the idea to whole databases: a flat
//! structure-of-arrays column store of pre-embedded coordinates with a
//! batched kNN scan that (1) skips whole blocks via per-block
//! coordinate **zone maps** (the distance from the query to a block's
//! bounding box lower-bounds every member's distance), (2) prunes
//! single objects via the §2.1 short-vector bounding filter, then
//! (3) **early-abandons** the running squared sum against the current
//! k-th best distance, and (4) optionally fans the scan out over
//! worker threads. The abandon invariant: the running sum of squares
//! is monotone non-decreasing, so once a partial sum strictly exceeds
//! the current k-th best *squared* distance the object's final
//! distance is strictly larger too and it can never enter the top k —
//! results are identical to the brute-force scan, bit for bit. The
//! zone-map bound is computed with the *same* unrolled kernel in the
//! same accumulation order as the per-object distances (see
//! [`EmbeddedCorpus::block_lower_bound`]), which makes whole-block
//! skipping exact too, not just approximately safe.

use std::fmt;
use std::ops::Range;
use std::thread;

use fmdb_core::score::Score;
use fmdb_core::stats::GradeHistogram;

use crate::bounding::{BoundError, DistanceBound, ShortVector};
use crate::color::{ColorHistogram, ColorSpace};
use crate::distance::{DistanceError, HistogramDistance};
use crate::linalg::{Cholesky, LinalgError, SymMatrix};
use crate::scorer::DistanceScorer;

/// Relative ridge magnitudes tried (in order) when the projected
/// matrix is numerically on the PSD boundary.
const RIDGE_STEPS: [f64; 3] = [1e-12, 1e-10, 1e-8];

/// How many accumulated dimensions between early-abandon checks — a
/// multiple of the eight-lane unrolled kernel's width
/// ([`squared_block`]), so both scans accumulate in the same order
/// and abandoned/completed evaluations agree bitwise with the plain
/// scan.
const ABANDON_STRIDE: usize = 16;

/// Default zone-map block size: rows per per-block bounding box. Small
/// enough that a selective query skips most of a clustered corpus,
/// large enough that the O(k) bound check amortizes to a fraction of
/// one distance evaluation per block.
pub const DEFAULT_PRUNE_BLOCK: usize = 64;

/// Error raised by the embedding kernel.
#[derive(Debug, Clone)]
pub enum EmbedError {
    /// The (projected, ridged) similarity matrix never became
    /// positive definite — no embedding exists.
    NotPositiveDefinite {
        /// The largest relative ridge that was tried.
        max_ridge: f64,
    },
    /// A histogram's bin count does not match the embedded space.
    DimensionMismatch {
        /// The space's dimension `k`.
        expected: usize,
        /// The offending dimension.
        got: usize,
    },
    /// Deriving the §2.1 bounding filter failed.
    Bound(BoundError),
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::NotPositiveDefinite { max_ridge } => write!(
                f,
                "similarity matrix is not PD on the zero-sum subspace (ridge up to {max_ridge:e})"
            ),
            EmbedError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            EmbedError::Bound(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EmbedError {}

impl From<BoundError> for EmbedError {
    fn from(e: BoundError) -> Self {
        EmbedError::Bound(e)
    }
}

/// One block's squared-distance contribution, manually unrolled eight
/// lanes wide with **two independent accumulators**: each iteration
/// folds its eight squared lane differences pairwise and adds lanes
/// 0–3 into `s0` and lanes 4–7 into `s1`, so the loop-carried
/// dependency is a single add per accumulator and the FPU pipelines
/// the multiply-adds. The accumulators fold deterministically as
/// `s0 + s1` with the scalar tail accumulated after the fold. Every
/// distance path — the plain scan, the early-abandoning scan, the
/// zone-map bound, and [`euclidean`] — sums through this one helper,
/// so all of them agree bitwise.
#[inline(always)]
fn squared_block(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    let (mut s0, mut s1) = (0.0f64, 0.0f64);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        let d4 = xa[4] - xb[4];
        let d5 = xa[5] - xb[5];
        let d6 = xa[6] - xb[6];
        let d7 = xa[7] - xb[7];
        s0 += (d0 * d0 + d1 * d1) + (d2 * d2 + d3 * d3);
        s1 += (d4 * d4 + d5 * d5) + (d6 * d6 + d7 * d7);
    }
    let mut sum = s0 + s1;
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// The plain scalar squared-distance loop — the reference the unrolled
/// kernels are benchmarked against (`pruned_scan` bench group) and the
/// numerical oracle of the kernel tests. Not used by any scan path.
#[inline]
pub fn squared_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

/// The previous production kernel, four lanes with one accumulator
/// per lane, kept as a benchmark reference so the 8-wide kernel's win
/// stays measurable. Not used by any scan path.
#[inline]
pub fn squared_euclidean_4wide(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0, 0.0, 0.0);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = xa[0] - xb[0];
        let d1 = xa[1] - xb[1];
        let d2 = xa[2] - xb[2];
        let d3 = xa[3] - xb[3];
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    let mut sum = (s0 + s1) + (s2 + s3);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// The squared Euclidean distance between two embedded coordinate
/// slices. Accumulated block-by-block through [`squared_block`]'s
/// fixed eight-lane order, so it is bitwise identical to a completed
/// [`EmbeddedCorpus::squared_distance_abandoning`] evaluation.
#[inline]
pub fn squared_euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut sum = 0.0;
    let mut ca = a.chunks(ABANDON_STRIDE);
    let mut cb = b.chunks(ABANDON_STRIDE);
    for (qc, cc) in ca.by_ref().zip(cb.by_ref()) {
        sum += squared_block(qc, cc);
    }
    sum
}

/// The Euclidean distance between two embedded coordinate slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    squared_euclidean(a, b).sqrt()
}

/// A one-time Cholesky embedding of a similarity matrix: the O(k³)
/// factorization is paid at construction, after which
/// [`EmbeddedSpace::embed`] maps any histogram into the space where
/// the quadratic-form distance is plain Euclidean.
#[derive(Debug, Clone)]
pub struct EmbeddedSpace {
    k: usize,
    factor: Cholesky,
    ridge: f64,
}

impl EmbeddedSpace {
    /// Builds the embedding for an arbitrary similarity matrix that is
    /// PD on the zero-sum subspace (ridge-projecting it first; see the
    /// module docs for why that preserves histogram distances
    /// exactly).
    pub fn for_matrix(a: &SymMatrix) -> Result<EmbeddedSpace, EmbedError> {
        let k = a.dim();
        let projected = a.project_zero_sum_with_ridge();
        let mut ridge = 0.0;
        let mut attempt = projected.cholesky();
        if attempt.is_err() {
            let diag_max = (0..k).map(|i| projected.get(i, i)).fold(1e-12, f64::max);
            for eps in RIDGE_STEPS {
                ridge = eps * diag_max;
                let jittered = projected
                    .add_scaled(&SymMatrix::identity(k), ridge)
                    // lint:allow(no-panic): the identity matrix is built with this projection’s own dimension k
                    .expect("identity has matching dimension");
                attempt = jittered.cholesky();
                if attempt.is_ok() {
                    break;
                }
            }
        }
        match attempt {
            Ok(factor) => Ok(EmbeddedSpace { k, factor, ridge }),
            Err(LinalgError::NotPositiveDefinite { .. }) => Err(EmbedError::NotPositiveDefinite {
                max_ridge: RIDGE_STEPS[RIDGE_STEPS.len() - 1],
            }),
            Err(_) => unreachable!("cholesky only fails with NotPositiveDefinite"),
        }
    }

    /// Builds the embedding for a color space's QBIC similarity
    /// matrix.
    pub fn for_space(space: &ColorSpace) -> Result<EmbeddedSpace, EmbedError> {
        EmbeddedSpace::for_matrix(&space.similarity_matrix())
    }

    /// The embedded dimension `k` (equal to the histogram bin count).
    pub fn k(&self) -> usize {
        self.k
    }

    /// The ridge that was added to reach positive definiteness (0 for
    /// every well-conditioned QBIC matrix).
    pub fn ridge(&self) -> f64 {
        self.ridge
    }

    /// Embeds raw bin masses: `out = Lᵀ·bins`. O(k²).
    pub fn embed_into(&self, bins: &[f64], out: &mut [f64]) -> Result<(), EmbedError> {
        if bins.len() != self.k || out.len() != self.k {
            return Err(EmbedError::DimensionMismatch {
                expected: self.k,
                got: if bins.len() != self.k {
                    bins.len()
                } else {
                    out.len()
                },
            });
        }
        self.factor.transpose_mul_vec(bins, out);
        Ok(())
    }

    /// Embeds a histogram into the Euclidean space. O(k²).
    pub fn embed(&self, hist: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        let mut out = vec![0.0; self.k];
        self.embed_into(hist.bins(), &mut out)?;
        Ok(out)
    }
}

/// [`HistogramDistance`] through the embedding: numerically equal to
/// [`crate::distance::QuadraticFormDistance`] on normalized
/// histograms (see the module docs for the zero-sum argument and the
/// property suite in `tests/embed_equivalence.rs`).
///
/// Each call embeds both histograms (O(k²)), so this adapter is for
/// drop-in trait compatibility; the O(k) fast path needs pre-embedded
/// coordinates — use [`EmbeddedSpace::embed`] once per object and
/// [`euclidean`] per pair, or an [`EmbeddedCorpus`].
#[derive(Debug, Clone)]
pub struct EmbeddedDistance {
    space: EmbeddedSpace,
}

impl EmbeddedDistance {
    /// Wraps an embedded space.
    pub fn new(space: EmbeddedSpace) -> EmbeddedDistance {
        EmbeddedDistance { space }
    }

    /// The underlying embedding.
    pub fn space(&self) -> &EmbeddedSpace {
        &self.space
    }
}

impl HistogramDistance for EmbeddedDistance {
    fn distance(&self, x: &ColorHistogram, y: &ColorHistogram) -> Result<f64, DistanceError> {
        let check = |h: &ColorHistogram| -> Result<(), DistanceError> {
            if h.k() != self.space.k() {
                return Err(DistanceError::DimensionMismatch {
                    expected: self.space.k(),
                    got: h.k(),
                });
            }
            Ok(())
        };
        check(x)?;
        check(y)?;
        // lint:allow(no-panic): check(x) at function entry validated the dimension
        let ex = self.space.embed(x).expect("dimensions checked above");
        // lint:allow(no-panic): check(y) at function entry validated the dimension
        let ey = self.space.embed(y).expect("dimensions checked above");
        Ok(euclidean(&ex, &ey))
    }

    fn name(&self) -> String {
        format!("embedded(k={})", self.space.k())
    }
}

/// Cost counters for one [`EmbeddedCorpus`] kNN scan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Objects skipped by the §2.1 short-vector bounding filter
    /// without touching their embedded coordinates.
    pub filter_pruned: u64,
    /// Objects whose distance evaluation was cut short by the running
    /// sum exceeding the k-th best.
    pub abandoned: u64,
    /// Objects whose O(k) distance ran to completion.
    pub completed: u64,
    /// Whole zone-map blocks skipped because the query's distance to
    /// the block's bounding box already exceeded the k-th best.
    pub blocks_skipped: u64,
    /// Objects inside skipped blocks — never individually examined.
    /// Every scanned object lands in exactly one bucket, so
    /// `filter_pruned + abandoned + completed + block_pruned` equals
    /// the number of objects in the scanned range.
    pub block_pruned: u64,
}

impl ScanStats {
    /// Fraction of objects that never paid the full O(k) loop.
    pub fn savings(&self) -> f64 {
        let total = self.filter_pruned + self.abandoned + self.completed + self.block_pruned;
        if total == 0 {
            0.0
        } else {
            1.0 - self.completed as f64 / total as f64
        }
    }
}

impl std::ops::AddAssign for ScanStats {
    fn add_assign(&mut self, rhs: ScanStats) {
        self.filter_pruned += rhs.filter_pruned;
        self.abandoned += rhs.abandoned;
        self.completed += rhs.completed;
        self.blocks_skipped += rhs.blocks_skipped;
        self.block_pruned += rhs.block_pruned;
    }
}

/// A flat column store of pre-embedded histogram coordinates
/// (structure of arrays: one contiguous `n×k` coordinate block, one
/// `n×3` short-vector block, one bounding box per
/// [`EmbeddedCorpus::prune_block`] rows), with batched zone-map-pruned
/// early-abandoning kNN.
#[derive(Debug, Clone)]
pub struct EmbeddedCorpus {
    space: EmbeddedSpace,
    n: usize,
    k: usize,
    /// Object-major embedded coordinates (`n·k` entries; object `i`
    /// owns `coords[i·k .. (i+1)·k]`).
    coords: Vec<f64>,
    /// The §2.1 first-stage filter, when derivable: the bound plus a
    /// flat `n·3` block of short vectors.
    filter: Option<CorpusFilter>,
    /// Zone-map block size: rows per bounding box.
    prune_block: usize,
    /// Per-block coordinate minima (`⌈n/prune_block⌉·k` entries; block
    /// `b` owns `block_lo[b·k .. (b+1)·k]`), empty for an empty corpus.
    block_lo: Vec<f64>,
    /// Per-block coordinate maxima, same layout as `block_lo`.
    block_hi: Vec<f64>,
}

#[derive(Debug, Clone)]
struct CorpusFilter {
    bound: DistanceBound,
    /// Flat `n·3` scaled short-vector coordinates.
    shorts: Vec<f64>,
}

impl EmbeddedCorpus {
    /// Embeds every histogram into `space` (O(n·k²) once). No bounding
    /// filter — every scan pays at least the zone-map/abandon stages
    /// per object.
    pub fn build(
        space: EmbeddedSpace,
        hists: &[ColorHistogram],
    ) -> Result<EmbeddedCorpus, EmbedError> {
        let k = space.k();
        let mut coords = vec![0.0; hists.len() * k];
        for (h, chunk) in hists.iter().zip(coords.chunks_mut(k)) {
            space.embed_into(h.bins(), chunk)?;
        }
        let mut corpus = EmbeddedCorpus {
            space,
            n: hists.len(),
            k,
            coords,
            filter: None,
            prune_block: DEFAULT_PRUNE_BLOCK,
            block_lo: Vec::new(),
            block_hi: Vec::new(),
        };
        corpus.rebuild_zone_maps();
        Ok(corpus)
    }

    /// Rebuilds this corpus's zone maps at a different block size
    /// (clamped to ≥ 1) — the proptest grid and benchmarks sweep this;
    /// production uses [`DEFAULT_PRUNE_BLOCK`]. O(n·k).
    pub fn with_prune_block(mut self, block: usize) -> EmbeddedCorpus {
        self.prune_block = block.max(1);
        self.rebuild_zone_maps();
        self
    }

    /// The zone-map block size (rows per bounding box).
    pub fn prune_block(&self) -> usize {
        self.prune_block
    }

    /// Recomputes the per-block coordinate bounding boxes from the
    /// stored coordinates.
    fn rebuild_zone_maps(&mut self) {
        let blocks = self.n.div_ceil(self.prune_block.max(1));
        self.block_lo = vec![f64::INFINITY; blocks * self.k];
        self.block_hi = vec![f64::NEG_INFINITY; blocks * self.k];
        for i in 0..self.n {
            let b = i / self.prune_block;
            // i < n and n·k == coords.len(), so the products stay
            // within the existing allocation; the slice op
            // bounds-checks regardless.
            let row = &self.coords[i * self.k..(i + 1) * self.k];
            // b < ⌈n/prune_block⌉ and the zone-map vectors were sized
            // as blocks·k just above, so the product stays within
            // their length; the slice op bounds-checks regardless.
            let lo = &mut self.block_lo[b * self.k..(b + 1) * self.k];
            for (slot, &c) in lo.iter_mut().zip(row) {
                *slot = slot.min(c);
            }
            let hi = &mut self.block_hi[b * self.k..(b + 1) * self.k];
            for (slot, &c) in hi.iter_mut().zip(row) {
                *slot = slot.max(c);
            }
        }
    }

    /// A lower bound on the squared distance from `q` to **every**
    /// object of zone-map block `b`: the squared distance from `q` to
    /// the block's bounding box, i.e. to `q` clamped into
    /// `[lo, hi]` per dimension.
    ///
    /// The bound is computed by [`squared_euclidean`] over the clamped
    /// point — the same kernel, same accumulation order as the
    /// per-object distances. Per dimension the clamped difference is
    /// dominated by the true difference (`lo ≤ x ≤ hi` holds exactly,
    /// min/max never round, and f64 rounding is monotone), and summing
    /// pointwise-dominated terms in the *identical* association order
    /// keeps the domination through every intermediate rounding. So
    /// `block_lower_bound(q, b) ≤ squared_euclidean(q, member)` holds
    /// for the computed values themselves, not just the reals they
    /// approximate — a strict `bound > kth` skip can never drop an
    /// object the unpruned scan would have kept.
    fn block_lower_bound(&self, q: &[f64], b: usize, clamped: &mut [f64]) -> f64 {
        // lint:allow(unchecked-arith): b indexes an existing zone-map
        // block, so b·k stays within the blocks·k vectors; the slice
        // ops bounds-check regardless.
        let lo = &self.block_lo[b * self.k..(b + 1) * self.k];
        // lint:allow(unchecked-arith): same blocks·k sizing.
        let hi = &self.block_hi[b * self.k..(b + 1) * self.k];
        for (((slot, &q_d), &lo_d), &hi_d) in clamped.iter_mut().zip(q).zip(lo).zip(hi) {
            *slot = q_d.clamp(lo_d, hi_d);
        }
        squared_euclidean(q, clamped)
    }

    /// Builds the corpus for a color space **with** the §2.1
    /// short-vector bounding filter as the scan's first stage.
    pub fn build_filtered(
        color_space: &ColorSpace,
        hists: &[ColorHistogram],
    ) -> Result<EmbeddedCorpus, EmbedError> {
        let space = EmbeddedSpace::for_space(color_space)?;
        let mut corpus = EmbeddedCorpus::build(space, hists)?;
        let bound = DistanceBound::for_space(color_space)?;
        let mut shorts = vec![0.0; hists.len() * 3];
        for (h, chunk) in hists.iter().zip(shorts.chunks_mut(3)) {
            let s = bound.project(h)?;
            chunk.copy_from_slice(&s.coords);
        }
        corpus.filter = Some(CorpusFilter { bound, shorts });
        Ok(corpus)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the corpus holds no objects.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The embedded dimension `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The embedding shared by all stored objects.
    pub fn space(&self) -> &EmbeddedSpace {
        &self.space
    }

    /// Whether the §2.1 bounding filter is active as the scan's first
    /// stage.
    pub fn has_filter(&self) -> bool {
        self.filter.is_some()
    }

    /// The embedded coordinates of object `i`.
    pub fn embedded(&self, i: usize) -> &[f64] {
        // lint:allow(unchecked-arith): i < n and n·k == coords.len(),
        // so both products stay within the existing allocation's
        // length; the slice op bounds-checks the result regardless.
        &self.coords[i * self.k..(i + 1) * self.k]
    }

    /// The exact quadratic-form distance between stored objects `i`
    /// and `j` — O(k) instead of O(k²).
    pub fn distance_between(&self, i: usize, j: usize) -> f64 {
        euclidean(self.embedded(i), self.embedded(j))
    }

    /// Early-abandoning squared distance from an embedded query `q`
    /// (see [`EmbeddedSpace::embed`]) to stored object `i`: `None` as
    /// soon as the running sum strictly exceeds `threshold_sq`, else
    /// the exact squared distance.
    ///
    /// The sum is accumulated block-by-block in [`squared_block`]'s
    /// fixed eight-lane order — the same order [`squared_euclidean`]
    /// uses — so a completed evaluation is bitwise identical to the
    /// plain scan. The abandon check runs once per
    /// [`ABANDON_STRIDE`]-dimension block, not per lane, keeping the
    /// unrolled lanes free of branches;
    /// `threshold_sq = f64::INFINITY` never abandons.
    pub fn squared_distance_abandoning(
        &self,
        q: &[f64],
        i: usize,
        threshold_sq: f64,
    ) -> Option<f64> {
        debug_assert_eq!(q.len(), self.k);
        let coords = self.embedded(i);
        let mut sum = 0.0;
        let mut offset = 0;
        for (qc, cc) in q.chunks(ABANDON_STRIDE).zip(coords.chunks(ABANDON_STRIDE)) {
            sum += squared_block(qc, cc);
            offset += qc.len();
            if sum > threshold_sq && offset < self.k {
                return None;
            }
        }
        Some(sum)
    }

    /// The exact distance from `query` to every stored object: one
    /// O(k²) embedding, then n O(k) norms.
    pub fn distances(&self, query: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        let q = self.embed_query(query)?;
        Ok((0..self.n)
            .map(|i| euclidean(&q, self.embedded(i)))
            .collect())
    }

    /// Every stored object's `(oid, grade)` pair for retrieval around
    /// `query` — oid is the corpus index, grade the exact distance
    /// mapped through `scorer`. This is the one-shot export feeding a
    /// persistent graded store (the media layer cannot see the
    /// middleware's store types, so it hands over plain pairs and the
    /// caller — bench, garlic — does the persisting).
    pub fn graded_pairs(
        &self,
        query: &ColorHistogram,
        scorer: &dyn DistanceScorer,
    ) -> Result<Vec<(u64, Score)>, EmbedError> {
        let distances = self.distances(query)?;
        Ok(distances
            .into_iter()
            .enumerate()
            .map(|(i, d)| (i as u64, scorer.score(d)))
            .collect())
    }

    fn embed_query(&self, query: &ColorHistogram) -> Result<Vec<f64>, EmbedError> {
        self.space.embed(query)
    }

    /// An equi-depth grade histogram for query-by-`query` retrieval,
    /// estimated from a deterministic stride sample of the corpus —
    /// the planner's statistics hook for media sources with no
    /// materialized sorted list.
    ///
    /// Up to `sample` objects are probed (one O(k) norm each — a tiny
    /// fraction of a full scan for `sample ≪ n`), their distances
    /// mapped through `scorer`, and the resulting grades summarized by
    /// [`GradeHistogram::from_sample`] scaled to the full corpus size.
    /// The stride sample is deterministic, so repeated calls agree.
    pub fn grade_histogram(
        &self,
        query: &ColorHistogram,
        scorer: &dyn DistanceScorer,
        bins: usize,
        sample: usize,
    ) -> Result<GradeHistogram, EmbedError> {
        let q = self.embed_query(query)?;
        let take = sample.max(1).min(self.n);
        let stride = self.n.checked_div(take).unwrap_or(1).max(1);
        let grades: Vec<Score> = (0..self.n)
            .step_by(stride)
            .take(take)
            .map(|i| scorer.score(euclidean(&q, self.embedded(i))))
            .collect();
        Ok(GradeHistogram::from_sample(&grades, self.n, bins))
    }

    /// The `k_nearest` objects closest to `query` under the exact
    /// quadratic-form distance, by early-abandoning scan (plus the
    /// bounding-filter first stage when built with
    /// [`EmbeddedCorpus::build_filtered`]).
    ///
    /// Returns `(index, distance)` pairs in ascending
    /// `(distance, index)` order — identical to the brute-force
    /// [`EmbeddedCorpus::knn_brute`] oracle.
    pub fn knn(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let (heap, stats) = self.scan_range(&q, q_short.as_ref(), 0..self.n, k_nearest, true, true);
        Ok((finalize(heap), stats))
    }

    /// [`EmbeddedCorpus::knn`] with the zone-map block pruning turned
    /// off (filter and early abandoning still on) — the unpruned
    /// reference the `pruned_equivalence` suite and the bench group
    /// compare against. Answers are bit-identical to
    /// [`EmbeddedCorpus::knn`]; only the work differs.
    pub fn knn_unpruned(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let (heap, stats) =
            self.scan_range(&q, q_short.as_ref(), 0..self.n, k_nearest, true, false);
        Ok((finalize(heap), stats))
    }

    /// The brute-force oracle: every distance run to completion, no
    /// filter, no abandoning, no zone maps. Same ordering contract as
    /// [`EmbeddedCorpus::knn`].
    pub fn knn_brute(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let (heap, stats) = self.scan_range(&q, None, 0..self.n, k_nearest, false, false);
        Ok((finalize(heap), stats))
    }

    /// The threshold-aware scan hook: the `k_nearest` objects closest
    /// to `query` **among those within `max_distance`** — a caller
    /// holding a live threshold (a top-k algorithm's current k-th
    /// grade, mapped back to a distance) seeds the scan with it, so
    /// zone-map skipping, the §2.1 filter, and early abandoning all
    /// engage from the first row instead of waiting for `k_nearest`
    /// candidates to accumulate.
    ///
    /// Objects at exactly `max_distance` are kept. `pruned = false`
    /// runs the same bounded scan without zone maps (the equivalence
    /// oracle); both variants return bit-identical answers.
    pub fn knn_within(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
        max_distance: f64,
        pruned: bool,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let bound_sq = if max_distance.is_finite() && max_distance >= 0.0 {
            max_distance * max_distance
        } else {
            f64::INFINITY
        };
        let (heap, stats) = self.scan_bounded(
            &q,
            q_short.as_ref(),
            0..self.n,
            k_nearest,
            bound_sq,
            true,
            pruned,
        );
        Ok((finalize(heap), stats))
    }

    /// [`EmbeddedCorpus::knn`] fanned out over `threads` worker
    /// threads scanning contiguous chunks (the engine's
    /// scoped-thread/worker idiom). Each worker early-abandons against
    /// its own running k-th best; the merged result is identical to
    /// the serial scan.
    pub fn knn_parallel(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
        threads: usize,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let threads = threads.max(1).min(self.n.max(1));
        if threads == 1 {
            return self.knn(query, k_nearest);
        }
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let chunk = self.n.div_ceil(threads);
        let results: Vec<(Vec<(f64, usize)>, ScanStats)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let q = &q;
                    let q_short = q_short.as_ref();
                    let lo = t * chunk;
                    let hi = ((t + 1) * chunk).min(self.n);
                    scope.spawn(move || self.scan_range(q, q_short, lo..hi, k_nearest, true, true))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        let mut stats = ScanStats::default();
        let mut merged: Vec<(f64, usize)> = Vec::with_capacity(threads.saturating_mul(k_nearest));
        for (local, local_stats) in results {
            stats += local_stats;
            merged.extend(local);
        }
        sort_candidates(&mut merged);
        merged.truncate(k_nearest);
        Ok((finalize(merged), stats))
    }

    /// Splits the object indices into `shards` contiguous ranges using
    /// the same decomposition as the middleware's contiguous source
    /// partitioner: shard `s` owns `[⌈s·n/p⌉, ⌈(s+1)·n/p⌉)`, so object
    /// `i` lands in shard `min(p−1, ⌊i·p/n⌋)`. Ranges tile `0..n`
    /// exactly; sizes differ by at most one. With `shards = 0` a
    /// single full-corpus range is returned.
    pub fn shard_ranges(&self, shards: usize) -> Vec<Range<usize>> {
        contiguous_ranges(self.n, shards)
    }

    /// [`EmbeddedCorpus::knn`] restricted to objects whose index lies
    /// in `range` (clamped to the corpus) — the per-shard kernel for
    /// partitioned execution. Merging each shard's answers by
    /// ascending `(distance, index)` and truncating to `k_nearest`
    /// reproduces the full-corpus [`EmbeddedCorpus::knn`] exactly:
    /// every global winner is a winner of its own shard.
    pub fn knn_in_range(
        &self,
        query: &ColorHistogram,
        k_nearest: usize,
        range: Range<usize>,
    ) -> Result<(Vec<(usize, f64)>, ScanStats), EmbedError> {
        let q = self.embed_query(query)?;
        let q_short = self.query_short(query)?;
        let lo = range.start.min(self.n);
        let hi = range.end.min(self.n).max(lo);
        let (heap, stats) = self.scan_range(&q, q_short.as_ref(), lo..hi, k_nearest, true, true);
        Ok((finalize(heap), stats))
    }

    fn query_short(&self, query: &ColorHistogram) -> Result<Option<ShortVector>, EmbedError> {
        match &self.filter {
            Some(f) => Ok(Some(f.bound.project(query)?)),
            None => Ok(None),
        }
    }

    /// Scans `range`, returning up to `k_nearest` best
    /// `(squared_distance, index)` candidates in ascending
    /// `(distance, index)` order plus the cost counters.
    ///
    /// Early-abandon invariant: the running sum of squares only grows,
    /// so `partial > kth_sq` implies the final squared distance
    /// strictly exceeds the current k-th best and the object can be
    /// dropped without changing the result. Pruning and abandoning
    /// only ever engage once `k_nearest` candidates are held.
    ///
    /// Zone-map invariant (`prune`): a block is skipped only when its
    /// [`EmbeddedCorpus::block_lower_bound`] strictly exceeds the
    /// current k-th best squared distance. Within one scan indices only
    /// grow, so a later object can improve a *full* answer set only
    /// with a strictly smaller sum — and every member of a skipped
    /// block has `sum ≥ bound > kth_sq` (for the computed values; see
    /// `block_lower_bound`). Skipping therefore never changes the
    /// answer, only `blocks_skipped`/`block_pruned` and the work done.
    /// An edge block truncated by `range` is still validly bounded:
    /// its box covers a superset of the rows scanned.
    fn scan_range(
        &self,
        q: &[f64],
        q_short: Option<&ShortVector>,
        range: Range<usize>,
        k_nearest: usize,
        abandon: bool,
        prune: bool,
    ) -> (Vec<(f64, usize)>, ScanStats) {
        self.scan_bounded(q, q_short, range, k_nearest, f64::INFINITY, abandon, prune)
    }

    /// The scan workhorse behind [`EmbeddedCorpus::scan_range`] and
    /// [`EmbeddedCorpus::knn_within`]: like `scan_range`, but seeded
    /// with an initial squared-distance bound. While fewer than
    /// `k_nearest` candidates are held, `bound_sq` plays the role of
    /// the k-th best (inclusively: an object at exactly `bound_sq`
    /// is admitted), so all three pruning stages engage from the
    /// first row. `bound_sq = ∞` recovers the plain top-k scan.
    #[allow(clippy::too_many_arguments)]
    fn scan_bounded(
        &self,
        q: &[f64],
        q_short: Option<&ShortVector>,
        range: Range<usize>,
        k_nearest: usize,
        bound_sq: f64,
        abandon: bool,
        prune: bool,
    ) -> (Vec<(f64, usize)>, ScanStats) {
        let mut stats = ScanStats::default();
        let mut best: Vec<(f64, usize)> = Vec::with_capacity(k_nearest.saturating_add(1));
        if k_nearest == 0 {
            return (best, stats);
        }
        let shorts = self.filter.as_ref().map(|f| f.shorts.as_slice());
        let prune = prune && !self.block_lo.is_empty();
        let mut clamped = if prune { vec![0.0; self.k] } else { Vec::new() };
        let mut i = range.start;
        while i < range.end {
            let block = i / self.prune_block;
            // block < ⌈n/prune_block⌉ so the +1 cannot overflow; the
            // min clamps the product to the scanned range.
            let block_end = ((block + 1) * self.prune_block).min(range.end);
            if prune {
                // `best` is sorted and truncated, so its last element
                // is the current k-th best; below `k_nearest`
                // candidates the seeded bound stands in for it.
                let kth_sq = match best.last() {
                    Some(&(d, _)) if best.len() == k_nearest => d,
                    _ => bound_sq,
                };
                if self.block_lower_bound(q, block, &mut clamped) > kth_sq {
                    stats.blocks_skipped += 1;
                    stats.block_pruned += (block_end - i) as u64;
                    i = block_end;
                    continue;
                }
            }
            for j in i..block_end {
                let full = best.len() == k_nearest;
                // When full, `best.last()` is the current k-th best;
                // otherwise the seeded bound (inclusive via the
                // usize::MAX tie-break) gates admission.
                let (kth_sq, kth_tie) = match best.last() {
                    Some(&(d, tie)) if full => (d, tie),
                    _ => (bound_sq, usize::MAX),
                };
                // Stage 1: the §2.1 bounding filter. d ≥ d̂, so
                // d̂² > kth_sq ⇒ d² > kth_sq and the object cannot
                // improve the answer. `kth_sq` is infinite exactly
                // when neither a full candidate set nor a seeded
                // bound gates admission, and then nothing prunes.
                if kth_sq < f64::INFINITY {
                    if let (Some(q_s), Some(shorts)) = (q_short, shorts) {
                        let s = &shorts[j * 3..j * 3 + 3];
                        let lb_sq = (q_s.coords[0] - s[0]).powi(2)
                            + (q_s.coords[1] - s[1]).powi(2)
                            + (q_s.coords[2] - s[2]).powi(2);
                        if lb_sq > kth_sq {
                            stats.filter_pruned += 1;
                            continue;
                        }
                    }
                }
                // Stage 2: running-sum early abandoning (against the
                // seeded bound while the candidate set is short).
                let threshold_sq = if abandon { kth_sq } else { f64::INFINITY };
                let sum = match self.squared_distance_abandoning(q, j, threshold_sq) {
                    Some(sum) => sum,
                    None => {
                        stats.abandoned += 1;
                        continue;
                    }
                };
                stats.completed += 1;
                // The sentinel pair admits `sum ≤ bound_sq` inclusively
                // while the set is short (j < usize::MAX breaks the
                // tie); a full set demands a strict improvement.
                if (sum, j) < (kth_sq, kth_tie) {
                    best.push((sum, j));
                    sort_candidates(&mut best);
                    best.truncate(k_nearest);
                }
            }
            i = block_end;
        }
        (best, stats)
    }
}

/// The contiguous shard decomposition shared with the middleware's
/// contiguous source partitioner: shard `s` of `p` owns
/// `[⌈s·n/p⌉, ⌈(s+1)·n/p⌉)`. The ranges tile `0..n` exactly and their
/// sizes differ by at most one; `shards = 0` is treated as 1.
pub fn contiguous_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let p = shards.max(1);
    (0..p)
        .map(|s| {
            let lo = (s * n).div_ceil(p);
            let hi = ((s + 1) * n).div_ceil(p);
            lo..hi
        })
        .collect()
}

/// Ascending `(squared_distance, index)` with the index tie-break —
/// the same total order the brute-force oracle sorts by.
fn sort_candidates(v: &mut [(f64, usize)]) {
    v.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

/// Converts `(squared_distance, index)` candidates into the public
/// `(index, distance)` answer shape.
fn finalize(best: Vec<(f64, usize)>) -> Vec<(usize, f64)> {
    best.into_iter().map(|(d2, i)| (i, d2.sqrt())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::color::Rgb;
    use crate::distance::QuadraticFormDistance;

    fn space() -> ColorSpace {
        ColorSpace::rgb_grid(3).unwrap()
    }

    fn sample_histograms(space: &ColorSpace, count: usize, seed: u64) -> Vec<ColorHistogram> {
        let k = space.k();
        (0..count as u64)
            .map(|s| {
                let masses: Vec<f64> = (0..k)
                    .map(|i| {
                        let h =
                            (i as u64 + 1).wrapping_mul((s + seed).wrapping_mul(2654435761) + 97);
                        ((h % 1000) as f64 / 1000.0).powi(2) + 1e-6
                    })
                    .collect();
                ColorHistogram::from_masses(masses).unwrap()
            })
            .collect()
    }

    #[test]
    fn embedded_distance_equals_quadratic_form() {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let emb = EmbeddedDistance::new(EmbeddedSpace::for_space(&sp).unwrap());
        assert_eq!(emb.space().ridge(), 0.0, "QBIC matrix needs no ridge");
        let hists = sample_histograms(&sp, 12, 5);
        for x in &hists {
            for y in &hists {
                let a = qf.distance(x, y).unwrap();
                let b = emb.distance(x, y).unwrap();
                assert!((a - b).abs() < 1e-9, "qf {a} vs embedded {b}");
            }
        }
    }

    #[test]
    fn embedded_distance_checks_dimensions() {
        let emb = EmbeddedDistance::new(EmbeddedSpace::for_space(&space()).unwrap());
        let other = ColorHistogram::pure(&ColorSpace::rgb_grid(2).unwrap(), Rgb::RED);
        let ok = ColorHistogram::pure(&space(), Rgb::RED);
        assert!(matches!(
            emb.distance(&ok, &other),
            Err(DistanceError::DimensionMismatch { .. })
        ));
        assert!(emb.name().contains("embedded"));
    }

    #[test]
    fn unrolled_kernel_matches_scalar_reference() {
        // Awkward lengths exercise every tail path of the eight-lane
        // unroll: empty, sub-lane, lane-aligned, block-aligned, and
        // block+lane+tail combinations.
        for len in [0usize, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 20, 24, 31, 33, 64] {
            let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.37).sin()).collect();
            let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).cos()).collect();
            let scalar = squared_euclidean_scalar(&a, &b);
            let four = squared_euclidean_4wide(&a, &b);
            let unrolled = squared_euclidean(&a, &b);
            for (name, got) in [("4-wide", four), ("8-wide", unrolled)] {
                assert!(
                    (scalar - got).abs() <= 1e-12 * scalar.max(1.0),
                    "len {len}: scalar {scalar} vs {name} {got}"
                );
            }
            // The block helper alone agrees with the full function on
            // sub-block inputs (the abandoning scan relies on this).
            if len <= ABANDON_STRIDE {
                assert_eq!(unrolled.to_bits(), squared_block(&a, &b).to_bits());
            }
        }
    }

    #[test]
    fn abandoning_scan_is_bitwise_identical_to_plain_scan() {
        let sp = space();
        let hists = sample_histograms(&sp, 40, 13);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let q = corpus.embedded(0).to_vec();
        for i in 0..corpus.len() {
            let plain = squared_euclidean(&q, corpus.embedded(i));
            let full = corpus
                .squared_distance_abandoning(&q, i, f64::INFINITY)
                .expect("infinity never abandons");
            assert_eq!(plain.to_bits(), full.to_bits(), "object {i}");
        }
    }

    #[test]
    fn corpus_knn_matches_brute_force_and_counts_work_saved() {
        let sp = space();
        let hists = sample_histograms(&sp, 200, 3);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        assert!(corpus.has_filter());
        let queries = sample_histograms(&sp, 6, 99);
        for q in &queries {
            let (brute, bstats) = corpus.knn_brute(q, 7).unwrap();
            let (fast, fstats) = corpus.knn(q, 7).unwrap();
            assert_eq!(brute, fast, "early abandoning changed the answer");
            assert_eq!(bstats.completed, 200);
            assert_eq!(bstats.blocks_skipped, 0, "the oracle never prunes blocks");
            assert_eq!(
                fstats.filter_pruned
                    + fstats.abandoned
                    + fstats.completed
                    + fstats.block_pruned,
                200
            );
            assert!(
                fstats.filter_pruned + fstats.abandoned > 0,
                "no work was saved: {fstats:?}"
            );
            assert!(fstats.savings() > 0.0);
        }
    }

    #[test]
    fn zone_map_pruning_preserves_answers_across_block_sizes() {
        let sp = space();
        let hists = sample_histograms(&sp, 230, 21);
        let base = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let queries = sample_histograms(&sp, 4, 131);
        for block in [1usize, 3, 16, 64, 500] {
            let corpus = base.clone().with_prune_block(block);
            assert_eq!(corpus.prune_block(), block);
            for q in &queries {
                for k in [1usize, 7, 229, 230, 400] {
                    let (pruned, pstats) = corpus.knn(q, k).unwrap();
                    let (plain, ustats) = corpus.knn_unpruned(q, k).unwrap();
                    // Bit-identical answers — indices AND distances.
                    assert_eq!(pruned.len(), plain.len(), "block={block} k={k}");
                    for (a, b) in pruned.iter().zip(&plain) {
                        assert_eq!(a.0, b.0, "block={block} k={k}");
                        assert_eq!(a.1.to_bits(), b.1.to_bits(), "block={block} k={k}");
                    }
                    assert_eq!(ustats.blocks_skipped, 0);
                    assert_eq!(ustats.block_pruned, 0);
                    assert_eq!(
                        pstats.filter_pruned
                            + pstats.abandoned
                            + pstats.completed
                            + pstats.block_pruned,
                        230,
                        "block={block} k={k}: every object lands in one bucket"
                    );
                }
            }
        }
    }

    #[test]
    fn zone_maps_skip_blocks_on_selective_scans() {
        // A tight query against a small k: most blocks cannot beat the
        // k-th best, so whole blocks must be skipped.
        let sp = space();
        let hists = sample_histograms(&sp, 512, 33);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists)
            .unwrap()
            .with_prune_block(16);
        let q = &hists[5];
        let (_, stats) = corpus.knn(q, 1).unwrap();
        assert!(
            stats.blocks_skipped > 0,
            "a 1-NN self-query must skip blocks: {stats:?}"
        );
        assert_eq!(
            stats.block_pruned,
            // Each fully-skipped block covers prune_block rows except a
            // possible edge block.
            stats.blocks_skipped * 16,
            "512 divides into whole 16-row blocks"
        );
    }

    #[test]
    fn bounded_scan_matches_filtered_unbounded_scan() {
        let sp = space();
        let hists = sample_histograms(&sp, 180, 47);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists)
            .unwrap()
            .with_prune_block(8);
        let q = &sample_histograms(&sp, 1, 7)[0];
        let (all, _) = corpus.knn(q, 180).unwrap();
        for cut in [5usize, 40, 120] {
            // A bound strictly between two attained distances: no
            // boundary object, so sqrt/square rounding cannot flip
            // membership.
            let max_distance = (all[cut].1 + all[cut + 1].1) / 2.0;
            assert!(all[cut].1 < max_distance && max_distance < all[cut + 1].1);
            let want: Vec<(usize, f64)> = all.iter().copied().take(cut + 1).take(25).collect();
            let (bounded, bstats) = corpus.knn_within(q, 25, max_distance, true).unwrap();
            let (oracle, ostats) = corpus.knn_within(q, 25, max_distance, false).unwrap();
            assert_eq!(bounded, oracle, "pruned vs unpruned bounded scan");
            assert_eq!(bounded, want, "cut={cut}");
            assert_eq!(ostats.blocks_skipped, 0);
            assert_eq!(
                bstats.filter_pruned
                    + bstats.abandoned
                    + bstats.completed
                    + bstats.block_pruned,
                180
            );
        }
        // A non-finite bound degenerates to the plain top-k scan.
        let (unbounded, _) = corpus.knn_within(q, 25, f64::INFINITY, true).unwrap();
        let (plain, _) = corpus.knn(q, 25).unwrap();
        assert_eq!(unbounded, plain);
        // A zero bound admits only exact matches — none here — and the
        // seeded threshold prunes from the very first row.
        let (none, nstats) = corpus.knn_within(q, 25, 0.0, true).unwrap();
        assert!(none.is_empty(), "no object is at distance zero: {none:?}");
        assert!(
            nstats.blocks_skipped > 0,
            "a zero bound must skip blocks outright: {nstats:?}"
        );
    }

    #[test]
    fn degenerate_corpora_never_prune_wrongly() {
        let sp = space();
        // All-equal rows: every distance ties, zone boxes are points.
        let hist = sample_histograms(&sp, 1, 3).remove(0);
        let hists: Vec<ColorHistogram> = (0..40).map(|_| hist.clone()).collect();
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists)
            .unwrap()
            .with_prune_block(7);
        let q = &sample_histograms(&sp, 1, 9)[0];
        let (pruned, _) = corpus.knn(q, 5).unwrap();
        let (brute, _) = corpus.knn_brute(q, 5).unwrap();
        assert_eq!(pruned, brute, "ties must resolve by index, pruned or not");
        // k ≥ n: nothing may be pruned away.
        let (all_of_them, stats) = corpus.knn(q, 40).unwrap();
        assert_eq!(all_of_them.len(), 40);
        assert_eq!(stats.block_pruned, 0, "k ≥ n leaves no block skippable");
    }

    #[test]
    fn parallel_knn_matches_serial() {
        let sp = space();
        let hists = sample_histograms(&sp, 157, 8);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 41)[0];
        let (serial, _) = corpus.knn(q, 9).unwrap();
        for threads in [2, 3, 8, 64] {
            let (par, stats) = corpus.knn_parallel(q, 9, threads).unwrap();
            assert_eq!(serial, par, "threads={threads}");
            assert_eq!(
                stats.filter_pruned + stats.abandoned + stats.completed + stats.block_pruned,
                157
            );
        }
    }

    #[test]
    fn corpus_distances_match_pairwise_quadratic_form() {
        let sp = space();
        let qf = QuadraticFormDistance::new(sp.similarity_matrix());
        let hists = sample_histograms(&sp, 20, 17);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let ds = corpus.distances(&hists[4]).unwrap();
        for (i, h) in hists.iter().enumerate() {
            let want = qf.distance(&hists[4], h).unwrap();
            assert!((ds[i] - want).abs() < 1e-9);
            let between = corpus.distance_between(4, i);
            assert!((between - want).abs() < 1e-9);
        }
    }

    #[test]
    fn knn_edge_cases() {
        let sp = space();
        let hists = sample_histograms(&sp, 5, 2);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &hists[0];
        assert!(corpus.knn(q, 0).unwrap().0.is_empty());
        assert_eq!(corpus.knn(q, 50).unwrap().0.len(), 5);
        assert_eq!(corpus.knn_parallel(q, 50, 16).unwrap().0.len(), 5);
        // The query is object 0: it must rank itself first at ~0.
        let (res, _) = corpus.knn(q, 1).unwrap();
        assert_eq!(res[0].0, 0);
        assert!(res[0].1 < 1e-9);
        // Empty corpus.
        let empty = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &[]).unwrap();
        assert!(empty.is_empty());
        assert!(empty.knn(q, 3).unwrap().0.is_empty());
    }

    #[test]
    fn contiguous_ranges_tile_and_agree_with_the_floor_formula() {
        for n in [0usize, 1, 2, 5, 7, 16, 33, 157] {
            for p in [1usize, 2, 3, 4, 5, 8] {
                let ranges = contiguous_ranges(n, p);
                assert_eq!(ranges.len(), p);
                // Tiling: concatenation covers 0..n with no gaps.
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "n={n} p={p}");
                    assert!(r.end >= r.start);
                    next = r.end;
                }
                assert_eq!(next, n, "n={n} p={p}");
                // Balance and inverse: the owner of i is min(p−1, ⌊i·p/n⌋).
                for (s, r) in ranges.iter().enumerate() {
                    assert!(r.len() <= n.div_ceil(p), "n={n} p={p}");
                    for i in r.clone() {
                        assert_eq!((i * p / n).min(p - 1), s, "n={n} p={p} i={i}");
                    }
                }
            }
        }
        assert_eq!(contiguous_ranges(10, 0), vec![0..10]);
    }

    #[test]
    fn sharded_knn_merge_equals_full_scan() {
        let sp = space();
        let hists = sample_histograms(&sp, 143, 13);
        let corpus = EmbeddedCorpus::build_filtered(&sp, &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 77)[0];
        let (want, _) = corpus.knn(q, 9).unwrap();
        for shards in [1usize, 2, 3, 8] {
            let mut merged: Vec<(usize, f64)> = Vec::new();
            let mut scanned = 0;
            for r in corpus.shard_ranges(shards) {
                scanned += r.len();
                let (local, _) = corpus.knn_in_range(q, 9, r).unwrap();
                merged.extend(local);
            }
            assert_eq!(scanned, corpus.len(), "shards={shards}");
            merged.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            merged.truncate(9);
            assert_eq!(merged, want, "shards={shards}");
        }
        // Out-of-corpus ranges clamp instead of panicking.
        assert!(corpus
            .knn_in_range(q, 3, 1_000..2_000)
            .unwrap()
            .0
            .is_empty());
    }

    #[test]
    fn sampled_grade_histogram_tracks_the_full_distribution() {
        use crate::scorer::{DistanceScorer, ExpDecay};

        let sp = space();
        let hists = sample_histograms(&sp, 240, 19);
        let corpus = EmbeddedCorpus::build(EmbeddedSpace::for_space(&sp).unwrap(), &hists).unwrap();
        let q = &sample_histograms(&sp, 1, 55)[0];
        let scorer = ExpDecay::new(0.5).unwrap();

        let full = corpus.grade_histogram(q, &scorer, 16, 240).unwrap();
        let sampled = corpus.grade_histogram(q, &scorer, 16, 48).unwrap();
        assert_eq!(full.universe(), 240);
        assert_eq!(sampled.universe(), 240, "sample scales to the corpus");
        // The sampled selectivity curve tracks the exhaustive one.
        let truth: Vec<f64> = corpus
            .distances(q)
            .unwrap()
            .iter()
            .map(|&d| scorer.score(d).value())
            .collect();
        for g in [0.2, 0.5, 0.8] {
            let exact = truth.iter().filter(|&&t| t >= g).count() as f64 / 240.0;
            assert!(
                (full.fraction_above(g) - exact).abs() < 0.1,
                "full histogram off at {g}: {} vs {exact}",
                full.fraction_above(g)
            );
            assert!(
                (sampled.fraction_above(g) - exact).abs() < 0.2,
                "sampled histogram off at {g}: {} vs {exact}",
                sampled.fraction_above(g)
            );
        }
        // Determinism: the stride sample has no hidden state.
        let again = corpus.grade_histogram(q, &scorer, 16, 48).unwrap();
        assert_eq!(sampled, again);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let sp = space();
        let corpus = EmbeddedCorpus::build_filtered(&sp, &sample_histograms(&sp, 4, 1)).unwrap();
        let wrong = ColorHistogram::pure(&ColorSpace::rgb_grid(2).unwrap(), Rgb::RED);
        assert!(matches!(
            corpus.knn(&wrong, 2),
            Err(EmbedError::DimensionMismatch { .. })
        ));
        let es = EmbeddedSpace::for_space(&sp).unwrap();
        let mut out = vec![0.0; 3];
        assert!(matches!(
            es.embed_into(&[0.5; 27], &mut out),
            Err(EmbedError::DimensionMismatch { got: 3, .. })
        ));
    }

    #[test]
    fn synthetic_line_matrix_embeds_too() {
        // a_ij = 1 − |i−j|/(k−1) is conditionally PD on the zero-sum
        // subspace (1-D Euclidean distance matrix) — the shape the
        // distance bench sweeps at arbitrary k.
        let k = 16;
        let a = SymMatrix::from_fn(k, |i, j| {
            1.0 - (i as f64 - j as f64).abs() / (k as f64 - 1.0)
        })
        .unwrap();
        let es = EmbeddedSpace::for_matrix(&a).unwrap();
        let qf = QuadraticFormDistance::new(a);
        let x = ColorHistogram::from_masses((1..=k).map(|i| i as f64).collect()).unwrap();
        let y = ColorHistogram::from_masses((1..=k).rev().map(|i| i as f64).collect()).unwrap();
        let emb = EmbeddedDistance::new(es);
        let a_d = qf.distance(&x, &y).unwrap();
        let b_d = emb.distance(&x, &y).unwrap();
        assert!((a_d - b_d).abs() < 1e-9, "{a_d} vs {b_d}");
    }
}
