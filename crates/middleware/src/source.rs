//! The middleware access model (§4).
//!
//! A multimedia middleware system (Garlic) sits "on top of" autonomous
//! subsystems (QBIC, a relational DBMS, …) and can obtain grades from
//! them in exactly two ways:
//!
//! * **sorted access** — the subsystem streams `(object, grade)` pairs
//!   one by one in descending grade order until told to stop, and can
//!   later resume where it left off;
//! * **random access** — the subsystem reports the grade of one given
//!   object.
//!
//! [`GradedSource`] captures this interface. Everything the paper's
//! algorithms are allowed to learn about a subquery flows through it,
//! which is what makes the *database access cost* (sorted accesses +
//! random accesses) a meaningful complexity measure.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::stats::GradeHistogram;

/// Object identity, assumed (as Garlic had to ensure, §4.2) to be a
/// one-to-one mapping across all subsystems participating in a query.
pub type Oid = u64;

/// Static metadata a subsystem reports about one graded source.
///
/// Returned by [`GradedSource::info`]; replaces the former pair of
/// stringly `label()` / `universe_size()` trait methods with one
/// structured answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceInfo {
    /// A short label for diagnostics ("Color='red'", …).
    pub label: String,
    /// The number of objects in this subsystem's universe (the paper's
    /// `N` — all sources in one query share the same universe).
    pub universe_size: usize,
}

impl SourceInfo {
    /// Builds the metadata record.
    pub fn new(label: impl Into<String>, universe_size: usize) -> SourceInfo {
        SourceInfo {
            label: label.into(),
            universe_size,
        }
    }
}

impl fmt::Display for SourceInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (N={})", self.label, self.universe_size)
    }
}

/// A subsystem evaluating one atomic subquery, exposing sorted and
/// random access (§4).
///
/// Implementations grade a fixed universe of `info().universe_size`
/// objects; objects the subsystem has no opinion about have grade 0 and
/// still appear (last) in the sorted stream, exactly like a crisp
/// predicate grading non-matching rows with 0.
///
/// The batched entry points ([`GradedSource::sorted_batch`],
/// [`GradedSource::random_batch`]) exist so engines can amortize
/// per-call overhead; their defaults delegate to the scalar methods
/// one-for-one, so a batch of `n` costs exactly `n` scalar accesses and
/// implementations that override them must preserve that accounting.
pub trait GradedSource {
    /// Returns the next object under sorted access, or `None` when all
    /// objects have been streamed.
    ///
    /// Grades are non-increasing across successive calls; ties are
    /// broken by ascending object id so runs are deterministic.
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>>;

    /// Random access: the grade of `oid` under this subquery.
    ///
    /// An `oid` outside the universe grades 0 (the subsystem has never
    /// heard of the object, so the query is false about it).
    fn random_access(&mut self, oid: Oid) -> Score;

    /// Restarts sorted access from the highest grade.
    fn rewind(&mut self);

    /// Metadata about this source: label and universe size.
    fn info(&self) -> SourceInfo;

    /// Batched sorted access: up to `n` further objects of the sorted
    /// stream, in stream order. Fewer than `n` items (possibly none)
    /// means the stream is exhausted.
    ///
    /// Equivalent to — and by default implemented as — `n` calls to
    /// [`GradedSource::sorted_next`], so it costs one sorted access per
    /// item returned.
    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            match self.sorted_next() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        out
    }

    /// Batched random access: the grade of each oid in `oids`, in
    /// order.
    ///
    /// Equivalent to — and by default implemented as — one
    /// [`GradedSource::random_access`] per oid, so it costs
    /// `oids.len()` random accesses.
    fn random_batch(&mut self, oids: &[Oid]) -> Vec<Score> {
        oids.iter().map(|&oid| self.random_access(oid)).collect()
    }

    /// Splits this source into `shards` disjoint [`ShardedSource`]s
    /// under `partitioner`, or `None` when the implementation cannot
    /// materialize shards (a truly remote subsystem streams — it cannot
    /// be split without draining it first).
    ///
    /// Shard `i` streams exactly the objects with
    /// `partitioner.shard_of(oid, shards) == i`, in the same descending
    /// grade order as the parent stream, while random access still
    /// answers over the parent's full universe. The engine partitions
    /// every source of one query with the *same* partitioner, which is
    /// what keeps the per-shard threshold bound valid (see the
    /// `sharded` module).
    fn partition(
        &self,
        partitioner: SourcePartitioner,
        shards: usize,
    ) -> Option<Vec<ShardedSource>> {
        let _ = (partitioner, shards);
        None
    }

    /// An equi-depth grade histogram over this source's full
    /// distribution, or `None` when the implementation cannot produce
    /// one without charging accesses (a truly remote stream would have
    /// to be drained; its statistics come from prefixes or sampling
    /// instead — see `fmdb_core::stats::GradeHistogram::from_sample`).
    ///
    /// Implementations must not advance the sorted cursor or charge
    /// accesses: histograms are optimizer-time metadata, like
    /// [`GradedSource::info`].
    fn grade_histogram(&self, bins: usize) -> Option<GradeHistogram> {
        let _ = bins;
        None
    }

    /// Cumulative buffer-pool page counters, or `None` for purely
    /// in-memory sources (the default). A disk-backed source
    /// ([`crate::store::PagedSource`]) reports its pool's lifetime
    /// reads/hits/evictions here; the engine diffs snapshots around a
    /// request to fold per-request page traffic into
    /// [`crate::stats::AccessStats`]. Like [`GradedSource::info`],
    /// this must not charge accesses or advance the cursor.
    fn page_io(&self) -> Option<crate::stats::PageIoStats> {
        None
    }

    /// Tells the source the caller's live grade threshold: entries
    /// graded below `bound` can no longer affect the caller's answer
    /// (TA/NRA/CA feed their running τ / k-th grade here as it rises).
    ///
    /// Purely a *physical* hint — a source may use it to stop
    /// prefetching provably useless pages, but every access method
    /// keeps its exact contract: same entries, same grades, same
    /// charged accounting. The default does nothing.
    fn note_threshold(&mut self, bound: Score) {
        let _ = bound;
    }

    /// Bounded sorted drain: every remaining entry of the sorted
    /// stream with grade ≥ `bound`, in stream order, advancing the
    /// cursor past exactly those entries (the next [`sorted_next`]
    /// returns the first entry below `bound`, if any). Costs one
    /// sorted access per item returned — a skipped tail is never
    /// charged.
    ///
    /// Returns `None` when the implementation has no better strategy
    /// than the scalar loop (the default); callers then fall back to
    /// [`sorted_next`] and stop at the first below-bound grade, which
    /// is observationally identical. [`crate::store::PagedSource`]
    /// answers this from its persisted per-page grade bounds, skipping
    /// whole pages.
    ///
    /// [`sorted_next`]: GradedSource::sorted_next
    fn sorted_drain_bounded(&mut self, bound: Score) -> Option<Vec<ScoredObject<Oid>>> {
        let _ = bound;
        None
    }

    /// Random access for a caller that only consumes grades at or
    /// above `bound`: returns the exact grade when it is ≥ `bound`,
    /// and [`Score::ZERO`] when it is provably below. The caller must
    /// treat any return below `bound` as "cannot affect my answer",
    /// never as the object's true grade. Costs one random access
    /// either way, exactly like [`GradedSource::random_access`].
    ///
    /// The default calls `random_access` and clamps; a paged source
    /// can skip the page read entirely when its persisted bounds prove
    /// every grade on the page is below `bound`.
    fn random_access_bounded(&mut self, oid: Oid, bound: Score) -> Score {
        let grade = self.random_access(oid);
        if grade >= bound {
            grade
        } else {
            Score::ZERO
        }
    }
}

impl fmt::Debug for dyn GradedSource + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GradedSource({})", self.info())
    }
}

impl fmt::Debug for dyn GradedSource + Send + '_ {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "GradedSource({})", self.info())
    }
}

/// How a query's universe of oids is split into disjoint shards.
///
/// All sources of one sharded query must be split by the *same*
/// partitioner: per-shard TA bounds the grades of a shard's unseen
/// objects by the shard's stream bottoms, and that bound only holds if
/// "object o belongs to shard i" means the same thing in every source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourcePartitioner {
    /// `oid % shards` — balanced for arbitrary (sparse) oid spaces.
    Modulo,
    /// Contiguous index ranges over a dense `0..universe` oid space:
    /// shard `i` owns `[ceil(i·n/p), ceil((i+1)·n/p))`. Oids at or
    /// beyond `universe` fall into the last shard. This is the layout
    /// that lines up with contiguous storage scans
    /// (`EmbeddedCorpus::shard_ranges` in `fmdb-media`,
    /// `PrecomputedDistances::shard_ranges` in `fmdb-index` use the
    /// same formula).
    Contiguous {
        /// The dense universe size `n` the ranges are computed over.
        universe: usize,
    },
}

impl SourcePartitioner {
    /// The shard (in `0..shards`) that owns `oid`.
    pub fn shard_of(&self, oid: Oid, shards: usize) -> usize {
        let p = shards.max(1);
        match *self {
            SourcePartitioner::Modulo => (oid % p as u64) as usize,
            SourcePartitioner::Contiguous { universe } => {
                if universe == 0 {
                    return 0;
                }
                // floor(oid·p / n), clamped so out-of-universe oids
                // land in the last shard. u128 avoids overflow for
                // huge oids.
                let raw = (oid as u128 * p as u128 / universe as u128) as usize;
                raw.min(p - 1)
            }
        }
    }

    /// The contiguous index range shard `shard` owns under
    /// [`SourcePartitioner::Contiguous`] over a dense universe of size
    /// `universe`: `[ceil(i·n/p), ceil((i+1)·n/p))`.
    ///
    /// This is the inverse of [`SourcePartitioner::shard_of`]: for a
    /// dense oid space, `shard_of(oid) == i` exactly when `oid` lies in
    /// `contiguous_range(universe, i, shards)`.
    pub fn contiguous_range(
        universe: usize,
        shard: usize,
        shards: usize,
    ) -> std::ops::Range<usize> {
        let p = shards.max(1);
        let lo = (shard.min(p) * universe).div_ceil(p);
        let hi = ((shard.min(p) + 1).min(p) * universe).div_ceil(p);
        lo..hi.max(lo)
    }
}

/// One shard of a partitioned [`GradedSource`].
///
/// Sorted access streams only the objects this shard owns (in the
/// parent's descending order); random access still answers over the
/// parent's full universe, so the wrapper honors the source contract
/// even if probed about out-of-shard objects. The full random index is
/// shared between sibling shards via an [`Arc`], so partitioning an
/// `n`-object source into `p` shards costs one index clone, not `p`.
#[derive(Debug, Clone)]
pub struct ShardedSource {
    label: String,
    shard: usize,
    shards: usize,
    /// This shard's slice of the stream, descending grade / ascending
    /// oid (inherited from the parent order).
    sorted: Vec<ScoredObject<Oid>>,
    /// Parent-universe random-access index, shared across siblings.
    by_oid: Arc<HashMap<Oid, Score>>,
    cursor: usize,
}

impl ShardedSource {
    /// Splits a materialized stream into shards.
    ///
    /// `sorted` must be in descending-grade / ascending-oid order (the
    /// source contract); each shard inherits that order. `by_oid` is
    /// the parent's full random-access index.
    pub fn split(
        label: &str,
        sorted: &[ScoredObject<Oid>],
        by_oid: Arc<HashMap<Oid, Score>>,
        partitioner: SourcePartitioner,
        shards: usize,
    ) -> Vec<ShardedSource> {
        let p = shards.max(1);
        let mut parts: Vec<Vec<ScoredObject<Oid>>> = vec![Vec::new(); p];
        for &item in sorted {
            parts[partitioner.shard_of(item.id, p)].push(item);
        }
        parts
            .into_iter()
            .enumerate()
            .map(|(i, part)| ShardedSource {
                label: format!("{label}[shard {i}/{p}]"),
                shard: i,
                shards: p,
                sorted: part,
                by_oid: Arc::clone(&by_oid),
                cursor: 0,
            })
            .collect()
    }

    /// Which shard (in `0..shard_count()`) this is.
    pub fn shard_index(&self) -> usize {
        self.shard
    }

    /// How many sibling shards the parent was split into.
    pub fn shard_count(&self) -> usize {
        self.shards
    }
}

impl GradedSource for ShardedSource {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        let item = self.sorted.get(self.cursor).copied();
        if item.is_some() {
            self.cursor += 1;
        }
        item
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        self.by_oid.get(&oid).copied().unwrap_or(Score::ZERO)
    }

    fn rewind(&mut self) {
        self.cursor = 0;
    }

    fn info(&self) -> SourceInfo {
        // The universe a shard reports is its own slice: that is what
        // its sorted stream can produce, and what per-shard algorithms
        // should size their work by.
        SourceInfo::new(self.label.clone(), self.sorted.len())
    }

    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        let end = self.cursor.saturating_add(n).min(self.sorted.len());
        let out = self.sorted[self.cursor..end].to_vec();
        self.cursor = end;
        out
    }

    fn random_batch(&mut self, oids: &[Oid]) -> Vec<Score> {
        oids.iter()
            .map(|oid| self.by_oid.get(oid).copied().unwrap_or(Score::ZERO))
            .collect()
    }

    fn grade_histogram(&self, bins: usize) -> Option<GradeHistogram> {
        Some(GradeHistogram::from_sorted_by(
            self.sorted.len(),
            bins,
            |i| self.sorted.get(i).map(|s| s.grade).unwrap_or(Score::ZERO),
        ))
    }

    // The shard's slice is materialized and grade-descending, so the
    // ≥-bound prefix is one partition point.
    fn sorted_drain_bounded(&mut self, bound: Score) -> Option<Vec<ScoredObject<Oid>>> {
        let tail = &self.sorted[self.cursor.min(self.sorted.len())..];
        let take = tail.partition_point(|so| so.grade >= bound);
        let out = tail[..take].to_vec();
        self.cursor += take;
        Some(out)
    }
}

/// An in-memory [`GradedSource`] over an explicit grade assignment.
///
/// This is both the test double for the algorithms and the adapter the
/// Garlic layer uses to expose repository attributes.
#[derive(Debug, Clone)]
pub struct VecSource {
    label: String,
    /// `(oid, grade)` sorted by descending grade, then ascending oid.
    sorted: Vec<ScoredObject<Oid>>,
    /// Random-access index.
    by_oid: HashMap<Oid, Score>,
    cursor: usize,
}

impl VecSource {
    /// Builds a source from `(oid, grade)` pairs.
    ///
    /// Duplicate oids keep the *last* grade given. Objects of the
    /// universe that are absent from `grades` are treated as grade 0 on
    /// random access but are **not** streamed by sorted access; use
    /// [`VecSource::from_dense`] when every object should be streamed.
    pub fn new(label: impl Into<String>, grades: Vec<(Oid, Score)>) -> VecSource {
        let mut by_oid = HashMap::with_capacity(grades.len());
        for (oid, g) in grades {
            by_oid.insert(oid, g);
        }
        let mut sorted: Vec<ScoredObject<Oid>> = by_oid
            .iter()
            .map(|(&oid, &grade)| ScoredObject::new(oid, grade))
            .collect();
        sorted.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
        VecSource {
            label: label.into(),
            sorted,
            by_oid,
            cursor: 0,
        }
    }

    /// Builds a source grading the dense universe `0..grades.len()`,
    /// object `i` getting `grades[i]`.
    pub fn from_dense(label: impl Into<String>, grades: &[Score]) -> VecSource {
        VecSource::new(
            label,
            grades
                .iter()
                .enumerate()
                .map(|(i, &g)| (i as Oid, g))
                .collect(),
        )
    }

    /// Builds a source from a [`GradedSet`] over oids — the natural
    /// bridge when a subsystem's answer was materialized as a fuzzy set
    /// (§3) and must now be re-exposed through the access model (§4).
    pub fn from_graded_set(
        label: impl Into<String>,
        set: &fmdb_core::graded_set::GradedSet<Oid>,
    ) -> VecSource {
        VecSource::new(label, set.iter().map(|(&oid, g)| (oid, g)).collect())
    }

    /// The grade of the last object that would be streamed (the
    /// smallest grade in the source), if any.
    pub fn min_grade(&self) -> Option<Score> {
        self.sorted.last().map(|s| s.grade)
    }
}

impl GradedSource for VecSource {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        let item = self.sorted.get(self.cursor).copied();
        if item.is_some() {
            self.cursor += 1;
        }
        item
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        self.by_oid.get(&oid).copied().unwrap_or(Score::ZERO)
    }

    fn rewind(&mut self) {
        self.cursor = 0;
    }

    fn info(&self) -> SourceInfo {
        SourceInfo::new(self.label.clone(), self.sorted.len())
    }

    // Batched access over the in-memory representation is a slice copy
    // / a sequence of hash probes — no per-item cursor bookkeeping.
    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        let end = self.cursor.saturating_add(n).min(self.sorted.len());
        let out = self.sorted[self.cursor..end].to_vec();
        self.cursor = end;
        out
    }

    fn random_batch(&mut self, oids: &[Oid]) -> Vec<Score> {
        oids.iter()
            .map(|oid| self.by_oid.get(oid).copied().unwrap_or(Score::ZERO))
            .collect()
    }

    // In-memory sources are trivially partitionable: the sorted stream
    // is already materialized and the random index is cloned once into
    // an `Arc` shared by all shards.
    fn partition(
        &self,
        partitioner: SourcePartitioner,
        shards: usize,
    ) -> Option<Vec<ShardedSource>> {
        if shards == 0 {
            return None;
        }
        let by_oid = Arc::new(self.by_oid.clone());
        Some(ShardedSource::split(
            &self.label,
            &self.sorted,
            by_oid,
            partitioner,
            shards,
        ))
    }

    // The sorted vec is materialized, so quantiles are O(bins) index
    // probes — free at optimizer time, nothing charged.
    fn grade_histogram(&self, bins: usize) -> Option<GradeHistogram> {
        Some(GradeHistogram::from_sorted_by(
            self.sorted.len(),
            bins,
            |i| self.sorted.get(i).map(|s| s.grade).unwrap_or(Score::ZERO),
        ))
    }

    // The reference semantics for bounded drains: the ≥-bound prefix
    // of the remaining stream, found with one partition point over the
    // materialized sorted vec. Disk-backed sources must return exactly
    // what this returns (the `pruned_equivalence` suite checks).
    fn sorted_drain_bounded(&mut self, bound: Score) -> Option<Vec<ScoredObject<Oid>>> {
        let tail = &self.sorted[self.cursor.min(self.sorted.len())..];
        let take = tail.partition_point(|so| so.grade >= bound);
        let out = tail[..take].to_vec();
        self.cursor += take;
        Some(out)
    }
}

/// A wrapper that independently counts the accesses made to an inner
/// source.
///
/// The algorithms report their own access statistics; tests wrap their
/// sources in `CountingSource` to confirm the self-reported numbers
/// match what the sources actually observed (no unmetered peeking).
#[derive(Debug)]
pub struct CountingSource<S> {
    inner: S,
    sorted_accesses: u64,
    random_accesses: u64,
}

impl<S: GradedSource> CountingSource<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> CountingSource<S> {
        CountingSource {
            inner,
            sorted_accesses: 0,
            random_accesses: 0,
        }
    }

    /// Observed number of sorted accesses.
    pub fn sorted_accesses(&self) -> u64 {
        self.sorted_accesses
    }

    /// Observed number of random accesses.
    pub fn random_accesses(&self) -> u64 {
        self.random_accesses
    }

    /// Unwraps the inner source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: GradedSource> GradedSource for CountingSource<S> {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        let item = self.inner.sorted_next();
        if item.is_some() {
            self.sorted_accesses += 1;
        }
        item
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        self.random_accesses += 1;
        self.inner.random_access(oid)
    }

    fn rewind(&mut self) {
        self.inner.rewind();
    }

    fn info(&self) -> SourceInfo {
        self.inner.info()
    }

    // Forward batches to the inner source's (possibly optimized) batch
    // entry points while metering them at the documented scalar rate.
    fn sorted_batch(&mut self, n: usize) -> Vec<ScoredObject<Oid>> {
        let out = self.inner.sorted_batch(n);
        self.sorted_accesses += out.len() as u64;
        out
    }

    fn random_batch(&mut self, oids: &[Oid]) -> Vec<Score> {
        self.random_accesses += oids.len() as u64;
        self.inner.random_batch(oids)
    }

    fn note_threshold(&mut self, bound: Score) {
        // A hint, not an access: forwarded unmetered.
        self.inner.note_threshold(bound);
    }

    fn sorted_drain_bounded(&mut self, bound: Score) -> Option<Vec<ScoredObject<Oid>>> {
        let out = self.inner.sorted_drain_bounded(bound)?;
        // The documented contract: one sorted access per item
        // returned, nothing for the skipped tail.
        self.sorted_accesses += out.len() as u64;
        Some(out)
    }

    fn random_access_bounded(&mut self, oid: Oid, bound: Score) -> Score {
        self.random_accesses += 1;
        self.inner.random_access_bounded(oid, bound)
    }

    fn page_io(&self) -> Option<crate::stats::PageIoStats> {
        self.inner.page_io()
    }
}

/// Error emitted by [`ValidatingSource`] when a subsystem misbehaves.
#[derive(Debug, Clone, PartialEq)]
pub enum SourceViolation {
    /// Sorted access produced a grade higher than its predecessor.
    OutOfOrder {
        /// Grade of the previous item.
        previous: Score,
        /// The offending (higher) grade.
        current: Score,
    },
    /// Sorted access yielded the same object twice.
    DuplicateObject(Oid),
    /// Random access disagreed with what sorted access reported.
    InconsistentGrade {
        /// The object.
        oid: Oid,
        /// Grade seen under sorted access.
        sorted: Score,
        /// Grade seen under random access.
        random: Score,
    },
}

impl fmt::Display for SourceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceViolation::OutOfOrder { previous, current } => {
                write!(f, "sorted stream rose from {previous} to {current}")
            }
            SourceViolation::DuplicateObject(oid) => {
                write!(f, "object {oid} streamed twice")
            }
            SourceViolation::InconsistentGrade {
                oid,
                sorted,
                random,
            } => write!(
                f,
                "object {oid}: sorted access said {sorted}, random access said {random}"
            ),
        }
    }
}

impl std::error::Error for SourceViolation {}

/// A wrapper that checks the sorted/random access *contract* (§4) as a
/// query runs: grades must be non-increasing under sorted access, no
/// object may stream twice, and random access must agree with sorted
/// access.
///
/// Garlic cannot inspect an autonomous subsystem's internals, but it
/// *can* watch the stream it produces — every violation here would
/// silently corrupt A₀'s answers if it went unnoticed (the correctness
/// proof leans on descending order). Violations are recorded rather
/// than panicking; the middleware can inspect them after the run.
#[derive(Debug)]
pub struct ValidatingSource<S> {
    inner: S,
    last_grade: Option<Score>,
    seen: std::collections::HashMap<Oid, Score>,
    violations: Vec<SourceViolation>,
}

impl<S: GradedSource> ValidatingSource<S> {
    /// Wraps `inner`.
    pub fn new(inner: S) -> ValidatingSource<S> {
        ValidatingSource {
            inner,
            last_grade: None,
            seen: std::collections::HashMap::new(),
            violations: Vec::new(),
        }
    }

    /// Violations observed so far.
    pub fn violations(&self) -> &[SourceViolation] {
        &self.violations
    }

    /// True if the contract held for everything observed so far.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl<S: GradedSource> GradedSource for ValidatingSource<S> {
    fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
        let item = self.inner.sorted_next()?;
        if let Some(prev) = self.last_grade {
            if item.grade > prev {
                self.violations.push(SourceViolation::OutOfOrder {
                    previous: prev,
                    current: item.grade,
                });
            }
        }
        self.last_grade = Some(item.grade);
        if self.seen.insert(item.id, item.grade).is_some() {
            self.violations
                .push(SourceViolation::DuplicateObject(item.id));
        }
        Some(item)
    }

    fn random_access(&mut self, oid: Oid) -> Score {
        let grade = self.inner.random_access(oid);
        if let Some(&sorted_grade) = self.seen.get(&oid) {
            if !grade.approx_eq(sorted_grade, 1e-9) {
                self.violations.push(SourceViolation::InconsistentGrade {
                    oid,
                    sorted: sorted_grade,
                    random: grade,
                });
            }
        }
        grade
    }

    fn rewind(&mut self) {
        self.inner.rewind();
        self.last_grade = None;
        self.seen.clear();
    }

    fn info(&self) -> SourceInfo {
        self.inner.info()
    }

    // The default batch implementations route through the scalar
    // methods above, so batched access is validated item by item; no
    // overrides here on purpose. Likewise `sorted_drain_bounded` stays
    // at its default `None` so bounded drains fall back to validated
    // scalar reads.

    fn note_threshold(&mut self, bound: Score) {
        // A pure hint — forwarding it costs nothing and validates
        // nothing.
        self.inner.note_threshold(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn sorted_access_streams_descending() {
        let mut src = VecSource::new(
            "t",
            vec![(0, s(0.2)), (1, s(0.9)), (2, s(0.5)), (3, s(0.9))],
        );
        let order: Vec<Oid> = std::iter::from_fn(|| src.sorted_next())
            .map(|o| o.id)
            .collect();
        // ties (oid 1 and 3 at 0.9) broken by ascending oid
        assert_eq!(order, vec![1, 3, 2, 0]);
        assert_eq!(src.sorted_next(), None);
    }

    #[test]
    fn rewind_restarts_the_stream() {
        let mut src = VecSource::new("t", vec![(0, s(0.2)), (1, s(0.9))]);
        assert_eq!(src.sorted_next().unwrap().id, 1);
        src.rewind();
        assert_eq!(src.sorted_next().unwrap().id, 1);
    }

    #[test]
    fn random_access_unknown_oid_grades_zero() {
        let mut src = VecSource::new("t", vec![(0, s(0.2))]);
        assert_eq!(src.random_access(0), s(0.2));
        assert_eq!(src.random_access(999), Score::ZERO);
    }

    #[test]
    fn duplicate_oids_keep_last_grade() {
        let mut src = VecSource::new("t", vec![(7, s(0.1)), (7, s(0.8))]);
        assert_eq!(src.info().universe_size, 1);
        assert_eq!(src.random_access(7), s(0.8));
    }

    #[test]
    fn from_graded_set_roundtrips() {
        let mut set = fmdb_core::graded_set::GradedSet::new();
        set.insert(3u64, s(0.4));
        set.insert(9u64, s(0.8));
        let mut src = VecSource::from_graded_set("t", &set);
        assert_eq!(src.info().universe_size, 2);
        assert_eq!(src.sorted_next().unwrap().id, 9);
        assert_eq!(src.random_access(3), s(0.4));
    }

    #[test]
    fn min_grade_reports_the_stream_floor() {
        let src = VecSource::from_dense("t", &[s(0.3), s(0.7), s(0.1)]);
        assert_eq!(src.min_grade(), Some(s(0.1)));
        let empty = VecSource::new("t", vec![]);
        assert_eq!(empty.min_grade(), None);
    }

    #[test]
    fn from_dense_assigns_positional_oids() {
        let mut src = VecSource::from_dense("t", &[s(0.3), s(0.7)]);
        assert_eq!(src.info().universe_size, 2);
        assert_eq!(src.random_access(1), s(0.7));
    }

    /// A deliberately broken source for validating the validator.
    struct BrokenSource {
        items: Vec<ScoredObject<Oid>>,
        cursor: usize,
        random_lies: bool,
    }

    impl GradedSource for BrokenSource {
        fn sorted_next(&mut self) -> Option<ScoredObject<Oid>> {
            let item = self.items.get(self.cursor).copied();
            self.cursor += 1;
            item
        }
        fn random_access(&mut self, oid: Oid) -> Score {
            if self.random_lies {
                Score::clamped(0.123)
            } else {
                self.items
                    .iter()
                    .find(|i| i.id == oid)
                    .map_or(Score::ZERO, |i| i.grade)
            }
        }
        fn rewind(&mut self) {
            self.cursor = 0;
        }
        fn info(&self) -> SourceInfo {
            SourceInfo::new("broken", self.items.len())
        }
    }

    #[test]
    fn validating_source_passes_clean_streams() {
        let mut v = ValidatingSource::new(VecSource::from_dense("t", &[s(0.3), s(0.9), s(0.5)]));
        while let Some(so) = v.sorted_next() {
            let _ = v.random_access(so.id);
        }
        assert!(v.is_clean(), "{:?}", v.violations());
    }

    #[test]
    fn validating_source_flags_out_of_order_streams() {
        let mut v = ValidatingSource::new(BrokenSource {
            items: vec![
                ScoredObject::new(0, s(0.5)),
                ScoredObject::new(1, s(0.9)), // rises!
            ],
            cursor: 0,
            random_lies: false,
        });
        while v.sorted_next().is_some() {}
        assert!(matches!(
            v.violations()[0],
            SourceViolation::OutOfOrder { .. }
        ));
    }

    #[test]
    fn validating_source_flags_duplicates_and_lies() {
        let mut v = ValidatingSource::new(BrokenSource {
            items: vec![
                ScoredObject::new(7, s(0.9)),
                ScoredObject::new(7, s(0.9)), // duplicate
            ],
            cursor: 0,
            random_lies: true,
        });
        while v.sorted_next().is_some() {}
        let _ = v.random_access(7); // lies: 0.123 != 0.9
        assert!(v
            .violations()
            .iter()
            .any(|x| matches!(x, SourceViolation::DuplicateObject(7))));
        assert!(v
            .violations()
            .iter()
            .any(|x| matches!(x, SourceViolation::InconsistentGrade { oid: 7, .. })));
        // Rewind clears the tracking state.
        v.rewind();
        assert_eq!(v.info().universe_size, 2);
    }

    #[test]
    fn sorted_batch_matches_scalar_stream() {
        let grades: Vec<Score> = (0..17).map(|i| s(i as f64 / 17.0)).collect();
        let mut scalar = VecSource::from_dense("t", &grades);
        let mut batched = VecSource::from_dense("t", &grades);
        let mut scalar_items = Vec::new();
        while let Some(x) = scalar.sorted_next() {
            scalar_items.push(x);
        }
        let mut batched_items = Vec::new();
        loop {
            let chunk = batched.sorted_batch(5);
            if chunk.is_empty() {
                break;
            }
            batched_items.extend(chunk);
        }
        assert_eq!(scalar_items, batched_items);
        // The final (partial) batch signals exhaustion by coming short.
        assert!(batched.sorted_batch(5).is_empty());
    }

    #[test]
    fn random_batch_matches_scalar_probes() {
        let mut src = VecSource::new("t", vec![(2, s(0.4)), (9, s(0.9))]);
        let oids = [9, 2, 77, 9];
        let batch = src.random_batch(&oids);
        let scalar: Vec<Score> = oids.iter().map(|&o| src.random_access(o)).collect();
        assert_eq!(batch, scalar);
        assert_eq!(batch, vec![s(0.9), s(0.4), Score::ZERO, s(0.9)]);
    }

    #[test]
    fn default_batch_impls_charge_scalar_counts() {
        // A source that does NOT override the batch methods: counts
        // must equal one access per item, exactly as scalar.
        let mut counted = CountingSource::new(VecSource::from_dense(
            "t",
            &[s(0.1), s(0.5), s(0.9), s(0.7)],
        ));
        let got = counted.sorted_batch(3);
        assert_eq!(got.len(), 3);
        assert_eq!(counted.sorted_accesses(), 3);
        let _ = counted.random_batch(&[0, 1, 2, 3, 99]);
        assert_eq!(counted.random_accesses(), 5);
        // Over-asking past exhaustion charges only what was produced.
        let rest = counted.sorted_batch(10);
        assert_eq!(rest.len(), 1);
        assert_eq!(counted.sorted_accesses(), 4);
    }

    #[test]
    fn source_info_reports_label_and_universe() {
        let src = VecSource::from_dense("Color='red'", &[s(0.3), s(0.7)]);
        let info = src.info();
        assert_eq!(info, SourceInfo::new("Color='red'", 2));
        assert_eq!(info.to_string(), "Color='red' (N=2)");
    }

    #[test]
    fn contiguous_range_inverts_shard_of() {
        // Every (universe, shards) pair in a small grid: the ranges
        // tile [0, n) exactly and agree with shard_of on every oid.
        for n in [0usize, 1, 2, 5, 7, 16, 33] {
            for p in [1usize, 2, 3, 4, 5, 8] {
                let part = SourcePartitioner::Contiguous { universe: n };
                let mut covered = 0usize;
                for i in 0..p {
                    let r = SourcePartitioner::contiguous_range(n, i, p);
                    assert_eq!(r.start, covered, "n={n} p={p} shard {i}");
                    covered = r.end;
                    for oid in r.clone() {
                        assert_eq!(part.shard_of(oid as Oid, p), i, "n={n} p={p} oid={oid}");
                    }
                }
                assert_eq!(covered, n, "ranges must tile the universe");
            }
        }
        // Out-of-universe oids clamp to the last shard.
        let part = SourcePartitioner::Contiguous { universe: 10 };
        assert_eq!(part.shard_of(10_000, 4), 3);
        assert_eq!(
            SourcePartitioner::Contiguous { universe: 0 }.shard_of(3, 4),
            0
        );
    }

    #[test]
    fn modulo_partitioner_spreads_sparse_oids() {
        let part = SourcePartitioner::Modulo;
        assert_eq!(part.shard_of(0, 3), 0);
        assert_eq!(part.shard_of(7, 3), 1);
        assert_eq!(part.shard_of(1_000_001, 2), 1);
        // Degenerate shard count behaves as a single shard.
        assert_eq!(part.shard_of(42, 0), 0);
    }

    #[test]
    fn partition_covers_stream_and_preserves_order() {
        let grades: Vec<Score> = (0..23).map(|i| s((i as f64 * 7.3) % 1.0)).collect();
        let src = VecSource::from_dense("t", &grades);
        for &p in &[1usize, 2, 3, 8] {
            for part in [
                SourcePartitioner::Modulo,
                SourcePartitioner::Contiguous { universe: 23 },
            ] {
                let mut shards = src.partition(part, p).unwrap();
                assert_eq!(shards.len(), p);
                let mut seen: Vec<Oid> = Vec::new();
                for (i, shard) in shards.iter_mut().enumerate() {
                    assert_eq!(shard.shard_index(), i);
                    assert_eq!(shard.shard_count(), p);
                    let mut last: Option<Score> = None;
                    while let Some(item) = shard.sorted_next() {
                        // Membership matches the partitioner...
                        assert_eq!(part.shard_of(item.id, p), i);
                        // ...stream order stays descending...
                        if let Some(prev) = last {
                            assert!(item.grade <= prev);
                        }
                        last = Some(item.grade);
                        seen.push(item.id);
                        // ...and random access agrees with the parent.
                        assert_eq!(shard.random_access(item.id), item.grade);
                    }
                }
                seen.sort_unstable();
                assert_eq!(seen, (0..23).collect::<Vec<Oid>>(), "shards must tile");
            }
        }
    }

    #[test]
    fn sharded_source_answers_out_of_shard_probes() {
        let src = VecSource::from_dense("t", &[s(0.1), s(0.9), s(0.5), s(0.7)]);
        let mut shards = src.partition(SourcePartitioner::Modulo, 2).unwrap();
        // Shard 0 owns even oids but can still grade odd ones.
        assert_eq!(shards[0].random_access(1), s(0.9));
        assert_eq!(shards[0].random_access(999), Score::ZERO);
        // Rewind restarts the shard's own stream.
        let first = shards[1].sorted_next().unwrap();
        shards[1].rewind();
        assert_eq!(shards[1].sorted_next(), Some(first));
    }

    #[test]
    fn default_partition_is_none() {
        // A wrapper without an override cannot be sharded.
        let counted = CountingSource::new(VecSource::from_dense("t", &[s(0.5)]));
        assert!(counted.partition(SourcePartitioner::Modulo, 2).is_none());
    }

    #[test]
    fn counting_source_meters_accesses() {
        let mut src = CountingSource::new(VecSource::from_dense("t", &[s(0.3), s(0.7)]));
        let _ = src.sorted_next();
        let _ = src.random_access(0);
        let _ = src.random_access(1);
        assert_eq!(src.sorted_accesses(), 1);
        assert_eq!(src.random_accesses(), 2);
        // Exhausted stream returns don't count as accesses.
        let _ = src.sorted_next();
        let _ = src.sorted_next();
        let _ = src.sorted_next();
        assert_eq!(src.sorted_accesses(), 2);
    }
}
