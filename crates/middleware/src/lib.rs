//! # fmdb-middleware — sorted/random access and top-k algorithms
//!
//! The middleware layer of the reproduction of Fagin, *"Fuzzy Queries
//! in Multimedia Database Systems"* (PODS 1998), §4: a multimedia
//! system is middleware over autonomous subsystems that expose grades
//! through **sorted access** and **random access** only.
//!
//! * [`source`] — the [`source::GradedSource`] access model and
//!   in-memory sources;
//! * [`stats`] — database access cost accounting and charged cost
//!   models;
//! * [`algorithms`] — the evaluation strategies: naive, **A₀ (Fagin's
//!   Algorithm)** with resumable sessions, the `m·k` max-merge
//!   disjunction, pruned A₀, the Threshold Algorithm (extension), and
//!   Chaudhuri–Gravano filter-condition simulation;
//! * [`request`] — the query description ([`request::TopKQuery`]) and
//!   the executable request ([`request::TopKRequest`] = query +
//!   policy) with shared source handles every strategy accepts;
//! * [`policy`] — the [`policy::ExecPolicy`] execution policy:
//!   algorithm choice, charged cost model, θ-approximation, and
//!   per-request shard settings;
//! * [`engine`] — the batched, parallel execution engine: worker
//!   threads per sorted stream, batched access, and a lock-striped LRU
//!   grade cache, bit-identical to the scalar algorithms;
//! * [`sharded`] — partition-parallel intra-query execution: per-shard
//!   TA/NRA kernels cooperating through a shared [`sharded::AtomicThreshold`]
//!   and merged by a loser-tree [`sharded::ShardMerger`];
//! * [`oracle`] — brute-force reference grading and top-k validity
//!   checking (used pervasively in tests);
//! * [`optimality`] — the per-instance optimality oracle: the cheapest
//!   certificate cost any deterministic algorithm must pay on a given
//!   instance, used to report empirical instance-optimality ratios;
//! * [`planner`] — the unified statistics-driven cost-based planner:
//!   per-source grade histograms price every physical strategy through
//!   the policy's cost model, and both auto-selection entry points
//!   (`Algo::Auto` and the Garlic planner) route through
//!   [`planner::choose_plan`];
//! * [`store`] — the persistent paged column store (§6's "more
//!   realistic cost measure" made physical): checksummed fixed-size
//!   pages holding a sorted run and a random-access grade table,
//!   written crash-safely in one shot, read through a pinned
//!   lock-striped LRU buffer pool with read-ahead, and exposed as
//!   [`store::PagedSource`] — bit-identical to a
//!   [`source::VecSource`] over the same pairs;
//! * [`workload`] — synthetic grade distributions: independent
//!   (Theorem 4.1's model), correlated, and the adversarial
//!   linear-lower-bound instance.
//!
//! ```
//! use fmdb_core::scoring::tnorms::Min;
//! use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
//! use fmdb_middleware::algorithms::TopKAlgorithm;
//! use fmdb_middleware::source::GradedSource;
//! use fmdb_middleware::workload::independent_uniform;
//!
//! let mut sources = independent_uniform(10_000, 2, 42);
//! let mut refs: Vec<&mut dyn GradedSource> = sources
//!     .iter_mut()
//!     .map(|s| s as &mut dyn GradedSource)
//!     .collect();
//! let result = FaginsAlgorithm.top_k(&mut refs, &Min, 10).unwrap();
//! assert_eq!(result.answers.len(), 10);
//! // Far below the naive cost of 2N = 20,000 (Theorem 4.1):
//! assert!(result.stats.database_access_cost() < 10_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod engine;
mod lru;
pub mod optimality;
pub mod oracle;
pub mod planner;
pub mod policy;
pub mod request;
pub mod sharded;
pub mod source;
pub mod stats;
pub mod store;
pub mod workload;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::algorithms::approx::{ApproxNra, ApproxTa};
    pub use crate::algorithms::ca::CombinedAlgorithm;
    pub use crate::algorithms::cg_filter::CgFilter;
    pub use crate::algorithms::fa::{FaSession, FaginsAlgorithm, OwnedFaSession};
    pub use crate::algorithms::max_merge::MaxMerge;
    pub use crate::algorithms::naive::Naive;
    pub use crate::algorithms::nra::{BoundedAnswer, Nra, NraLowerBound, NraResult};
    pub use crate::algorithms::pruned_fa::PrunedFa;
    pub use crate::algorithms::ta::ThresholdAlgorithm;
    pub use crate::algorithms::{AlgoError, Algorithm, TopKAlgorithm, TopKResult};
    pub use crate::engine::{Engine, EngineConfig, EngineError, GradeCache, StripedGradeCache};
    pub use crate::optimality::OptimalityOracle;
    pub use crate::oracle::verify_top_k;
    pub use crate::planner::{
        choose_plan, classify_combiner, CombinerKind, Explain, PhysicalPlan, PlanQuery, QueryStats,
        StatsBasis,
    };
    pub use crate::policy::{Algo, Approximation, ExecPolicy, ShardPolicy};
    pub use crate::request::{
        shared_source, SharedScoring, SharedSource, TopKQuery, TopKQueryBuilder, TopKRequest,
    };
    pub use crate::sharded::{AtomicThreshold, ShardKernel, ShardMerger};
    pub use crate::source::{
        GradedSource, Oid, ShardedSource, SourceInfo, SourcePartitioner, SourceViolation,
        ValidatingSource, VecSource,
    };
    pub use crate::stats::{AccessStats, CostModel, PageIoStats};
    pub use crate::store::{
        build_store, build_store_from_source, BuildConfig, PagedSource, PagedStore, StoreError,
        StoreOptions,
    };
}
