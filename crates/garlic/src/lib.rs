//! # fmdb-garlic — the multimedia middleware layer
//!
//! The Garlic-like integration layer (§4) of the reproduction of
//! Fagin, *"Fuzzy Queries in Multimedia Database Systems"*
//! (PODS 1998): autonomous repositories behind a catalog, a planner
//! choosing between the crisp-filter strategy, algorithm A₀, the m·k
//! disjunction merge, and reference-semantics full scans, and an
//! executor that meters every database access.
//!
//! * [`object`] — global ids, values, complex objects
//!   (Advertisement/AdPhoto) with shared sub-objects;
//! * [`idmap`] — enforced one-to-one id mappings across subsystems;
//! * [`repository`] — the relational table and QBIC-style image
//!   repositories;
//! * [`catalog`] — attribute routing + id translation;
//! * [`planner`] — strategy selection with numeric property probes,
//!   plus a cost-based optimizer mode (§4.2's cost-modeling issue);
//! * [`cost`] — calibratable per-plan cost estimates;
//! * [`executor`] — the [`executor::Garlic`] facade;
//! * [`sql`] — a small SQL-ish query syntax (extension);
//! * [`demo`] — the paper's CD-store and advertisement examples,
//!   prebuilt.
//!
//! ```
//! use fmdb_garlic::demo::cd_store;
//! use fmdb_garlic::sql::parse;
//!
//! let garlic = cd_store(60, 42);
//! let stmt = parse("SELECT TOP 5 WHERE Artist='Beatles' AND Color~'red'").unwrap();
//! let result = garlic.top_k(&stmt.query, stmt.k).unwrap();
//! assert_eq!(result.answers.len(), 5);
//! println!("plan: {} cost: {}", result.plan, result.stats);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod catalog;
pub mod cost;
pub mod demo;
pub mod executor;
pub mod idmap;
pub mod object;
pub mod planner;
pub mod repository;
pub mod sql;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::catalog::Catalog;
    pub use crate::cost::{CostEstimator, PlanContext};
    pub use crate::demo::{ad_database, cd_store};
    pub use crate::executor::{AlgoChoice, ExecError, Garlic, QueryCursor, QueryResult};
    pub use crate::idmap::IdMapper;
    pub use crate::object::{ComplexObject, Oid, SubObjectIndex, Value};
    pub use crate::planner::{plan, plan_costed, PlanKind};
    pub use crate::repository::{named_color, QbicRepository, Repository, TableRepository};
    pub use crate::sql::parse;
}
