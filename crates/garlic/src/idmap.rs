//! Cross-subsystem object-id mapping (§4.2).
//!
//! "Since we are dealing with multiple subsystems, the 'same' object
//! might have different identities in different subsystems. Even if
//! there is some correspondence between object id's in different
//! subsystems, Garlic has to be sure that the mapping is one-to-one."
//!
//! [`IdMapper`] maintains, per subsystem, a bijection between that
//! subsystem's local ids and the middleware's global ids. Registration
//! *enforces* one-to-one-ness: mapping a local id to two globals, or a
//! global to two locals, is rejected — random access depends on it (a
//! many-to-one mapping would silently merge distinct objects' grades).

use std::collections::HashMap;
use std::fmt;

use crate::object::Oid;

/// A subsystem-local identifier.
pub type LocalId = u64;

/// Error raised by id registration or translation.
#[derive(Debug, Clone, PartialEq)]
pub enum IdMapError {
    /// The local id is already mapped to a different global id.
    LocalAlreadyMapped {
        /// Subsystem name.
        subsystem: String,
        /// The local id.
        local: LocalId,
        /// The global id it is already bound to.
        existing: Oid,
    },
    /// The global id is already mapped to a different local id.
    GlobalAlreadyMapped {
        /// Subsystem name.
        subsystem: String,
        /// The global id.
        global: Oid,
        /// The local id it is already bound to.
        existing: LocalId,
    },
    /// No mapping registered for this id.
    Unmapped {
        /// Subsystem name.
        subsystem: String,
        /// The id that failed to translate.
        id: u64,
    },
}

impl fmt::Display for IdMapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdMapError::LocalAlreadyMapped {
                subsystem,
                local,
                existing,
            } => write!(
                f,
                "{subsystem}: local id {local} already mapped to global {existing}"
            ),
            IdMapError::GlobalAlreadyMapped {
                subsystem,
                global,
                existing,
            } => write!(
                f,
                "{subsystem}: global id {global} already mapped to local {existing}"
            ),
            IdMapError::Unmapped { subsystem, id } => {
                write!(f, "{subsystem}: id {id} has no mapping")
            }
        }
    }
}

impl std::error::Error for IdMapError {}

/// Per-subsystem bijections between local and global ids.
#[derive(Debug, Clone, Default)]
pub struct IdMapper {
    to_global: HashMap<String, HashMap<LocalId, Oid>>,
    to_local: HashMap<String, HashMap<Oid, LocalId>>,
}

impl IdMapper {
    /// An empty mapper.
    pub fn new() -> IdMapper {
        IdMapper::default()
    }

    /// Registers `local ↔ global` for `subsystem`, enforcing the
    /// bijection. Re-registering the identical pair is a no-op.
    pub fn register(
        &mut self,
        subsystem: &str,
        local: LocalId,
        global: Oid,
    ) -> Result<(), IdMapError> {
        let fwd = self.to_global.entry(subsystem.to_owned()).or_default();
        if let Some(&existing) = fwd.get(&local) {
            if existing != global {
                return Err(IdMapError::LocalAlreadyMapped {
                    subsystem: subsystem.to_owned(),
                    local,
                    existing,
                });
            }
            return Ok(());
        }
        let bwd = self.to_local.entry(subsystem.to_owned()).or_default();
        if let Some(&existing) = bwd.get(&global) {
            if existing != local {
                return Err(IdMapError::GlobalAlreadyMapped {
                    subsystem: subsystem.to_owned(),
                    global,
                    existing,
                });
            }
            return Ok(());
        }
        fwd.insert(local, global);
        bwd.insert(global, local);
        Ok(())
    }

    /// Registers the identity mapping for a dense range `0..n` — the
    /// common case for in-process repositories.
    pub fn register_identity(&mut self, subsystem: &str, n: u64) -> Result<(), IdMapError> {
        for id in 0..n {
            self.register(subsystem, id, id)?;
        }
        Ok(())
    }

    /// Translates a subsystem-local id to the global id.
    pub fn to_global(&self, subsystem: &str, local: LocalId) -> Result<Oid, IdMapError> {
        self.to_global
            .get(subsystem)
            .and_then(|m| m.get(&local))
            .copied()
            .ok_or_else(|| IdMapError::Unmapped {
                subsystem: subsystem.to_owned(),
                id: local,
            })
    }

    /// Translates a global id to the subsystem-local id.
    pub fn to_local(&self, subsystem: &str, global: Oid) -> Result<LocalId, IdMapError> {
        self.to_local
            .get(subsystem)
            .and_then(|m| m.get(&global))
            .copied()
            .ok_or_else(|| IdMapError::Unmapped {
                subsystem: subsystem.to_owned(),
                id: global,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_translation() {
        let mut m = IdMapper::new();
        m.register("qbic", 100, 1).unwrap();
        m.register("qbic", 200, 2).unwrap();
        m.register("rdbms", 7, 1).unwrap();
        assert_eq!(m.to_global("qbic", 100).unwrap(), 1);
        assert_eq!(m.to_local("qbic", 1).unwrap(), 100);
        assert_eq!(m.to_local("rdbms", 1).unwrap(), 7);
    }

    #[test]
    fn one_to_one_is_enforced() {
        let mut m = IdMapper::new();
        m.register("qbic", 100, 1).unwrap();
        // Same pair again: fine.
        m.register("qbic", 100, 1).unwrap();
        // Local remapped: rejected.
        assert!(matches!(
            m.register("qbic", 100, 2),
            Err(IdMapError::LocalAlreadyMapped { existing: 1, .. })
        ));
        // Global remapped: rejected.
        assert!(matches!(
            m.register("qbic", 300, 1),
            Err(IdMapError::GlobalAlreadyMapped { existing: 100, .. })
        ));
        // Other subsystems are independent namespaces.
        m.register("rdbms", 100, 2).unwrap();
    }

    #[test]
    fn unmapped_ids_error() {
        let m = IdMapper::new();
        assert!(matches!(
            m.to_global("qbic", 5),
            Err(IdMapError::Unmapped { .. })
        ));
        assert!(matches!(
            m.to_local("qbic", 5),
            Err(IdMapError::Unmapped { .. })
        ));
    }

    #[test]
    fn identity_registration() {
        let mut m = IdMapper::new();
        m.register_identity("table", 5).unwrap();
        for i in 0..5 {
            assert_eq!(m.to_global("table", i).unwrap(), i);
        }
    }

    #[test]
    fn error_display() {
        let e = IdMapError::Unmapped {
            subsystem: "qbic".into(),
            id: 9,
        };
        assert!(e.to_string().contains("qbic"));
    }
}
