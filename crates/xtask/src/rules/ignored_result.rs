//! `ignored-result`: discarding the `Result` of a workspace call —
//! `let _ = f(…);` or a bare `f(…);` statement — needs a written
//! justification.
//!
//! `#[must_use]` on `Result` already catches the bare-statement case
//! at compile time *when the compiler sees the type*; this rule closes
//! the `let _ =` escape hatch, which compiles silently and is the
//! idiomatic way to swallow an error on purpose. Swallowing on purpose
//! is fine — the rule only demands the purpose be written down.
//!
//! Linking is name-level (no type information), so the rule fires only
//! when **every** workspace definition of the callee returns `Result`
//! ([`SymbolTable::all_return_result`]): a homonym returning plain
//! data would otherwise make the rule cry wolf.

use crate::analyze::AnalyzedFile;
use crate::diagnostics::Diagnostic;
use crate::parser::Discard;
use crate::symbols::SymbolTable;
use crate::workspace::FileClass;

/// Rule name, as reported and as used in `lint:allow(...)`.
pub const RULE: &str = "ignored-result";

/// Checks one parsed file against the workspace symbol table.
pub fn check(af: &AnalyzedFile<'_>, symbols: &SymbolTable) -> Vec<Diagnostic> {
    if af.source.class != FileClass::Lib {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for f in &af.tree.fns {
        for call in &f.body.calls {
            let shape = match call.discard {
                Discard::Used => continue,
                Discard::LetUnderscore => "let _ =",
                Discard::StmtSemi => "bare statement",
            };
            if !symbols.all_return_result(&call.callee, call.is_method) {
                continue;
            }
            let mut d = Diagnostic::new(
                RULE,
                &af.source.rel_path,
                call.line,
                call.col,
                format!(
                    "{shape} discards the `Result` of workspace call `{}`",
                    call.callee
                ),
            );
            let note = symbols
                .definition_note(&call.callee)
                .map(|n| format!(" ({n})"))
                .unwrap_or_default();
            d = d.with_help(format!(
                "handle or propagate the error{note}; if dropping it is \
                 intentional, say why: `// lint:allow(ignored-result): <why>`"
            ));
            diags.push(d);
        }
    }
    diags
}
