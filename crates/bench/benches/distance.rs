//! Criterion benchmarks: the O(k²) quadratic-form color distance
//! (eq. (1)) vs the O(k) distance-bounding filter of \[HSE+95\] and the
//! Cholesky-embedded Euclidean kernel — the per-pair costs behind
//! experiments E7 and E20 — plus whole-corpus kNN scans (brute force vs
//! early abandoning vs parallel).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_media::bounding::BoundedDistance;
use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::{HistogramDistance, L2Distance, QuadraticFormDistance};
use fmdb_media::embed::{euclidean, squared_euclidean, EmbeddedCorpus, EmbeddedSpace};
use fmdb_media::linalg::SymMatrix;
use fmdb_media::synth::{SynthConfig, SyntheticDb};

fn setup(bins_per_channel: usize) -> (ColorSpace, Vec<ColorHistogram>) {
    let db = SyntheticDb::generate(&SynthConfig {
        count: 64,
        bins_per_channel,
        seed: 3,
        ..SynthConfig::default()
    });
    let hists = db.objects.iter().map(|o| o.histogram.clone()).collect();
    (db.space, hists)
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("color_distance");
    for bins_per_channel in [4usize, 5] {
        let (space, hists) = setup(bins_per_channel);
        let k = space.k();
        let bounded = BoundedDistance::for_space(&space).expect("filter derivable");
        let shorts: Vec<_> = hists
            .iter()
            .map(|h| bounded.filter.project(h).expect("same space"))
            .collect();

        group.bench_function(BenchmarkId::new("quadratic_form", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..hists.len() {
                    let j = (i + 7) % hists.len();
                    acc += bounded
                        .full
                        .distance(black_box(&hists[i]), black_box(&hists[j]))
                        .expect("same space");
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("l2", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..hists.len() {
                    let j = (i + 7) % hists.len();
                    acc += L2Distance
                        .distance(black_box(&hists[i]), black_box(&hists[j]))
                        .expect("same space");
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("short_vector_filter", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..shorts.len() {
                    let j = (i + 7) % shorts.len();
                    acc += shorts[i].distance(black_box(&shorts[j]));
                }
                acc
            })
        });
    }
    group.finish();
}

/// Deterministic pseudo-random normalized histograms over `k` bins —
/// arbitrary `k` (the grid spaces only offer cubes).
fn synthetic_histograms(k: usize, n: usize, mut state: u64) -> Vec<ColorHistogram> {
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let masses: Vec<f64> = (0..k).map(|_| next() + 1e-3).collect();
            ColorHistogram::from_masses(masses).expect("positive masses")
        })
        .collect()
}

/// The 1-D "line" similarity matrix `a_ij = 1 − |i−j|/(k−1)`:
/// positive definite on the zero-sum subspace, so it embeds like the
/// QBIC matrix at any bin count.
fn line_matrix(k: usize) -> SymMatrix {
    SymMatrix::from_fn(k, |i, j| {
        1.0 - (i as f64 - j as f64).abs() / (k as f64 - 1.0)
    })
    .expect("valid shape")
}

/// The tentpole comparison: the O(k²) quadratic form vs one O(k)
/// Euclidean norm between pre-embedded coordinates, across bin counts.
fn bench_embedded_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("embedded_kernel");
    for k in [16usize, 64, 256] {
        let a = line_matrix(k);
        let hists = synthetic_histograms(k, 64, 0x5eed + k as u64);
        let qf = QuadraticFormDistance::new(a.clone());
        let space = EmbeddedSpace::for_matrix(&a).expect("line matrix embeds");
        let embedded: Vec<Vec<f64>> = hists
            .iter()
            .map(|h| space.embed(h).expect("same dimension"))
            .collect();

        group.bench_function(BenchmarkId::new("quadratic_form", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..hists.len() {
                    let j = (i + 7) % hists.len();
                    acc += qf
                        .distance(black_box(&hists[i]), black_box(&hists[j]))
                        .expect("same space");
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("embedded", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..embedded.len() {
                    let j = (i + 7) % embedded.len();
                    acc += euclidean(black_box(&embedded[i]), black_box(&embedded[j]));
                }
                acc
            })
        });
    }
    group.finish();
}

/// A strict left-to-right scalar squared-distance loop — the kernel
/// as it was before the four-lane unroll, kept here as the baseline
/// the `euclidean_unroll` group measures the unroll against.
fn squared_euclidean_scalar(a: &[f64], b: &[f64]) -> f64 {
    let mut sum = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        sum += d * d;
    }
    sum
}

/// The unroll satellite's measurement: the shipped four-lane
/// `squared_euclidean` kernel vs the scalar loop it replaced, on the
/// same pre-embedded coordinates.
fn bench_kernel_unroll(c: &mut Criterion) {
    let mut group = c.benchmark_group("euclidean_unroll");
    for k in [16usize, 64, 256] {
        let a = line_matrix(k);
        let hists = synthetic_histograms(k, 64, 0xfeed + k as u64);
        let space = EmbeddedSpace::for_matrix(&a).expect("line matrix embeds");
        let embedded: Vec<Vec<f64>> = hists
            .iter()
            .map(|h| space.embed(h).expect("same dimension"))
            .collect();

        group.bench_function(BenchmarkId::new("scalar", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..embedded.len() {
                    let j = (i + 7) % embedded.len();
                    acc +=
                        squared_euclidean_scalar(black_box(&embedded[i]), black_box(&embedded[j]));
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("unrolled4", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..embedded.len() {
                    let j = (i + 7) % embedded.len();
                    acc += squared_euclidean(black_box(&embedded[i]), black_box(&embedded[j]));
                }
                acc
            })
        });
    }
    group.finish();
}

/// Whole-corpus 10-NN over 64-bin histograms: brute force vs
/// early-abandoning (+ bounding filter) vs 4-thread parallel scan.
fn bench_knn_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_scan");
    for n in [256usize, 1024, 4096] {
        let db = SyntheticDb::generate(&SynthConfig {
            count: n,
            bins_per_channel: 4,
            seed: 17,
            ..SynthConfig::default()
        });
        let hists: Vec<ColorHistogram> = db.objects.iter().map(|o| o.histogram.clone()).collect();
        let corpus = EmbeddedCorpus::build_filtered(&db.space, &hists).expect("QBIC matrix embeds");
        let query = &hists[n / 2];

        group.bench_function(BenchmarkId::new("brute", n), |b| {
            b.iter(|| corpus.knn_brute(black_box(query), 10).expect("same space"))
        });
        group.bench_function(BenchmarkId::new("early_abandon", n), |b| {
            b.iter(|| corpus.knn(black_box(query), 10).expect("same space"))
        });
        group.bench_function(BenchmarkId::new("parallel4", n), |b| {
            b.iter(|| {
                corpus
                    .knn_parallel(black_box(query), 10, 4)
                    .expect("same space")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_distance,
    bench_embedded_kernel,
    bench_kernel_unroll,
    bench_knn_scan
);
criterion_main!(benches);
