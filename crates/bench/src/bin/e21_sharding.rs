//! Standalone runner for experiment `e21_sharding`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e21_sharding::run(&cfg).print();
}
