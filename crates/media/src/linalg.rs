//! Small dense linear algebra for feature distances.
//!
//! The quadratic-form color distance (eq. (1) of the paper) needs a
//! symmetric `k×k` similarity matrix and a few spectral quantities for
//! the distance-bounding filter of \[HSE+95\]: the smallest eigenvalue of
//! `A` on the histogram-difference subspace and the largest singular
//! value of the 3×k average-color map. `k` is 64–256, so naive dense
//! operations and power iteration are entirely adequate — no external
//! linear-algebra crate is warranted.

use std::fmt;

/// Error for malformed matrix construction.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Data length does not match the requested dimensions.
    ShapeMismatch {
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A dimension was zero.
    EmptyDimension,
    /// The data was not symmetric (for [`SymMatrix`]).
    NotSymmetric,
    /// A non-finite entry was supplied.
    NotFinite,
    /// Cholesky factorization hit a non-positive pivot: the matrix is
    /// not (numerically) positive definite.
    NotPositiveDefinite {
        /// The column whose pivot failed.
        pivot: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { expected, got } => {
                write!(f, "expected {expected} entries, got {got}")
            }
            LinalgError::EmptyDimension => write!(f, "matrix dimensions must be positive"),
            LinalgError::NotSymmetric => write!(f, "matrix is not symmetric"),
            LinalgError::NotFinite => write!(f, "matrix entries must be finite"),
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot} ≤ 0)")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// A dense symmetric matrix stored in full row-major form.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Builds from row-major data; verifies symmetry and finiteness.
    pub fn from_rows(n: usize, data: Vec<f64>) -> Result<SymMatrix, LinalgError> {
        if n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if data.len() != n * n {
            return Err(LinalgError::ShapeMismatch {
                expected: n * n,
                got: data.len(),
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NotFinite);
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if (data[i * n + j] - data[j * n + i]).abs() > 1e-9 {
                    return Err(LinalgError::NotSymmetric);
                }
            }
        }
        Ok(SymMatrix { n, data })
    }

    /// Builds by evaluating `f(i, j)` for the upper triangle and
    /// mirroring (always symmetric by construction).
    pub fn from_fn(
        n: usize,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Result<SymMatrix, LinalgError> {
        if n == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let v = f(i, j);
                if !v.is_finite() {
                    return Err(LinalgError::NotFinite);
                }
                data[i * n + j] = v;
                data[j * n + i] = v;
            }
        }
        Ok(SymMatrix { n, data })
    }

    /// The identity matrix.
    pub fn identity(n: usize) -> SymMatrix {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        SymMatrix { n, data }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// `y = A·x`.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// The quadratic form `xᵀ·A·x`.
    ///
    /// Exploits symmetry: `xᵀAx = Σᵢ aᵢᵢxᵢ² + 2·Σᵢ<ⱼ aᵢⱼxᵢxⱼ`, so only
    /// the diagonal and the strict upper triangle are touched — half
    /// the multiplies of the naive full-matrix sweep.
    pub fn quadratic_form(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n);
        let mut diag = 0.0;
        let mut upper = 0.0;
        for i in 0..self.n {
            let xi = x[i];
            let row = &self.data[i * self.n..(i + 1) * self.n];
            diag += row[i] * xi * xi;
            let tail: f64 = row[i + 1..]
                .iter()
                .zip(&x[i + 1..])
                .map(|(a, b)| a * b)
                .sum();
            upper += xi * tail;
        }
        diag + 2.0 * upper
    }

    /// Largest eigenvalue estimate by power iteration (symmetric
    /// matrices: converges to `max |λ|`; callers needing `λ_max` of a
    /// matrix with possibly-larger negative spectrum should shift
    /// first). Deterministic start vector.
    pub fn spectral_radius(&self, iterations: usize) -> f64 {
        let mut v = deterministic_unit(self.n);
        let mut w = vec![0.0; self.n];
        for _ in 0..iterations {
            self.mul_vec(&v, &mut w);
            let norm = norm2(&w);
            if norm < 1e-300 {
                return 0.0;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / norm;
            }
        }
        // Rayleigh quotient refines the final estimate.
        self.mul_vec(&v, &mut w);
        dot(&v, &w)
    }

    /// Smallest eigenvalue of `A` restricted to the zero-sum subspace
    /// `{z : Σzᵢ = 0}` — the subspace where differences of normalized
    /// histograms live.
    ///
    /// Computed by power iteration on `σI − A` with the all-ones
    /// direction projected out every step (`σ` = an upper bound on the
    /// spectrum), so the dominant eigenpair of the shifted operator is
    /// the *minimal* eigenpair of `A` on the subspace.
    pub fn min_eigenvalue_zero_sum(&self, iterations: usize) -> f64 {
        let n = self.n;
        // Gershgorin upper bound for the spectrum.
        let sigma = (0..n)
            .map(|i| (0..n).map(|j| self.get(i, j).abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
            .max(1e-12);

        let mut v = deterministic_unit(n);
        project_zero_sum(&mut v);
        renormalize(&mut v);
        let mut w = vec![0.0; n];
        for _ in 0..iterations {
            // w = (σI − A)·v
            self.mul_vec(&v, &mut w);
            for (wi, vi) in w.iter_mut().zip(&v) {
                *wi = sigma * vi - *wi;
            }
            project_zero_sum(&mut w);
            let norm = norm2(&w);
            if norm < 1e-300 {
                break;
            }
            for (vi, wi) in v.iter_mut().zip(&w) {
                *vi = wi / norm;
            }
        }
        // Rayleigh quotient of A at the converged direction.
        self.mul_vec(&v, &mut w);
        dot(&v, &w)
    }
}

impl SymMatrix {
    /// `self + factor·other` (dimension-checked).
    pub fn add_scaled(&self, other: &SymMatrix, factor: f64) -> Result<SymMatrix, LinalgError> {
        if self.n != other.n {
            return Err(LinalgError::ShapeMismatch {
                expected: self.n * self.n,
                got: other.n * other.n,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + factor * b)
            .collect();
        Ok(SymMatrix { n: self.n, data })
    }

    /// `P·self·P + J` where `P = I − (1/n)·11ᵀ` projects onto the
    /// zero-sum subspace and `J = (1/n)·11ᵀ` re-inflates the projected
    /// out direction with eigenvalue 1.
    ///
    /// The result is positive definite **iff** `self` is positive
    /// definite on the zero-sum subspace — the form checked by
    /// [`SymMatrix::is_positive_definite`] when deriving filter
    /// constants.
    pub fn project_zero_sum_with_ridge(&self) -> SymMatrix {
        let n = self.n;
        let nf = n as f64;
        // Row and column means, grand mean.
        let mut row_mean = vec![0.0; n];
        for (i, rm) in row_mean.iter_mut().enumerate() {
            *rm = (0..n).map(|j| self.get(i, j)).sum::<f64>() / nf;
        }
        let grand = row_mean.iter().sum::<f64>() / nf;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                // (PAP)_{ij} = a_ij − r_i − r_j + g; J_{ij} = 1/n.
                data[i * n + j] = self.get(i, j) - row_mean[i] - row_mean[j] + grand + 1.0 / nf;
            }
        }
        SymMatrix { n, data }
    }

    /// The Cholesky factorization `A = L·Lᵀ` with `L` lower
    /// triangular; fails with [`LinalgError::NotPositiveDefinite`] if
    /// any pivot is non-positive (the matrix is not numerically PD).
    ///
    /// This is the one-time O(n³) preprocessing step behind the
    /// embedded Euclidean distance kernel (see `crate::embed`): once
    /// `A = LLᵀ` is known, every quadratic form `zᵀAz` collapses to the
    /// plain squared norm `‖Lᵀz‖²`.
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        let n = self.n;
        let mut l = self.data.clone();
        for j in 0..n {
            let mut d = l[j * n + j];
            for k in 0..j {
                let v = l[j * n + k];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j });
            }
            let d_sqrt = d.sqrt();
            l[j * n + j] = d_sqrt;
            for i in (j + 1)..n {
                let mut s = l[i * n + j];
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / d_sqrt;
            }
        }
        // Zero the (stale) strict upper triangle so `L` is genuinely
        // lower triangular.
        for i in 0..n {
            for j in (i + 1)..n {
                l[i * n + j] = 0.0;
            }
        }
        Ok(Cholesky { n, l })
    }

    /// `true` iff the matrix is (numerically) positive definite, by
    /// attempting a Cholesky factorization.
    pub fn is_positive_definite(&self) -> bool {
        self.cholesky().is_ok()
    }
}

/// A lower-triangular Cholesky factor `L` with `A = L·Lᵀ`, produced by
/// [`SymMatrix::cholesky`].
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    n: usize,
    /// Row-major `n×n` with zero strict upper triangle.
    l: Vec<f64>,
}

impl Cholesky {
    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry `L[i][j]` (zero for `j > i`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.l[i * self.n + j]
    }

    /// `y = Lᵀ·x` — the embedding map of the Euclidean kernel:
    /// `xᵀ(LLᵀ)x = ‖Lᵀx‖²`.
    pub fn transpose_mul_vec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.n);
        debug_assert_eq!(y.len(), self.n);
        y.fill(0.0);
        // (Lᵀx)ᵢ = Σⱼ≥ᵢ L[j][i]·xⱼ; iterate rows of L so memory access
        // stays sequential.
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let row = &self.l[j * self.n..j * self.n + j + 1];
            for (yi, lj) in y[..=j].iter_mut().zip(row) {
                *yi += lj * xj;
            }
        }
    }

    /// Reconstructs `L·Lᵀ` (test/diagnostic helper).
    pub fn reconstruct(&self) -> SymMatrix {
        let n = self.n;
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for k in 0..=i.min(j) {
                    s += self.get(i, k) * self.get(j, k);
                }
                data[i * n + j] = s;
                data[j * n + i] = s;
            }
        }
        SymMatrix { n, data }
    }
}

/// A dense rectangular matrix (row-major), used for the 3×k
/// average-color map.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Builds from row-major data.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Matrix, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::EmptyDimension);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                expected: rows * cols,
                got: data.len(),
            });
        }
        if data.iter().any(|v| !v.is_finite()) {
            return Err(LinalgError::NotFinite);
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.cols + j]
    }

    /// `y = M·x` (`x` has `cols` entries, `y` has `rows`).
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (i, yi) in y.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *yi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
    }

    /// The Gram matrix `MᵀM` (`cols × cols`).
    pub fn gram(&self) -> SymMatrix {
        let c = self.cols;
        let mut data = vec![0.0; c * c];
        for i in 0..c {
            for j in i..c {
                let mut s = 0.0;
                for r in 0..self.rows {
                    s += self.get(r, i) * self.get(r, j);
                }
                data[i * c + j] = s;
                data[j * c + i] = s;
            }
        }
        SymMatrix { n: c, data }
    }

    /// The largest singular value `σ_max(M)`, via power iteration on
    /// the small Gram matrix `M·Mᵀ` (`rows × rows`).
    pub fn max_singular_value(&self, iterations: usize) -> f64 {
        let r = self.rows;
        let mut gram = vec![0.0; r * r];
        for i in 0..r {
            for j in i..r {
                let mut s = 0.0;
                for c in 0..self.cols {
                    s += self.get(i, c) * self.get(j, c);
                }
                gram[i * r + j] = s;
                gram[j * r + i] = s;
            }
        }
        let g = SymMatrix { n: r, data: gram };
        // M·Mᵀ is PSD, so the spectral radius is λ_max = σ_max².
        g.spectral_radius(iterations).max(0.0).sqrt()
    }
}

/// Euclidean norm.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Dot product.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Removes the component along the all-ones direction.
fn project_zero_sum(v: &mut [f64]) {
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    for vi in v.iter_mut() {
        *vi -= mean;
    }
}

fn renormalize(v: &mut [f64]) {
    let n = norm2(v);
    if n > 1e-300 {
        for vi in v.iter_mut() {
            *vi /= n;
        }
    }
}

/// A deterministic, well-spread unit start vector for power iteration.
fn deterministic_unit(n: usize) -> Vec<f64> {
    // A fixed quasi-random sequence avoids pathological alignment with
    // eigenvectors of structured matrices (and keeps runs reproducible).
    let mut v: Vec<f64> = (0..n)
        .map(|i| (((i as u64).wrapping_mul(2654435761) % 1000) as f64 / 1000.0) - 0.5 + 1e-3)
        .collect();
    renormalize(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validation() {
        assert!(matches!(
            SymMatrix::from_rows(0, vec![]),
            Err(LinalgError::EmptyDimension)
        ));
        assert!(matches!(
            SymMatrix::from_rows(2, vec![1.0; 3]),
            Err(LinalgError::ShapeMismatch {
                expected: 4,
                got: 3
            })
        ));
        assert!(matches!(
            SymMatrix::from_rows(2, vec![1.0, 2.0, 3.0, 4.0]),
            Err(LinalgError::NotSymmetric)
        ));
        assert!(matches!(
            SymMatrix::from_rows(2, vec![1.0, f64::NAN, f64::NAN, 1.0]),
            Err(LinalgError::NotFinite)
        ));
        assert!(SymMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 1.0]).is_ok());
    }

    #[test]
    fn quadratic_form_matches_direct_computation() {
        let a = SymMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = [1.0, -2.0];
        // 2·1 + 1·(1·-2)·2 + 3·4 = 2 − 4 + 12 = 10
        assert!((a.quadratic_form(&x) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_quadratic_form_matches_naive_sweep() {
        // The production form halves the multiplies via the
        // diagonal + upper-triangle split; it must agree with the
        // naive full-matrix xᵀAx to float accuracy.
        for n in [1usize, 2, 5, 16, 33] {
            let a = SymMatrix::from_fn(n, |i, j| {
                1.0 / (1.0 + (i as f64 - j as f64).abs()) + if i == j { 0.5 } else { 0.0 }
            })
            .unwrap();
            let x: Vec<f64> = (0..n)
                .map(|i| ((i as f64 * 0.73).sin() - 0.2) * 1.5)
                .collect();
            let mut naive = 0.0;
            for i in 0..n {
                for j in 0..n {
                    naive += x[i] * a.get(i, j) * x[j];
                }
            }
            let fast = a.quadratic_form(&x);
            assert!(
                (fast - naive).abs() <= 1e-12 * naive.abs().max(1.0),
                "n={n}: {fast} vs naive {naive}"
            );
        }
    }

    #[test]
    fn cholesky_factors_and_reconstructs() {
        // A small explicitly PD matrix.
        let a = SymMatrix::from_rows(3, vec![4.0, 2.0, 0.0, 2.0, 5.0, 1.0, 0.0, 1.0, 3.0]).unwrap();
        let chol = a.cholesky().unwrap();
        let back = chol.reconstruct();
        for i in 0..3 {
            for j in 0..3 {
                assert!((back.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
            for j in (i + 1)..3 {
                assert_eq!(chol.get(i, j), 0.0, "upper triangle must be zero");
            }
        }
    }

    #[test]
    fn cholesky_transpose_mul_reproduces_quadratic_form() {
        let a = SymMatrix::from_fn(8, |i, j| {
            (if i == j { 2.0 } else { 0.0 }) + 1.0 / (1.0 + (i as f64 - j as f64).powi(2))
        })
        .unwrap();
        let chol = a.cholesky().unwrap();
        let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.41).cos()).collect();
        let mut y = vec![0.0; 8];
        chol.transpose_mul_vec(&x, &mut y);
        let embedded: f64 = y.iter().map(|v| v * v).sum();
        let direct = a.quadratic_form(&x);
        assert!((embedded - direct).abs() < 1e-12 * direct.abs().max(1.0));
    }

    #[test]
    fn cholesky_rejects_indefinite_matrices() {
        let a = SymMatrix::from_rows(2, vec![1.0, 2.0, 2.0, 1.0]).unwrap(); // eigenvalues 3, −1
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { pivot: 1 })
        ));
        assert!(!a.is_positive_definite());
    }

    #[test]
    fn identity_quadratic_form_is_norm_squared() {
        let a = SymMatrix::identity(3);
        assert!((a.quadratic_form(&[1.0, 2.0, 2.0]) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn mul_vec_matches_by_hand() {
        let a = SymMatrix::from_rows(2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let mut y = [0.0; 2];
        a.mul_vec(&[1.0, 1.0], &mut y);
        assert_eq!(y, [3.0, 4.0]);
    }

    #[test]
    fn spectral_radius_of_diagonal() {
        let a = SymMatrix::from_rows(3, vec![5.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 1.0]).unwrap();
        let r = a.spectral_radius(200);
        assert!((r - 5.0).abs() < 1e-6, "got {r}");
    }

    #[test]
    fn min_eigenvalue_on_zero_sum_subspace() {
        // A = I: every subspace eigenvalue is 1.
        let a = SymMatrix::identity(4);
        let lam = a.min_eigenvalue_zero_sum(300);
        assert!((lam - 1.0).abs() < 1e-6, "got {lam}");

        // A = I + 10·(1/n)·J: on the zero-sum subspace J vanishes, so
        // the restricted minimum is still 1 even though λ_min over the
        // full space direction 1 is 11.
        let n = 4;
        let b = SymMatrix::from_fn(n, |i, j| (if i == j { 1.0 } else { 0.0 }) + 10.0 / n as f64)
            .unwrap();
        let lam_b = b.min_eigenvalue_zero_sum(300);
        assert!((lam_b - 1.0).abs() < 1e-6, "got {lam_b}");
    }

    #[test]
    fn min_eigenvalue_detects_small_directions() {
        // diag(1, 1, ε): the zero-sum subspace contains directions with
        // large weight on coordinate 3, so the restricted minimum is
        // close to ε-ish but at least min over subspace ≥ λ_min = ε.
        let eps = 0.01;
        let a = SymMatrix::from_rows(3, vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, eps]).unwrap();
        let lam = a.min_eigenvalue_zero_sum(500);
        assert!(lam >= eps - 1e-6, "got {lam}");
        assert!(lam <= 1.0, "got {lam}");
    }

    #[test]
    fn matrix_mul_and_singular_value() {
        // M = [[3, 0], [0, 4]] has σ_max = 4.
        let m = Matrix::from_rows(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        let mut y = [0.0; 2];
        m.mul_vec(&[1.0, 2.0], &mut y);
        assert_eq!(y, [3.0, 8.0]);
        let s = m.max_singular_value(200);
        assert!((s - 4.0).abs() < 1e-6, "got {s}");
    }

    #[test]
    fn rectangular_singular_value_bounds_image_norm() {
        let m = Matrix::from_rows(2, 3, vec![1.0, 2.0, 0.5, -1.0, 0.0, 2.0]).unwrap();
        let s = m.max_singular_value(300);
        // Check ‖Mx‖ ≤ σ_max‖x‖ for a few probes.
        for x in [[1.0, 0.0, 0.0], [0.3, -0.7, 0.2], [1.0, 1.0, 1.0]] {
            let mut y = [0.0; 2];
            m.mul_vec(&x, &mut y);
            assert!(norm2(&y) <= s * norm2(&x) + 1e-9);
        }
    }

    #[test]
    fn matrix_construction_validation() {
        assert!(matches!(
            Matrix::from_rows(2, 0, vec![]),
            Err(LinalgError::EmptyDimension)
        ));
        assert!(matches!(
            Matrix::from_rows(2, 2, vec![0.0; 3]),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }
}
