//! Database access cost accounting (§4).
//!
//! "The *sorted access cost* is the total number of objects obtained
//! from the database under sorted access. … the *random access cost* is
//! the total number of objects obtained from the database under random
//! access. The *database access cost* is the sum."
//!
//! The paper flags this uniform measure as "somewhat controversial"
//! (a sorted access is probably much more expensive than a random one,
//! or vice versa depending on the subsystem), and \[WHTB98\] studied the
//! algorithm under "a broad range of access costs". [`CostModel`]
//! provides that broad range: a pair of unit prices that converts an
//! [`AccessStats`] into a *charged* cost, used by experiment E5.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Counts of the two access kinds an algorithm performed, plus the
/// engine's grade-cache counters.
///
/// `sorted`/`random` are the paper's *logical* measure: a random access
/// answered from the engine's grade cache still counts as one random
/// access (the algorithm asked the question; caching is a physical
/// optimization). The `cache_hits`/`cache_misses` pair records how many
/// of those `random` accesses were absorbed by the cache — they split
/// `random`, they never add to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Objects obtained under sorted access, summed over all sources.
    pub sorted: u64,
    /// Objects obtained under random access, summed over all sources.
    pub random: u64,
    /// Random accesses served from the engine's grade cache.
    pub cache_hits: u64,
    /// Random accesses that went through to the subsystem (only
    /// metered when a cache is in play; 0 means "no cache involved").
    pub cache_misses: u64,
    /// Worker threads the engine spawned while serving this request:
    /// prefetch workers (one per stream when parallel), shard workers
    /// under the sharded path, and — under `Engine::run_many` — the
    /// pooled batch workers, each charged once to the first request it
    /// completes. Like the cache counters this is physical-execution
    /// telemetry, not part of the paper's access cost.
    pub worker_spawns: u64,
}

impl AccessStats {
    /// No accesses.
    pub const ZERO: AccessStats = AccessStats {
        sorted: 0,
        random: 0,
        cache_hits: 0,
        cache_misses: 0,
        worker_spawns: 0,
    };

    /// Creates explicit stats (no cache activity).
    pub fn new(sorted: u64, random: u64) -> AccessStats {
        AccessStats {
            sorted,
            random,
            ..AccessStats::ZERO
        }
    }

    /// The paper's database access cost: `sorted + random`.
    ///
    /// Cache counters do not contribute: they describe *how* the
    /// random accesses were served, not additional accesses.
    pub fn database_access_cost(&self) -> u64 {
        self.sorted + self.random
    }

    /// The charged cost under a [`CostModel`].
    pub fn charged(&self, model: &CostModel) -> f64 {
        self.sorted as f64 * model.sorted_unit + self.random as f64 * model.random_unit
    }
}

impl Add for AccessStats {
    type Output = AccessStats;
    fn add(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            sorted: self.sorted + rhs.sorted,
            random: self.random + rhs.random,
            cache_hits: self.cache_hits + rhs.cache_hits,
            cache_misses: self.cache_misses + rhs.cache_misses,
            worker_spawns: self.worker_spawns + rhs.worker_spawns,
        }
    }
}

impl AddAssign for AccessStats {
    fn add_assign(&mut self, rhs: AccessStats) {
        *self = *self + rhs;
    }
}

/// Componentwise difference, saturating at zero — for diffing two
/// snapshots of a monotonically growing counter set (e.g.
/// `Engine::access_totals` before/after an experiment). Saturation
/// only engages if the operands are swapped; it never hides real
/// counts.
impl Sub for AccessStats {
    type Output = AccessStats;
    fn sub(self, rhs: AccessStats) -> AccessStats {
        AccessStats {
            sorted: self.sorted.saturating_sub(rhs.sorted),
            random: self.random.saturating_sub(rhs.random),
            cache_hits: self.cache_hits.saturating_sub(rhs.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(rhs.cache_misses),
            worker_spawns: self.worker_spawns.saturating_sub(rhs.worker_spawns),
        }
    }
}

impl fmt::Display for AccessStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} sorted + {} random)",
            self.database_access_cost(),
            self.sorted,
            self.random
        )
    }
}

/// Unit prices for the two access kinds — the "more realistic cost
/// measure" the paper's open problems call for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Price of obtaining one object under sorted access.
    pub sorted_unit: f64,
    /// Price of obtaining one object under random access.
    pub random_unit: f64,
}

impl CostModel {
    /// The paper's uniform measure: both kinds cost 1.
    pub const UNIFORM: CostModel = CostModel {
        sorted_unit: 1.0,
        random_unit: 1.0,
    };

    /// A model where a random access costs `ratio` times a sorted one.
    ///
    /// Returns `None` for non-finite or non-positive ratios.
    pub fn random_to_sorted_ratio(ratio: f64) -> Option<CostModel> {
        (ratio.is_finite() && ratio > 0.0).then_some(CostModel {
            sorted_unit: 1.0,
            random_unit: ratio,
        })
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::UNIFORM
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_access_cost_is_the_sum() {
        // The paper's example: top 100 from one list + top 20 from the
        // other = sorted access cost 120.
        let stats = AccessStats::new(120, 35);
        assert_eq!(stats.database_access_cost(), 155);
    }

    #[test]
    fn charged_cost_respects_the_model() {
        let stats = AccessStats::new(10, 4);
        assert_eq!(stats.charged(&CostModel::UNIFORM), 14.0);
        let expensive_random = CostModel::random_to_sorted_ratio(10.0).unwrap();
        assert_eq!(stats.charged(&expensive_random), 50.0);
        let cheap_random = CostModel::random_to_sorted_ratio(0.1).unwrap();
        assert!((stats.charged(&cheap_random) - 10.4).abs() < 1e-12);
    }

    #[test]
    fn invalid_ratios_rejected() {
        assert!(CostModel::random_to_sorted_ratio(0.0).is_none());
        assert!(CostModel::random_to_sorted_ratio(-1.0).is_none());
        assert!(CostModel::random_to_sorted_ratio(f64::NAN).is_none());
    }

    #[test]
    fn stats_add_componentwise() {
        let mut a = AccessStats::new(1, 2);
        a += AccessStats::new(3, 4);
        assert_eq!(a, AccessStats::new(4, 6));
        assert_eq!(a + AccessStats::ZERO, a);
    }

    #[test]
    fn stats_sub_diffs_snapshots_and_saturates() {
        let before = AccessStats::new(10, 4);
        let after = AccessStats::new(25, 9);
        assert_eq!(after - before, AccessStats::new(15, 5));
        assert_eq!(before - after, AccessStats::ZERO);
    }

    #[test]
    fn display_format() {
        let s = AccessStats::new(2, 3).to_string();
        assert!(s.contains("5 accesses"));
    }
}
