//! Standalone runner for experiment `e09_precomputed`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e09_precomputed::run(&cfg).print();
}
