//! E16 — cost-based plan selection (§4.2's "cost modeling issues").
//!
//! "In order to use an optimizer, we need to understand the cost of
//! applying various operators over various data in various
//! repositories." This experiment tests exactly that understanding:
//! the optimizer's calibrated estimates choose a plan, every applicable
//! plan is then *actually executed*, and the regret (optimizer's actual
//! cost / best actual cost) is reported.

use fmdb_core::query::{Query, Target};
use fmdb_garlic::catalog::Catalog;
use fmdb_garlic::cost::CostEstimator;
use fmdb_garlic::executor::{AlgoChoice, Garlic};
use fmdb_garlic::object::Value;
use fmdb_garlic::repository::{QbicRepository, TableRepository};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::stats::CostModel;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

fn garlic_with_selectivity(n: usize, selectivity: f64, seed: u64) -> Garlic {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel: 4,
        seed,
        ..SynthConfig::default()
    });
    let mut table = TableRepository::new("store", n as u64);
    let matches = ((n as f64 * selectivity).round() as u64).max(1);
    for i in 0..n as u64 {
        let artist = if i % (n as u64 / matches).max(1) == 0 {
            "Beatles"
        } else {
            "Various"
        };
        table.set(i, "Artist", Value::text(artist));
    }
    let mut catalog = Catalog::new();
    catalog.register(Box::new(table)).expect("fresh catalog");
    catalog
        .register(Box::new(QbicRepository::new("qbic", db)))
        .expect("fresh catalog");
    Garlic::new(catalog)
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E16",
        "optimizer regret across selectivities and k",
        "§4.2: \"In order to use an optimizer, we need to understand the cost of applying \
         various operators\" — calibrated estimates should pick the empirically cheapest plan",
    );
    let n = cfg.pick(2000, 300);
    let mut estimator = CostEstimator::default();
    estimator.calibrate_fa(cfg.pick(4096, 512), 2, 10, 3);

    let q = Query::and(vec![
        Query::atomic("Artist", Target::Text("Beatles".into())),
        Query::atomic("Color", Target::Similar("red".into())),
    ]);

    // Actual plan costs are priced through the request API's CostModel
    // (the same c_R/c_S knob ExecPolicy carries), not hardcoded unit
    // charges: uniform pricing reproduces the paper's count, and an
    // expensive-random-access model shows whether the pick survives a
    // skewed cost ratio.
    let uniform = CostModel::UNIFORM;
    let skewed = CostModel::random_to_sorted_ratio(10.0).expect("valid ratio");

    let mut t = Table::new(
        format!(
            "Artist='Beatles' ∧ Color~red over {n} albums (A0 constant calibrated to {:.2})",
            estimator.fa_constant
        ),
        &[
            "selectivity",
            "k",
            "optimizer plan",
            "optimizer cost",
            "best plan",
            "best cost",
            "regret",
            "regret@cR=10cS",
        ],
    );
    let mut worst_regret = 1.0f64;
    for &sel in &[0.005f64, 0.05, 0.25, 0.6] {
        for &k in &[5usize, 50] {
            let garlic = garlic_with_selectivity(n, sel, 21);
            let optimized = garlic.top_k_optimized(&q, k, &estimator).expect("runs");

            // Execute every applicable strategy for the ground truth.
            let mut actuals: Vec<(String, fmdb_middleware::stats::AccessStats)> = vec![(
                "naive".into(),
                garlic
                    .top_k_with(&q, k, AlgoChoice::Naive)
                    .expect("runs")
                    .stats,
            )];
            actuals.push((
                "fagin-a0".into(),
                garlic
                    .top_k_with(&q, k, AlgoChoice::Fa)
                    .expect("runs")
                    .stats,
            ));
            // The heuristic Auto path executes the crisp filter here.
            let auto = garlic.top_k(&q, k).expect("runs");
            actuals.push((auto.plan.to_string(), auto.stats));

            let (best_plan, best_stats) = actuals
                .iter()
                .min_by(|a, b| a.1.charged(&uniform).total_cmp(&b.1.charged(&uniform)))
                .expect("non-empty")
                .clone();
            let best_cost = best_stats.charged(&uniform);
            let regret = optimized.stats.charged(&uniform) / best_cost.max(1.0);
            let best_skewed = actuals
                .iter()
                .map(|(_, s)| s.charged(&skewed))
                .fold(f64::INFINITY, f64::min);
            let regret_skewed = optimized.stats.charged(&skewed) / best_skewed.max(1.0);
            worst_regret = worst_regret.max(regret);
            t.row(vec![
                f3(sel),
                k.to_string(),
                optimized.plan.to_string(),
                int(optimized.stats.database_access_cost()),
                best_plan,
                int(best_cost as u64),
                f3(regret),
                f3(regret_skewed),
            ]);
        }
    }
    report.table(t);
    report.note(format!(
        "worst regret observed: {worst_regret:.2}x — the calibrated estimates keep the \
         optimizer within a small factor of the empirically best plan across the sweep, \
         switching from crisp-filter to A0 as the crisp predicate loses selectivity."
    ));
    report
}
