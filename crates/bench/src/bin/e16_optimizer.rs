//! Standalone runner for experiment `e16_optimizer`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e16_optimizer::run(&cfg).print();
}
