//! Case execution: config, RNG, and the runner behind `proptest!`.

/// How many cases to run, and under what seed.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Base RNG seed; each case derives its own stream from it.
    pub rng_seed: u64,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let rng_seed = std::env::var("PROPTEST_RNG_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0x9E3779B97F4A7C15);
        ProptestConfig {
            cases: 256,
            rng_seed,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The inputs were rejected by `prop_assume!`; the case is retried
    /// with fresh inputs rather than counted as a failure.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a rejection (used by `prop_assume!`).
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }

    /// Constructs a failure (used by `prop_assert!`).
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "assertion failed: {m}"),
        }
    }
}

/// The RNG handed to strategies — xoshiro256++ seeded via SplitMix64,
/// matching the workspace's vendored `rand` stub.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Builds a generator deterministically from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty usize range");
        let span = (hi - lo) as u128 + 1;
        lo + (self.next_u64() as u128 % span) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[0, 1]`.
    pub fn unit_f64_inclusive(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

/// Drives the cases for one `proptest!` item.
#[derive(Debug)]
pub struct TestRunner {
    config: ProptestConfig,
}

/// Bound on consecutive `prop_assume!` rejections before the runner
/// gives up (mirrors upstream's global rejection cap in spirit).
const MAX_REJECTS: u32 = 65_536;

impl TestRunner {
    /// A runner for the given config.
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { config }
    }

    /// Runs `config.cases` cases: each generates inputs with `strategy`
    /// and executes `test`. Panics (failing the surrounding `#[test]`)
    /// on the first assertion failure or panic, reporting the
    /// offending inputs and the seed that reproduces them.
    pub fn run<S, F>(&mut self, strategy: &S, test: F)
    where
        S: crate::strategy::Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rejects = 0u32;
        let mut case = 0u32;
        while case < self.config.cases {
            // Each (seed, case, attempt) triple gets its own stream so
            // rejected attempts draw fresh inputs.
            let stream = self
                .config
                .rng_seed
                .wrapping_add((case as u64) << 20)
                .wrapping_add(rejects as u64);
            let mut rng = TestRng::seed_from_u64(stream);
            let value = strategy.generate(&mut rng);
            let desc = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => {
                    case += 1;
                    rejects = 0;
                }
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejects += 1;
                    assert!(
                        rejects < MAX_REJECTS,
                        "proptest: too many prop_assume! rejections ({MAX_REJECTS}) \
                         at case {case}"
                    );
                }
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest case {case} failed: {msg}\n  inputs: {desc}\n  \
                         reproduce with PROPTEST_RNG_SEED={}",
                        self.config.rng_seed
                    );
                }
                Err(panic_payload) => {
                    let msg = panic_message(&panic_payload);
                    panic!(
                        "proptest case {case} panicked: {msg}\n  inputs: {desc}\n  \
                         reproduce with PROPTEST_RNG_SEED={}",
                        self.config.rng_seed
                    );
                }
            }
        }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn runner_passes_trivial_property() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(0u64..100), |v| {
            if v >= 100 {
                return Err(TestCaseError::fail("out of range"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn runner_reports_failure_with_inputs() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(64));
        runner.run(&(0u64..100), |v| {
            if v > 2 {
                return Err(TestCaseError::fail("values above 2 exist"));
            }
            Ok(())
        });
    }

    #[test]
    fn rejects_retry_with_fresh_inputs() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
        runner.run(&(0u64..100), |v| {
            if v % 2 == 1 {
                return Err(TestCaseError::reject("odd"));
            }
            assert_eq!(v % 2, 0);
            Ok(())
        });
    }

    #[test]
    fn deterministic_generation_per_seed() {
        let cfg = ProptestConfig {
            cases: 8,
            rng_seed: 1234,
        };
        let strat = 0u64..1_000_000;
        let collect = |cfg: &ProptestConfig| {
            let mut out = Vec::new();
            for case in 0..cfg.cases {
                let stream = cfg.rng_seed.wrapping_add((case as u64) << 20);
                let mut rng = TestRng::seed_from_u64(stream);
                out.push(strat.generate(&mut rng));
            }
            out
        };
        assert_eq!(collect(&cfg), collect(&cfg));
    }
}
