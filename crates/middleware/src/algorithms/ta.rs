//! The Threshold Algorithm (TA) — an *extension* beyond the paper.
//!
//! §6 poses "finding efficient algorithms in various natural cases" as
//! an open problem; the answer, published three years later by Fagin,
//! Lotem, and Naor ("Optimal Aggregation Algorithms for Middleware",
//! PODS 2001), is TA. We include it to quantify how much headroom the
//! open problem left above A₀ (experiment E13).
//!
//! TA interleaves the phases that A₀ runs back-to-back:
//!
//! * do sorted access in parallel; for every object seen, *immediately*
//!   random-access its missing grades and compute its overall grade;
//! * maintain the threshold `τ = t(b₁, …, b_m)` where `bᵢ` is the last
//!   grade seen under sorted access in list `i`;
//! * halt as soon as `k` objects have grade ≥ τ (no unseen object can
//!   beat `τ`, by monotonicity).
//!
//! Unlike A₀, TA's stopping condition adapts to the data distribution,
//! which makes it *instance optimal* — in particular it degrades
//! gracefully on the correlated instances where A₀'s probabilistic
//! analysis does not apply (experiment E11).

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::approx::grade_certifies;
use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// The Threshold Algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct ThresholdAlgorithm;

impl TopKAlgorithm for ThresholdAlgorithm {
    fn name(&self) -> &'static str {
        "threshold-ta"
    }

    /// TA reports its local top-k with exact grades in output order, so
    /// merging per-shard TA answers reproduces the serial answer list
    /// bit for bit (see [`crate::sharded`] for the argument).
    fn shard_kernel(&self) -> Option<crate::sharded::ShardKernel> {
        Some(crate::sharded::ShardKernel::Ta)
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        ta_core(sources, scoring, k, 0.0)
    }
}

/// The TA round loop, shared with
/// [`crate::algorithms::approx::ApproxTa`]. At `theta = 0` the halting
/// comparison is the exact `Score` ordering, so the exact algorithm is
/// literally this function.
pub(crate) fn ta_core(
    sources: &mut [&mut dyn GradedSource],
    scoring: &dyn ScoringFunction,
    k: usize,
    theta: f64,
) -> Result<TopKResult, AlgoError> {
    validate(sources, scoring, k)?;
    let m = sources.len();
    for source in sources.iter_mut() {
        source.rewind();
    }
    let mut stats = AccessStats::ZERO;
    let mut grades: HashMap<Oid, Score> = HashMap::new();
    let mut bottoms = vec![Score::ONE; m];
    let mut exhausted = vec![false; m];
    let mut slot_buf = vec![Score::ZERO; m];
    // Threshold feeding: under a zero-absorbing combiner (t-norms:
    // combine ≤ min), a sorted entry graded below the current k-th
    // best overall grade cannot reach the top k, so that grade is a
    // valid per-source bound to hint ([`GradedSource::note_threshold`]
    // — purely physical, e.g. gating read-ahead of provably useless
    // pages). `topk` holds the best overall grades seen, descending.
    let feed = matches!(
        crate::planner::classify_combiner(scoring, m),
        crate::planner::CombinerKind::ZeroAbsorbing
    );
    let mut topk: Vec<Score> = Vec::new();

    loop {
        let mut progressed = false;
        for i in 0..m {
            if exhausted[i] {
                continue;
            }
            let Some(so) = sources[i].sorted_next() else {
                exhausted[i] = true;
                bottoms[i] = Score::ZERO;
                continue;
            };
            stats.sorted += 1;
            progressed = true;
            bottoms[i] = so.grade;
            if let std::collections::hash_map::Entry::Vacant(entry) = grades.entry(so.id) {
                // Immediately resolve every other list's grade.
                for (j, slot) in slot_buf.iter_mut().enumerate() {
                    if j == i {
                        *slot = so.grade;
                    } else {
                        *slot = sources[j].random_access(so.id);
                        stats.random += 1;
                    }
                }
                let overall = scoring.combine(&slot_buf);
                entry.insert(overall);
                if feed {
                    let pos = topk.partition_point(|&g| g >= overall);
                    if pos < k {
                        topk.insert(pos, overall);
                        topk.truncate(k);
                    }
                }
            }
        }
        if feed && topk.len() == k {
            let bound = topk[k - 1];
            for source in sources.iter_mut() {
                source.note_threshold(bound);
            }
        }

        let tau = scoring.combine(&bottoms);
        let at_or_above = grades
            .values()
            .filter(|&&g| grade_certifies(g, tau, theta))
            .count();
        if at_or_above >= k || !progressed {
            break;
        }
    }

    let combined: Vec<ScoredObject<Oid>> = grades
        .into_iter()
        .map(|(oid, g)| ScoredObject::new(oid, g))
        .collect();
    Ok(finalize(combined, k, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::fa::FaginsAlgorithm;
    use crate::algorithms::naive::Naive;
    use crate::source::VecSource;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::Min;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn pseudo_random_sources(n: u64, seeds: &[u64]) -> Vec<VecSource> {
        seeds
            .iter()
            .map(|&seed| {
                let grades: Vec<Score> = (0..n)
                    .map(|i| s(((i.wrapping_mul(seed)) % 10_007) as f64 / 10_007.0))
                    .collect();
                VecSource::from_dense(format!("src{seed}"), &grades)
            })
            .collect()
    }

    fn run(
        algo: &dyn TopKAlgorithm,
        sources: &mut [VecSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> TopKResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, scoring, k).unwrap()
    }

    /// TA may break grade-ties differently from naive; compare the grade
    /// sequences (which must be identical) rather than the oids.
    fn grades_of(r: &TopKResult) -> Vec<Score> {
        r.answers.iter().map(|a| a.grade).collect()
    }

    #[test]
    fn grades_match_naive_under_min() {
        for k in [1, 4, 9] {
            let mut a = pseudo_random_sources(250, &[7919, 104729]);
            let ta = run(&ThresholdAlgorithm, &mut a, &Min, k);
            let mut b = pseudo_random_sources(250, &[7919, 104729]);
            let naive = run(&Naive, &mut b, &Min, k);
            assert_eq!(grades_of(&ta), grades_of(&naive), "k={k}");
        }
    }

    #[test]
    fn grades_match_naive_under_mean() {
        let mut a = pseudo_random_sources(250, &[13, 31, 10_007]);
        let ta = run(&ThresholdAlgorithm, &mut a, &ArithmeticMean, 5);
        let mut b = pseudo_random_sources(250, &[13, 31, 10_007]);
        let naive = run(&Naive, &mut b, &ArithmeticMean, 5);
        assert_eq!(grades_of(&ta), grades_of(&naive));
    }

    #[test]
    fn ta_buffers_never_exceed_universe_and_stop_early() {
        let mut a = pseudo_random_sources(2000, &[7919, 104729]);
        let ta = run(&ThresholdAlgorithm, &mut a, &Min, 5);
        assert!(
            ta.stats.sorted < 2 * 2000,
            "TA should stop before a full scan, got {}",
            ta.stats
        );
    }

    #[test]
    fn ta_usually_beats_fa_on_sorted_cost() {
        let mut a = pseudo_random_sources(2000, &[7919, 104729]);
        let ta = run(&ThresholdAlgorithm, &mut a, &Min, 5);
        let mut b = pseudo_random_sources(2000, &[7919, 104729]);
        let fa = run(&FaginsAlgorithm, &mut b, &Min, 5);
        assert!(
            ta.stats.sorted <= fa.stats.sorted,
            "TA sorted {} vs FA sorted {}",
            ta.stats.sorted,
            fa.stats.sorted
        );
    }

    #[test]
    fn anti_correlated_instance_is_handled() {
        // g2 = 1 − g1: the hard instance for A₀.
        let n = 200;
        let g1: Vec<Score> = (0..n).map(|i| s(i as f64 / n as f64)).collect();
        let g2: Vec<Score> = g1.iter().map(|g| g.negate()).collect();
        let mut a = vec![
            VecSource::from_dense("a", &g1),
            VecSource::from_dense("b", &g2),
        ];
        let ta = run(&ThresholdAlgorithm, &mut a, &Min, 3);
        let mut b = vec![
            VecSource::from_dense("a", &g1),
            VecSource::from_dense("b", &g2),
        ];
        let naive = run(&Naive, &mut b, &Min, 3);
        assert_eq!(grades_of(&ta), grades_of(&naive));
    }

    #[test]
    fn validates_arguments() {
        let mut none: Vec<&mut dyn GradedSource> = vec![];
        assert_eq!(
            ThresholdAlgorithm.top_k(&mut none, &Min, 1),
            Err(AlgoError::NoSources)
        );
    }
}
