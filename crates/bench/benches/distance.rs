//! Criterion benchmarks: the O(k²) quadratic-form color distance
//! (eq. (1)) vs the O(k) distance-bounding filter of \[HSE+95\] — the
//! per-pair costs behind experiment E7.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_media::bounding::BoundedDistance;
use fmdb_media::color::{ColorHistogram, ColorSpace};
use fmdb_media::distance::{HistogramDistance, L2Distance};
use fmdb_media::synth::{SynthConfig, SyntheticDb};

fn setup(bins_per_channel: usize) -> (ColorSpace, Vec<ColorHistogram>) {
    let db = SyntheticDb::generate(&SynthConfig {
        count: 64,
        bins_per_channel,
        seed: 3,
        ..SynthConfig::default()
    });
    let hists = db.objects.iter().map(|o| o.histogram.clone()).collect();
    (db.space, hists)
}

fn bench_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("color_distance");
    for bins_per_channel in [4usize, 5] {
        let (space, hists) = setup(bins_per_channel);
        let k = space.k();
        let bounded = BoundedDistance::for_space(&space).expect("filter derivable");
        let shorts: Vec<_> = hists
            .iter()
            .map(|h| bounded.filter.project(h).expect("same space"))
            .collect();

        group.bench_function(BenchmarkId::new("quadratic_form", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..hists.len() {
                    let j = (i + 7) % hists.len();
                    acc += bounded
                        .full
                        .distance(black_box(&hists[i]), black_box(&hists[j]))
                        .expect("same space");
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("l2", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..hists.len() {
                    let j = (i + 7) % hists.len();
                    acc += L2Distance
                        .distance(black_box(&hists[i]), black_box(&hists[j]))
                        .expect("same space");
                }
                acc
            })
        });
        group.bench_function(BenchmarkId::new("short_vector_filter", k), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for i in 0..shorts.len() {
                    let j = (i + 7) % shorts.len();
                    acc += shorts[i].distance(black_box(&shorts[j]));
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_distance);
criterion_main!(benches);
