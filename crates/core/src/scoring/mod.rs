//! Scoring functions for Boolean combinations of atomic queries (§3).
//!
//! An *m-ary scoring function* maps `[0,1]^m → [0,1]`: it combines the
//! grades an object got under `m` subqueries into one overall grade.
//! The paper's algorithmic results (Theorems 4.1/4.2) need exactly two
//! properties of a scoring function:
//!
//! * **monotonicity** — raising any argument never lowers the result
//!   (needed for the upper bound / correctness of algorithm A₀), and
//! * **strictness** — the result is 1 iff *every* argument is 1
//!   (needed for the matching lower bound).
//!
//! Triangular norms ([`tnorms`]) iterate into strict, monotone m-ary
//! functions; triangular co-norms ([`conorms`]) are monotone but not
//! strict; means ([`means`]) are strict and monotone but not t-norms
//! (the arithmetic mean is not even conservative: `mean(0,1) = ½ ≠ 0`).

pub mod conorms;
pub mod means;
pub mod negation;
pub mod properties;
pub mod tnorms;

use crate::score::Score;

/// An m-ary scoring function: combines per-subquery grades into an
/// overall grade.
///
/// Implementations must be **monotone** unless [`is_monotone`] returns
/// `false` — the middleware algorithms check this flag and refuse to run
/// A₀ on non-monotone functions (mirroring Garlic's need to "somehow
/// guarantee monotonicity" for user-defined scoring functions, §4.2).
///
/// The value on the *empty* tuple is the function's neutral element
/// (1 for conjunctive functions, 0 for disjunctive ones); all shipped
/// implementations document theirs.
///
/// [`is_monotone`]: ScoringFunction::is_monotone
pub trait ScoringFunction {
    /// A short human-readable name ("min", "product", "yager(2)", …).
    fn name(&self) -> String;

    /// Combines the grades. `scores.len()` is the arity `m`.
    fn combine(&self, scores: &[Score]) -> Score;

    /// Whether the function is strict: `combine(x₁..x_m) = 1` iff every
    /// `xᵢ = 1`.
    fn is_strict(&self) -> bool;

    /// Whether the function is monotone in every argument.
    fn is_monotone(&self) -> bool {
        true
    }
}

impl ScoringFunction for Box<dyn ScoringFunction + Send + Sync> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn combine(&self, scores: &[Score]) -> Score {
        (**self).combine(scores)
    }
    fn is_strict(&self) -> bool {
        (**self).is_strict()
    }
    fn is_monotone(&self) -> bool {
        (**self).is_monotone()
    }
}

impl ScoringFunction for std::sync::Arc<dyn ScoringFunction + Send + Sync> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn combine(&self, scores: &[Score]) -> Score {
        (**self).combine(scores)
    }
    fn is_strict(&self) -> bool {
        (**self).is_strict()
    }
    fn is_monotone(&self) -> bool {
        (**self).is_monotone()
    }
}

/// A triangular norm [SS63, DP80]: a 2-ary scoring function `t`
/// satisfying ∧-conservation (`t(0,0) = 0`, `t(x,1) = t(1,x) = x`),
/// monotonicity, commutativity, and associativity.
///
/// Associativity means an m-ary conjunction can be evaluated by
/// iterating the 2-ary function; the blanket [`ScoringFunction`] impl
/// does exactly that (with neutral element 1 for the empty tuple).
pub trait TNorm {
    /// The 2-ary norm.
    fn t(&self, a: Score, b: Score) -> Score;

    /// A short human-readable name.
    fn norm_name(&self) -> String;
}

impl<N: TNorm> ScoringFunction for N {
    fn name(&self) -> String {
        self.norm_name()
    }

    #[inline]
    fn combine(&self, scores: &[Score]) -> Score {
        scores.iter().fold(Score::ONE, |acc, &s| self.t(acc, s))
    }

    fn is_strict(&self) -> bool {
        // Every iterated t-norm is strict (§3): t(x, 1) = x forces the
        // value 1 to be attainable only when all arguments are 1.
        true
    }
}

/// A triangular co-norm \[DP85\]: monotone, commutative, associative, with
/// ∨-conservation (`s(1,1) = 1`, `s(x,0) = s(0,x) = x`).
///
/// Co-norms evaluate disjunctions. They are monotone but **not** strict
/// (`s(1, 0) = 1` with an argument below 1), which is why the paper's
/// lower bound does not apply to them — and indeed max admits an
/// `m·k`-cost algorithm (§4.1).
pub trait Conorm {
    /// The 2-ary co-norm.
    fn s(&self, a: Score, b: Score) -> Score;

    /// A short human-readable name.
    fn conorm_name(&self) -> String;
}

/// Adapter exposing a [`Conorm`] as an m-ary [`ScoringFunction`]
/// (iterated, neutral element 0 on the empty tuple).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConormScoring<S>(pub S);

impl<S: Conorm> ScoringFunction for ConormScoring<S> {
    fn name(&self) -> String {
        self.0.conorm_name()
    }

    #[inline]
    fn combine(&self, scores: &[Score]) -> Score {
        scores.iter().fold(Score::ZERO, |acc, &s| self.0.s(acc, s))
    }

    fn is_strict(&self) -> bool {
        false
    }
}

/// The dual co-norm of a t-norm: `s(x, y) = 1 − t(1−x, 1−y)` \[Al85\].
///
/// ```
/// use fmdb_core::scoring::{Dual, TNorm, Conorm};
/// use fmdb_core::scoring::tnorms::Min;
/// use fmdb_core::score::Score;
///
/// let max = Dual(Min);
/// let a = Score::clamped(0.3);
/// let b = Score::clamped(0.8);
/// assert_eq!(max.s(a, b), b); // dual of min is max
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Dual<N>(pub N);

impl<N: TNorm> Conorm for Dual<N> {
    #[inline]
    fn s(&self, a: Score, b: Score) -> Score {
        self.0.t(a.negate(), b.negate()).negate()
    }

    fn conorm_name(&self) -> String {
        format!("dual({})", self.0.norm_name())
    }
}

/// The dual t-norm of a co-norm: `t(x, y) = 1 − s(1−x, 1−y)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DualNorm<S>(pub S);

impl<S: Conorm> TNorm for DualNorm<S> {
    #[inline]
    fn t(&self, a: Score, b: Score) -> Score {
        self.0.s(a.negate(), b.negate()).negate()
    }

    fn norm_name(&self) -> String {
        format!("dual({})", self.0.conorm_name())
    }
}

#[cfg(test)]
mod tests {
    use super::conorms::{Max, ProbabilisticSum};
    use super::tnorms::{Min, Product};
    use super::*;

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    #[test]
    fn iterated_tnorm_has_neutral_one() {
        assert_eq!(Min.combine(&[]), Score::ONE);
        assert_eq!(Min.combine(&[s(0.4)]), s(0.4));
        assert_eq!(Min.combine(&[s(0.4), s(0.7), s(0.5)]), s(0.4));
    }

    #[test]
    fn iterated_conorm_has_neutral_zero() {
        let max = ConormScoring(Max);
        assert_eq!(max.combine(&[]), Score::ZERO);
        assert_eq!(max.combine(&[s(0.4), s(0.7), s(0.5)]), s(0.7));
    }

    #[test]
    fn dual_of_min_is_max() {
        let d = Dual(Min);
        for (a, b) in [(0.0, 0.0), (0.3, 0.8), (1.0, 0.2), (0.5, 0.5)] {
            assert!(d.s(s(a), s(b)).approx_eq(Max.s(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn dual_of_product_is_probabilistic_sum() {
        let d = Dual(Product);
        for (a, b) in [(0.0, 0.0), (0.3, 0.8), (1.0, 0.2), (0.5, 0.5)] {
            assert!(d
                .s(s(a), s(b))
                .approx_eq(ProbabilisticSum.s(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn double_dual_is_identity() {
        let dd = DualNorm(Dual(Product));
        for (a, b) in [(0.1, 0.9), (0.5, 0.5), (0.0, 1.0)] {
            assert!(dd.t(s(a), s(b)).approx_eq(Product.t(s(a), s(b)), 1e-12));
        }
    }

    #[test]
    fn trait_object_usage() {
        let f: &dyn ScoringFunction = &Min;
        assert_eq!(f.combine(&[s(0.2), s(0.9)]), s(0.2));
        assert!(f.is_strict());
        assert!(f.is_monotone());
    }
}
