//! Diagnostic collection and rendering for `fmdb-lint`.
//!
//! Two output formats:
//!
//! * rustc-style text — `error[no-panic]: … --> path:line:col` — the
//!   default, for humans and editors that parse rustc spans;
//! * `--format json` — one array of objects, for CI and tooling. The
//!   serializer is hand-rolled (no serde in an offline build); the
//!   escape rules cover everything a path or message can contain.

use std::fmt;
use std::path::Path;

/// One finding, tied to a rule and a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// The rule that fired, e.g. `no-panic`.
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable explanation of the violation.
    pub message: String,
    /// Optional hint (how to fix or how to suppress).
    pub help: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic for `rule` at `path:line:col`.
    pub fn new(
        rule: &'static str,
        path: &Path,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            path: path.display().to_string(),
            line,
            col,
            message: message.into(),
            help: None,
        }
    }

    /// Attaches a help note rendered under the span.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        write!(f, "  --> {}:{}:{}", self.path, self.line, self.col)?;
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

/// Renders diagnostics as a JSON array (stable field order, sorted
/// input expected). Hand-rolled: the offline image has no serde.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        push_field(&mut out, "rule", d.rule, false);
        push_field(&mut out, "path", &d.path, false);
        out.push_str(&format!("\"line\": {}, ", d.line));
        out.push_str(&format!("\"col\": {}, ", d.col));
        let last = d.help.is_none();
        push_field(&mut out, "message", &d.message, last);
        if let Some(help) = &d.help {
            push_field(&mut out, "help", help, true);
        }
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

fn push_field(out: &mut String, key: &str, value: &str, last: bool) {
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    out.push_str(&escape_json(value));
    out.push('"');
    if !last {
        out.push_str(", ");
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn sample() -> Diagnostic {
        Diagnostic::new(
            "no-panic",
            &PathBuf::from("crates/core/src/x.rs"),
            3,
            7,
            "found `unwrap()`",
        )
        .with_help("return a Result, or add `// lint:allow(no-panic): why`")
    }

    #[test]
    fn text_rendering_is_rustc_style() {
        let text = sample().to_string();
        assert!(text.starts_with("error[no-panic]: found `unwrap()`"));
        assert!(text.contains("--> crates/core/src/x.rs:3:7"));
        assert!(text.contains("help:"));
    }

    #[test]
    fn json_rendering_is_parseable_shape() {
        let json = to_json(&[sample()]);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"rule\": \"no-panic\""));
        assert!(json.contains("\"line\": 3"));
        assert!(json.contains("\"col\": 7"));
    }

    #[test]
    fn json_escapes_special_characters() {
        let d = Diagnostic::new("no-panic", &PathBuf::from("a\\b.rs"), 1, 1, "say \"no\"\n");
        let json = to_json(&[d]);
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("say \\\"no\\\"\\n"));
    }

    #[test]
    fn empty_diagnostics_render_as_empty_array() {
        assert_eq!(to_json(&[]), "[]");
    }
}
