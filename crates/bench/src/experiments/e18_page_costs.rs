//! E18 — the paged-I/O cost measure (§6's open problem: "to give a
//! more realistic cost measure than the definition in \[Fa96\] for the
//! database access cost. This is especially important in the presence
//! of query optimizers.").
//!
//! Sorted access is sequential (page_size objects per page read);
//! random access goes through a hash-partitioned structure behind an
//! LRU buffer pool. Under this measure the naive full scan — which the
//! flat count condemns outright — becomes genuinely competitive once
//! pages are large, because its `m·N` accesses collapse into
//! `m·N/page_size` sequential reads while A₀ keeps paying a random
//! read per probe.

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::paging::{PageConfig, PageIo, PagedSource};
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

/// Runs `algo` over paged wrappers and sums the page I/O.
fn paged_run(
    algo: &dyn TopKAlgorithm,
    n: usize,
    m: usize,
    k: usize,
    config: PageConfig,
    seed: u64,
) -> PageIo {
    let sources = independent_uniform(n, m, seed);
    let mut paged: Vec<PagedSource<_>> = sources
        .into_iter()
        .map(|s| PagedSource::new(s, config))
        .collect();
    {
        let mut refs: Vec<&mut dyn GradedSource> = paged
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, &Min, k).expect("valid run");
    }
    let mut total = PageIo::default();
    for p in &paged {
        let io = p.io();
        total.sequential_reads += io.sequential_reads;
        total.random_reads += io.random_reads;
        total.buffer_hits += io.buffer_hits;
    }
    total
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E18",
        "page-level I/O costs: where the naive scan fights back",
        "§6: \"give a more realistic cost measure than the definition in [Fa96]\" — under \
         paged sequential I/O the flat access count misprices the naive scan",
    );
    let n = cfg.pick(1 << 15, 1 << 11);
    // Three conjuncts and a deep k keep the random-access volume high
    // even for the pruned variant, so the page-size sweep exposes the
    // full crossover structure.
    let k = 50usize;
    let m = 3usize;
    let seek = 10.0; // random read = 10 sequential reads (spinning disk)

    let mut t = Table::new(
        format!("total page reads (and seek-charged cost at {seek}x), N = {n}, m = {m}, k = {k}"),
        &[
            "page size",
            "buffer",
            "A0 reads",
            "A0 charged",
            "pruned reads",
            "pruned charged",
            "naive reads",
            "naive charged",
            "cheapest (charged)",
        ],
    );
    for &page_size in &[1usize, 16, 64, 256] {
        for &buffer in &[4usize, 64] {
            let config = PageConfig::new(page_size, buffer);
            let fa = paged_run(&FaginsAlgorithm, n, m, k, config, 7);
            let pruned = paged_run(&PrunedFa::default(), n, m, k, config, 7);
            let naive = paged_run(&Naive, n, m, k, config, 7);
            let costs = [
                ("A0", fa.charged(seek)),
                ("pruned A0", pruned.charged(seek)),
                ("naive", naive.charged(seek)),
            ];
            let cheapest = costs
                .iter()
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
                .expect("non-empty")
                .0;
            t.row(vec![
                page_size.to_string(),
                buffer.to_string(),
                int(fa.total_reads()),
                f3(fa.charged(seek)),
                int(pruned.total_reads()),
                f3(pruned.charged(seek)),
                int(naive.total_reads()),
                f3(naive.charged(seek)),
                cheapest.to_owned(),
            ]);
        }
    }
    report.table(t);
    report.note(
        "at page size 1 the read counts reduce to the paper's flat access counts (the \
         seek surcharge is then exactly experiment E5's pricing); as pages grow, the \
         naive scan amortizes its m·N accesses into m·N/page_size sequential reads while \
         the A0 family keeps paying a seek-charged random read per probe — naive takes \
         over from page size ~64 up, a crossover the flat measure cannot see, and exactly \
         why §6 calls realistic cost modeling 'especially important in the presence of \
         query optimizers'.",
    );
    report.note(
        "pruned A0 stretches the A0 regime further by eliminating most random probes; with \
         a generous buffer the gap narrows again because repeated probes start hitting the \
         pool.",
    );
    report
}
