//! Standalone runner for experiment `e17_ablations`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e17_ablations::run(&cfg).print();
}
