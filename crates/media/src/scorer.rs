//! Converting distances into grades.
//!
//! Atomic multimedia queries return grades in `[0, 1]` (§2–§3), but
//! feature modules compute *distances* in `[0, ∞)`. A [`DistanceScorer`]
//! is the bridge; both shipped scorers are strictly decreasing in the
//! distance, so a subsystem's sorted-by-grade stream is exactly its
//! sorted-by-distance stream (what QBIC actually produces).

use std::fmt;

use fmdb_core::score::Score;

/// Maps a nonnegative distance to a grade, monotonically decreasing.
pub trait DistanceScorer {
    /// The grade for distance `d ≥ 0`. Implementations must map 0 to 1
    /// and be non-increasing in `d`.
    fn score(&self, d: f64) -> Score;

    /// A short display name.
    fn name(&self) -> String;
}

/// Exponential decay: `score = exp(−d/σ)`.
///
/// Never reaches 0, so it preserves strict distance order everywhere —
/// the right default for ranking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpDecay {
    sigma: f64,
}

impl ExpDecay {
    /// Creates the scorer; `σ` is the distance at which the grade falls
    /// to `1/e`. Returns `None` unless `σ > 0` and finite.
    pub fn new(sigma: f64) -> Option<ExpDecay> {
        (sigma > 0.0 && sigma.is_finite()).then_some(ExpDecay { sigma })
    }

    /// The decay scale σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl DistanceScorer for ExpDecay {
    fn score(&self, d: f64) -> Score {
        if d.is_nan() || d < 0.0 {
            // NaN or negative distances indicate an upstream bug but
            // must not poison grades; treat as "no match".
            return Score::ZERO;
        }
        Score::clamped((-d / self.sigma).exp())
    }

    fn name(&self) -> String {
        format!("exp-decay(σ={})", self.sigma)
    }
}

/// Linear cutoff: `score = max(0, 1 − d/d_max)`.
///
/// Reaches exactly 0 at `d_max` — handy when grades should vanish at a
/// known maximum distance (e.g. the similarity-matrix diameter).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearCutoff {
    d_max: f64,
}

impl LinearCutoff {
    /// Creates the scorer. Returns `None` unless `d_max > 0`, finite.
    pub fn new(d_max: f64) -> Option<LinearCutoff> {
        (d_max > 0.0 && d_max.is_finite()).then_some(LinearCutoff { d_max })
    }

    /// The zero-crossing distance.
    pub fn d_max(&self) -> f64 {
        self.d_max
    }
}

impl DistanceScorer for LinearCutoff {
    fn score(&self, d: f64) -> Score {
        if d.is_nan() || d < 0.0 {
            return Score::ZERO;
        }
        Score::clamped(1.0 - d / self.d_max)
    }

    fn name(&self) -> String {
        format!("linear-cutoff(dmax={})", self.d_max)
    }
}

impl fmt::Display for ExpDecay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", DistanceScorer::name(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scorers() -> Vec<Box<dyn DistanceScorer>> {
        vec![
            Box::new(ExpDecay::new(0.5).unwrap()),
            Box::new(LinearCutoff::new(2.0).unwrap()),
        ]
    }

    #[test]
    fn zero_distance_is_a_perfect_match() {
        for s in scorers() {
            assert_eq!(s.score(0.0), Score::ONE, "{}", s.name());
        }
    }

    #[test]
    fn scores_decrease_with_distance() {
        for s in scorers() {
            let mut prev = s.score(0.0);
            for i in 1..=40 {
                let cur = s.score(i as f64 * 0.1);
                assert!(cur <= prev, "{} increased at {i}", s.name());
                prev = cur;
            }
        }
    }

    #[test]
    fn linear_cutoff_vanishes_at_dmax() {
        let s = LinearCutoff::new(2.0).unwrap();
        assert_eq!(s.score(2.0), Score::ZERO);
        assert_eq!(s.score(5.0), Score::ZERO);
        assert_eq!(s.score(1.0), Score::HALF);
    }

    #[test]
    fn exp_decay_never_reaches_zero() {
        let s = ExpDecay::new(1.0).unwrap();
        assert!(s.score(20.0) > Score::ZERO);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(ExpDecay::new(0.0).is_none());
        assert!(ExpDecay::new(f64::NAN).is_none());
        assert!(LinearCutoff::new(-1.0).is_none());
        for s in scorers() {
            assert_eq!(s.score(f64::NAN), Score::ZERO, "{}", s.name());
            assert_eq!(s.score(-1.0), Score::ZERO, "{}", s.name());
        }
    }

    #[test]
    fn strictly_decreasing_scorers_preserve_distance_order() {
        let s = ExpDecay::new(0.7).unwrap();
        let distances = [0.0, 0.2, 0.5, 1.3, 2.2];
        for w in distances.windows(2) {
            assert!(s.score(w[0]) > s.score(w[1]));
        }
    }
}
