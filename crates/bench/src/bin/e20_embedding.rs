//! Standalone runner for experiment `e20_embedding`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e20_embedding::run(&cfg).print();
}
