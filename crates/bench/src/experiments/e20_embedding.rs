//! E20 — the Cholesky-embedded Euclidean kernel end to end: grading a
//! `Color` atomic query over the whole database and answering a top-k
//! conjunction through the engine, with the per-object distance
//! computed either by the O(k²) quadratic form of eq. (1) or by the
//! O(k) embedded norm. Both kernels produce the same distances (up to
//! float round-off), so the engine returns the same answers — only the
//! source-construction latency changes.

use std::sync::Arc;
use std::time::Instant;

use fmdb_core::score::Score;
use fmdb_core::scoring::tnorms::Min;
use fmdb_media::distance::{HistogramDistance, QuadraticFormDistance};
use fmdb_media::embed::{EmbeddedCorpus, EmbeddedSpace};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::source::{Oid, VecSource};

use crate::report::{f3, Report, Table};
use crate::runners::{run_algo, RunCfg};

/// Distance → grade with a linear cutoff at the observed maximum (the
/// same conversion the GARLIC repository applies).
fn source_from_distances(label: &str, distances: &[f64]) -> VecSource {
    let dmax = distances.iter().copied().fold(0.0_f64, f64::max).max(1e-12);
    let grades: Vec<(Oid, Score)> = distances
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as Oid, Score::clamped(1.0 - d / dmax)))
        .collect();
    VecSource::new(label, grades)
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E20",
        "embedded Euclidean kernel vs quadratic form, end to end",
        "factoring the similarity matrix once (A = LLᵀ) turns every eq. (1) distance into \
         an O(k) norm; the engine's top-k answers are unchanged while the color-grading \
         stage speeds up by ~k",
    );
    let sizes: Vec<usize> = if cfg.quick {
        vec![300, 600]
    } else {
        vec![1000, 2000, 4000]
    };
    let queries = cfg.pick(20, 5);
    let k = 10usize;

    let mut t = Table::new(
        "top-10 color∧texture conjunction over k = 64 bin histograms",
        &[
            "N",
            "embed build ms",
            "qf ms/query",
            "embedded ms/query",
            "grading speedup",
            "answers equal",
        ],
    );
    for &n in &sizes {
        let db = SyntheticDb::generate(&SynthConfig {
            count: n,
            bins_per_channel: 4,
            seed: 29,
            ..SynthConfig::default()
        });
        let hists: Vec<_> = db.objects.iter().map(|o| o.histogram.clone()).collect();
        let qf = QuadraticFormDistance::new(db.space.similarity_matrix());

        // One-time embedding of the whole corpus (amortized over every
        // later query).
        let start = Instant::now();
        let corpus = EmbeddedCorpus::build(
            EmbeddedSpace::for_space(&db.space).expect("QBIC matrix embeds"),
            &hists,
        )
        .expect("same space");
        let build_ms = start.elapsed().as_secs_f64() * 1e3;

        // A second (kernel-independent) attribute so the engine runs a
        // real conjunction: texture coarseness distance to a fixed
        // prototype.
        let texture_distances: Vec<f64> = db
            .objects
            .iter()
            .map(|o| (o.texture.coarseness - 0.5).abs())
            .collect();
        let texture = source_from_distances("texture", &texture_distances);

        let min: SharedScoring = Arc::new(Min);
        let mut qf_s = 0.0;
        let mut embed_s = 0.0;
        let mut all_equal = true;
        for q in 0..queries {
            let target = &hists[(q * 41) % n];

            let start = Instant::now();
            let qf_distances: Vec<f64> = hists
                .iter()
                .map(|h| qf.distance(h, target).expect("same space"))
                .collect();
            let qf_color = source_from_distances("color", &qf_distances);
            qf_s += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let embedded_distances = corpus.distances(target).expect("same space");
            let embed_color = source_from_distances("color", &embedded_distances);
            embed_s += start.elapsed().as_secs_f64();

            let qf_result = run_algo(&FaginsAlgorithm, &mut [qf_color, texture.clone()], &min, k);
            let embed_result = run_algo(
                &FaginsAlgorithm,
                &mut [embed_color, texture.clone()],
                &min,
                k,
            );
            let qf_ids: Vec<Oid> = qf_result.answers.iter().map(|a| a.id).collect();
            let embed_ids: Vec<Oid> = embed_result.answers.iter().map(|a| a.id).collect();
            all_equal &= qf_ids == embed_ids;
        }

        t.row(vec![
            n.to_string(),
            f3(build_ms),
            f3(qf_s / queries as f64 * 1e3),
            f3(embed_s / queries as f64 * 1e3),
            f3(qf_s / embed_s.max(1e-12)),
            all_equal.to_string(),
        ]);
    }
    report.table(t);
    report.note(
        "the embedded kernel grades the color attribute ~6-7x faster end to end at k = 64 \
         (the distance→grade conversion is shared overhead; the per-pair kernel itself is \
         ~20x faster) while the engine's top-k answers are identical; the one-time O(nk²) \
         corpus embedding amortizes after a single query.",
    );
    report
}
