//! Standalone runner for experiment `e12_filter_conditions`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e12_filter_conditions::run(&cfg).print();
}
