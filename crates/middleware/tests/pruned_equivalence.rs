//! Property suite: block-max pruning is observationally invisible.
//!
//! A bounded drain ([`GradedSource::sorted_drain_bounded`]) or bounded
//! probe ([`GradedSource::random_access_bounded`]) served by a v2
//! [`PagedStore`] — where persisted page bounds let whole pages be
//! skipped — returns the same items, the same grades, and the same
//! *charged* access counts as the in-memory [`VecSource`] reference,
//! bit for bit, across page sizes and thresholds, including the
//! degenerate corners (bound 0, bound 1, bound above every grade,
//! all-equal grades, k ≥ n). Pages skipped are physical telemetry,
//! never a semantic change.
//!
//! The suite also pins the threshold-feeding hook: interleaving
//! [`GradedSource::note_threshold`] calls — as TA/NRA/CA now do each
//! round under a zero-absorbing combiner — changes neither answers
//! nor charges, and a full TA run over the paged store agrees with
//! the in-memory run exactly.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::TopKAlgorithm;
use fmdb_middleware::source::{CountingSource, GradedSource, Oid, VecSource};
use fmdb_middleware::store::{build_store_from_source, BuildConfig, PagedStore, StoreOptions};
use fmdb_middleware::workload::independent_uniform;

/// Unique scratch path under `target/tmp` (cargo provides the dir for
/// integration tests; tests must not write outside the repository).
fn scratch(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let id = COUNTER.fetch_add(1, Ordering::Relaxed);
    dir.join(format!("pruned-{tag}-{id}.fmdb"))
}

/// One randomly drawn pruned-vs-reference comparison.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    k: usize,
    seed: u64,
    page_size: usize,
    /// Threshold as a fraction of the grade range; the grid below
    /// extends it with the exact 0/1 corners.
    bound_frac: f64,
    /// Replace every grade with one constant (degenerate zone maps:
    /// every page bound collapses to a point).
    all_equal: bool,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        5usize..400,
        prop_oneof![Just(1usize), Just(7), Just(1000)],
        0u64..1_000_000,
        prop_oneof![Just(256usize), Just(512), Just(4096)],
        0.0f64..=1.0,
        prop_oneof![Just(false), Just(false), Just(true)],
    )
        .prop_map(|(n, k, seed, page_size, bound_frac, all_equal)| Scenario {
            n,
            k,
            seed,
            page_size,
            bound_frac,
            all_equal,
        })
}

/// Builds the in-memory reference and its persisted twin.
fn build_pair(s: Scenario, tag: &str) -> (VecSource, PagedStore) {
    let mut vec_src = independent_uniform(s.n, 1, s.seed).remove(0);
    if s.all_equal {
        let grades = vec![Score::clamped(0.5); s.n];
        vec_src = VecSource::from_dense("flat", &grades);
    }
    let path = scratch(tag);
    build_store_from_source(&path, &mut vec_src, &BuildConfig::with_page_size(s.page_size))
        .expect("build store");
    vec_src.rewind();
    let store = PagedStore::open(&path, StoreOptions::DEFAULT).expect("open store");
    (vec_src, store)
}

/// The access script both sides run: a few scalar steps, a hinted
/// bounded drain, then drain to exhaustion. Returns everything
/// observed plus the charged access counts.
fn drain_script<S: GradedSource>(
    source: S,
    bound: Score,
    hint: bool,
) -> (Vec<ScoredObject<Oid>>, u64, u64) {
    let mut counted = CountingSource::new(source);
    counted.rewind();
    let mut observed = Vec::new();
    for _ in 0..3 {
        if let Some(so) = counted.sorted_next() {
            observed.push(so);
        }
    }
    if hint {
        counted.note_threshold(bound);
    }
    if let Some(batch) = counted.sorted_drain_bounded(bound) {
        observed.extend(batch);
    }
    while let Some(so) = counted.sorted_next() {
        observed.push(so);
    }
    (observed, counted.sorted_accesses(), counted.random_accesses())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Bounded drains agree with the reference in items, grades, and
    /// charged accesses — at the drawn threshold and at the corners.
    #[test]
    fn bounded_drains_are_bit_identical_to_the_reference(s in scenario()) {
        let (vec_src, store) = build_pair(s, "drain");
        let max = vec_src.info();
        prop_assert_eq!(max.universe_size, s.n);
        let mut bounds = vec![
            Score::ZERO,
            Score::ONE,
            Score::clamped(s.bound_frac),
            Score::clamped(0.5), // the all-equal constant, exactly
        ];
        bounds.dedup();
        for bound in bounds {
            for hint in [false, true] {
                let (want, want_sorted, want_random) =
                    drain_script(vec_src.clone(), bound, hint);
                let (got, got_sorted, got_random) =
                    drain_script(store.source(), bound, hint);
                prop_assert_eq!(&want, &got, "bound {bound} hint {hint}");
                prop_assert_eq!(want_sorted, got_sorted, "charged sorted, bound {bound}");
                prop_assert_eq!(want_random, got_random, "charged random, bound {bound}");
            }
        }
        prop_assert!(store.take_error().is_none(), "no parked store errors");
    }

    /// Bounded probes agree with the reference grade-for-grade and
    /// charge one random access each, present or absent, skipped or
    /// not.
    #[test]
    fn bounded_probes_are_bit_identical_to_the_reference(s in scenario()) {
        let (vec_src, store) = build_pair(s, "probe");
        let mut reference = CountingSource::new(vec_src);
        let mut paged = CountingSource::new(store.source());
        let bound = Score::clamped(s.bound_frac);
        // Probe every resident oid plus a run past the end (absent).
        for oid in 0..(s.n as Oid + 5) {
            let want = reference.random_access_bounded(oid, bound);
            let got = paged.random_access_bounded(oid, bound);
            prop_assert_eq!(want, got, "oid {oid} bound {bound}");
            // The clamp contract: exact grade at or above the bound,
            // hard zero below it.
            let exact = reference.random_access(oid);
            let expect = if exact >= bound { exact } else { Score::ZERO };
            prop_assert_eq!(want, expect, "clamp contract, oid {oid}");
        }
        // Every probe costs one random access on both sides (the extra
        // `random_access` calls above charged the reference once more
        // per oid).
        let probes = s.n as u64 + 5;
        prop_assert_eq!(reference.random_accesses(), 2 * probes);
        prop_assert_eq!(paged.random_accesses(), probes);
        prop_assert!(store.take_error().is_none(), "no parked store errors");
    }

    /// A full TA run (which now feeds its live threshold into every
    /// source each round) over the paged store matches the in-memory
    /// run: same answers, same grades, same charged stats.
    #[test]
    fn ta_with_threshold_feeding_matches_in_memory(s in scenario()) {
        let (vec_src, store) = build_pair(s, "ta");
        let mut mem = vec![vec_src.clone(), vec_src.clone()];
        let mut mem_refs: Vec<&mut dyn GradedSource> = mem
            .iter_mut()
            .map(|x| x as &mut dyn GradedSource)
            .collect();
        let want = ThresholdAlgorithm
            .top_k(&mut mem_refs, &Min, s.k)
            .expect("valid run");

        let mut paged = vec![store.source()];
        let mut mixed = vec![vec_src.clone()];
        let mut refs: Vec<&mut dyn GradedSource> = Vec::new();
        refs.push(&mut paged[0]);
        refs.push(&mut mixed[0]);
        let got = ThresholdAlgorithm
            .top_k(&mut refs, &Min, s.k)
            .expect("valid run");

        prop_assert_eq!(&want.answers, &got.answers);
        prop_assert_eq!(want.stats.sorted, got.stats.sorted);
        prop_assert_eq!(want.stats.random, got.stats.random);
        prop_assert!(store.take_error().is_none(), "no parked store errors");
    }
}
