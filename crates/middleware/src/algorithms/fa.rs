//! Algorithm A₀ — "Fagin's Algorithm" (§4.1, from \[Fa96\]).
//!
//! Three phases:
//!
//! 1. **Sorted access.** Stream all `m` lists in parallel (round-robin)
//!    until there is a set `L` of at least `k` objects that *every*
//!    list has output.
//! 2. **Random access.** For every object seen by any list, fetch its
//!    missing grades from the other lists.
//! 3. **Computation.** Combine each seen object's grades with the
//!    monotone scoring function `t`; output the best `k`.
//!
//! Correctness (sketch, as in the paper): an unseen object `y` has
//! `μᵢ(y) ≤ μᵢ(z)` for every list `i` and every `z ∈ L` (z was output,
//! y wasn't), so by monotonicity `μ(y) ≤ μ(z)` — at least `k` seen
//! objects tie or beat every unseen one.
//!
//! For independent lists the database access cost is
//! `O(N^((m−1)/m)·k^(1/m))` with arbitrarily high probability
//! (Theorem 4.1), matching the lower bound for strict monotone queries
//! (Theorem 4.2). Experiments E1/E3 reproduce both.
//!
//! [`FaSession`] additionally exposes the paper's "nice feature that
//! after finding the top k answers, in order to find the next k best
//! answers we can continue where we left off".

use std::collections::HashMap;
use std::fmt;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// Algorithm A₀.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaginsAlgorithm;

/// Mutable working state shared by the one-shot and resumable variants.
#[derive(Debug, Default)]
struct FaState {
    /// Per-object slot vector: `Some(grade)` once list `i` has revealed
    /// the grade (by either access kind).
    seen: HashMap<Oid, Vec<Option<Score>>>,
    /// Objects every list has output under *sorted* access (the set L).
    matches: usize,
    /// Which lists are fully drained.
    exhausted: Vec<bool>,
    stats: AccessStats,
}

impl FaState {
    fn new(m: usize) -> FaState {
        FaState {
            seen: HashMap::new(),
            matches: 0,
            exhausted: vec![false; m],
            stats: AccessStats::ZERO,
        }
    }

    /// Phase 1: round-robin sorted access until `|L| ≥ target` or all
    /// lists are drained. `sorted_seen` tracking rides on the slot
    /// vectors: a slot filled during phase 1 counts toward L.
    fn sorted_phase(&mut self, sources: &mut [&mut dyn GradedSource], target: usize) {
        let m = sources.len();
        if self.matches >= target {
            return;
        }
        loop {
            let mut progressed = false;
            for i in 0..m {
                if self.exhausted[i] {
                    continue;
                }
                match sources[i].sorted_next() {
                    Some(so) => {
                        self.stats.sorted += 1;
                        progressed = true;
                        let slots = self.seen.entry(so.id).or_insert_with(|| vec![None; m]);
                        if slots[i].is_none() {
                            slots[i] = Some(so.grade);
                            if slots.iter().all(Option::is_some) {
                                self.matches += 1;
                            }
                        }
                    }
                    None => self.exhausted[i] = true,
                }
                if self.matches >= target {
                    return;
                }
            }
            if !progressed {
                // Every list drained: L is as large as it will get.
                return;
            }
        }
    }

    /// Phase 2: random access for every missing slot of every seen
    /// object.
    fn random_phase(&mut self, sources: &mut [&mut dyn GradedSource]) {
        for (&oid, slots) in self.seen.iter_mut() {
            for (i, slot) in slots.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = Some(sources[i].random_access(oid));
                    self.stats.random += 1;
                }
            }
        }
    }

    /// Phase 3: combine every fully-graded object.
    fn combine(&self, scoring: &dyn ScoringFunction) -> Vec<ScoredObject<Oid>> {
        let mut buf = Vec::with_capacity(self.seen.len());
        let mut grades = Vec::new();
        for (&oid, slots) in &self.seen {
            grades.clear();
            grades.extend(
                slots
                    .iter()
                    // lint:allow(no-panic): phase 2 random-accesses every missing grade before combine runs
                    .map(|&slot| slot.expect("phase 2 filled all slots")),
            );
            buf.push(ScoredObject::new(oid, scoring.combine(&grades)));
        }
        buf
    }
}

impl TopKAlgorithm for FaginsAlgorithm {
    fn name(&self) -> &'static str {
        "fagin-a0"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate(sources, scoring, k)?;
        for source in sources.iter_mut() {
            source.rewind();
        }
        let mut state = FaState::new(sources.len());
        state.sorted_phase(sources, k);
        state.random_phase(sources);
        let combined = state.combine(scoring);
        Ok(finalize(combined, k, state.stats))
    }
}

/// A resumable A₀ run: each [`FaSession::next_k`] call returns the next
/// best batch of answers, continuing sorted access where the previous
/// call left off (§4.1's "continue where we left off").
///
/// The session owns its sources for the duration of the query.
pub struct FaSession<'a> {
    sources: Vec<&'a mut dyn GradedSource>,
    scoring: &'a dyn ScoringFunction,
    state: FaState,
    /// Objects already returned by earlier batches.
    emitted: Vec<Oid>,
    /// Cumulative number of answers requested so far.
    requested: usize,
}

// Sessions hold `dyn` sources/scoring with no `Debug` bound; a
// state-level summary satisfies `missing_debug_implementations`.
impl fmt::Debug for FaSession<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaSession")
            .field("arity", &self.sources.len())
            .field("emitted", &self.emitted.len())
            .field("requested", &self.requested)
            .finish_non_exhaustive()
    }
}

impl<'a> FaSession<'a> {
    /// Starts a session. Rewinds the sources.
    pub fn new(
        mut sources: Vec<&'a mut dyn GradedSource>,
        scoring: &'a dyn ScoringFunction,
    ) -> Result<FaSession<'a>, AlgoError> {
        if sources.is_empty() {
            return Err(AlgoError::NoSources);
        }
        if !scoring.is_monotone() {
            return Err(AlgoError::NonMonotoneScoring(scoring.name()));
        }
        for source in sources.iter_mut() {
            source.rewind();
        }
        let m = sources.len();
        Ok(FaSession {
            sources,
            scoring,
            state: FaState::new(m),
            emitted: Vec::new(),
            requested: 0,
        })
    }

    /// Returns the next `k` best answers (those ranked
    /// `requested+1 ..= requested+k` overall), with exact grades.
    ///
    /// The cumulative access stats of the whole session so far are
    /// reported in the result — resuming is cheaper than starting over,
    /// which experiment E1's `resume` column quantifies.
    pub fn next_k(&mut self, k: usize) -> Result<TopKResult, AlgoError> {
        if k == 0 {
            return Err(AlgoError::ZeroK);
        }
        self.requested += k;
        // The top (requested) answers require |L| ≥ requested, by the
        // same correctness argument as the one-shot run.
        self.state.sorted_phase(&mut self.sources, self.requested);
        self.state.random_phase(&mut self.sources);
        let mut combined = self.state.combine(self.scoring);
        combined.retain(|so| !self.emitted.contains(&so.id));
        let result = finalize(combined, k, self.state.stats);
        self.emitted.extend(result.answers.iter().map(|a| a.id));
        Ok(result)
    }

    /// Cumulative access statistics for the session.
    pub fn stats(&self) -> AccessStats {
        self.state.stats
    }
}

/// An **owning** resumable A₀ session: like [`FaSession`] but holding
/// its sources (and scoring function) by value, so it can be stored in
/// long-lived query cursors (the Garlic layer's "top 10, then the next
/// 10" interaction from §4).
pub struct OwnedFaSession {
    sources: Vec<Box<dyn GradedSource>>,
    scoring: Box<dyn ScoringFunction>,
    state: FaState,
    emitted: Vec<Oid>,
    requested: usize,
}

// Same story as [`FaSession`]: boxed `dyn` members, opaque summary.
impl fmt::Debug for OwnedFaSession {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OwnedFaSession")
            .field("arity", &self.sources.len())
            .field("emitted", &self.emitted.len())
            .field("requested", &self.requested)
            .finish_non_exhaustive()
    }
}

impl OwnedFaSession {
    /// Starts a session over owned sources. Rewinds them.
    pub fn new(
        mut sources: Vec<Box<dyn GradedSource>>,
        scoring: Box<dyn ScoringFunction>,
    ) -> Result<OwnedFaSession, AlgoError> {
        if sources.is_empty() {
            return Err(AlgoError::NoSources);
        }
        if !scoring.is_monotone() {
            return Err(AlgoError::NonMonotoneScoring(scoring.name()));
        }
        for source in sources.iter_mut() {
            source.rewind();
        }
        let m = sources.len();
        Ok(OwnedFaSession {
            sources,
            scoring,
            state: FaState::new(m),
            emitted: Vec::new(),
            requested: 0,
        })
    }

    /// Returns the next `k` best answers; see [`FaSession::next_k`].
    pub fn next_k(&mut self, k: usize) -> Result<TopKResult, AlgoError> {
        if k == 0 {
            return Err(AlgoError::ZeroK);
        }
        self.requested += k;
        let mut refs: Vec<&mut dyn GradedSource> = self
            .sources
            .iter_mut()
            .map(|b| b.as_mut() as &mut dyn GradedSource)
            .collect();
        self.state.sorted_phase(&mut refs, self.requested);
        self.state.random_phase(&mut refs);
        let mut combined = self.state.combine(self.scoring.as_ref());
        combined.retain(|so| !self.emitted.contains(&so.id));
        let result = finalize(combined, k, self.state.stats);
        self.emitted.extend(result.answers.iter().map(|a| a.id));
        Ok(result)
    }

    /// Cumulative access statistics for the session.
    pub fn stats(&self) -> AccessStats {
        self.state.stats
    }

    /// Number of answers already returned.
    pub fn emitted(&self) -> usize {
        self.emitted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive::Naive;
    use crate::source::{CountingSource, VecSource};
    use fmdb_core::scoring::tnorms::{Min, Product};

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    /// 6-object, 2-list fixture with distinct min-grades.
    fn fixture() -> (VecSource, VecSource) {
        let a = VecSource::from_dense("color", &[s(0.9), s(0.8), s(0.3), s(0.6), s(0.1), s(0.5)]);
        let b = VecSource::from_dense("shape", &[s(0.2), s(0.7), s(0.9), s(0.5), s(0.8), s(0.4)]);
        (a, b)
    }

    #[test]
    fn agrees_with_naive_on_fixture() {
        for k in 1..=6 {
            let (mut a, mut b) = fixture();
            let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
            let fa = FaginsAlgorithm.top_k(&mut srcs, &Min, k).unwrap();

            let (mut a2, mut b2) = fixture();
            let mut srcs2: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
            let naive = Naive.top_k(&mut srcs2, &Min, k).unwrap();
            assert_eq!(fa.answers, naive.answers, "k={k}");
        }
    }

    #[test]
    fn agrees_with_naive_under_product() {
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let fa = FaginsAlgorithm.top_k(&mut srcs, &Product, 3).unwrap();
        let (mut a2, mut b2) = fixture();
        let mut srcs2: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
        let naive = Naive.top_k(&mut srcs2, &Product, 3).unwrap();
        assert_eq!(fa.answers, naive.answers);
    }

    #[test]
    fn self_reported_stats_match_observed() {
        let (a, b) = fixture();
        let mut ca = CountingSource::new(a);
        let mut cb = CountingSource::new(b);
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut ca, &mut cb];
        let r = FaginsAlgorithm.top_k(&mut srcs, &Min, 2).unwrap();
        assert_eq!(r.stats.sorted, ca.sorted_accesses() + cb.sorted_accesses());
        assert_eq!(r.stats.random, ca.random_accesses() + cb.random_accesses());
    }

    #[test]
    fn costs_less_than_naive_on_large_independent_lists() {
        // Deterministic pseudo-random grades; N = 400.
        let n = 400u64;
        let g1: Vec<Score> = (0..n)
            .map(|i| s((i * 7919 % 1000) as f64 / 1000.0))
            .collect();
        let g2: Vec<Score> = (0..n)
            .map(|i| s((i * 104729 % 1000) as f64 / 1000.0))
            .collect();
        let mut a = VecSource::from_dense("a", &g1);
        let mut b = VecSource::from_dense("b", &g2);
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let fa = FaginsAlgorithm.top_k(&mut srcs, &Min, 5).unwrap();
        assert!(
            fa.stats.database_access_cost() < 2 * n,
            "FA cost {} should beat naive {}",
            fa.stats,
            2 * n
        );
    }

    #[test]
    fn validates_arguments() {
        let (mut a, _) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a];
        assert_eq!(
            FaginsAlgorithm.top_k(&mut srcs, &Min, 0),
            Err(AlgoError::ZeroK)
        );
        let mut none: Vec<&mut dyn GradedSource> = vec![];
        assert_eq!(
            FaginsAlgorithm.top_k(&mut none, &Min, 3),
            Err(AlgoError::NoSources)
        );
    }

    #[test]
    fn k_at_universe_size_degrades_to_full_scan_result() {
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = FaginsAlgorithm.top_k(&mut srcs, &Min, 6).unwrap();
        assert_eq!(r.answers.len(), 6);
        // Grades still exact and descending.
        for w in r.answers.windows(2) {
            assert!(w[0].grade >= w[1].grade);
        }
    }

    #[test]
    fn k_beyond_universe_returns_all() {
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = FaginsAlgorithm.top_k(&mut srcs, &Min, 100).unwrap();
        assert_eq!(r.answers.len(), 6);
    }

    #[test]
    fn session_batches_match_one_shot_ordering() {
        let (mut a, mut b) = fixture();
        let mut srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let all = FaginsAlgorithm.top_k(&mut srcs, &Min, 6).unwrap();

        let (mut a2, mut b2) = fixture();
        let srcs2: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
        let mut session = FaSession::new(srcs2, &Min).unwrap();
        let first = session.next_k(2).unwrap();
        let second = session.next_k(2).unwrap();
        let third = session.next_k(2).unwrap();
        let stitched: Vec<_> = first
            .answers
            .into_iter()
            .chain(second.answers)
            .chain(third.answers)
            .collect();
        assert_eq!(stitched, all.answers);
    }

    #[test]
    fn session_resume_is_cheaper_than_restart() {
        let n = 400u64;
        let g1: Vec<Score> = (0..n)
            .map(|i| s((i * 7919 % 1000) as f64 / 1000.0))
            .collect();
        let g2: Vec<Score> = (0..n)
            .map(|i| s((i * 104729 % 1000) as f64 / 1000.0))
            .collect();

        // Session: 5 then 5 more.
        let mut a = VecSource::from_dense("a", &g1);
        let mut b = VecSource::from_dense("b", &g2);
        let srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let mut session = FaSession::new(srcs, &Min).unwrap();
        session.next_k(5).unwrap();
        session.next_k(5).unwrap();
        let resumed_cost = session.stats().database_access_cost();

        // Two independent runs: top-5 and top-10 from scratch.
        let mut a2 = VecSource::from_dense("a", &g1);
        let mut b2 = VecSource::from_dense("b", &g2);
        let mut srcs2: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
        let run5 = FaginsAlgorithm.top_k(&mut srcs2, &Min, 5).unwrap();
        let mut a3 = VecSource::from_dense("a", &g1);
        let mut b3 = VecSource::from_dense("b", &g2);
        let mut srcs3: Vec<&mut dyn GradedSource> = vec![&mut a3, &mut b3];
        let run10 = FaginsAlgorithm.top_k(&mut srcs3, &Min, 10).unwrap();
        let restart_cost = run5.stats.database_access_cost() + run10.stats.database_access_cost();
        assert!(
            resumed_cost < restart_cost,
            "resumed {resumed_cost} vs restart {restart_cost}"
        );
    }

    #[test]
    fn owned_session_matches_borrowing_session() {
        let (a, b) = fixture();
        let boxed: Vec<Box<dyn GradedSource>> = vec![Box::new(a), Box::new(b)];
        let mut owned = OwnedFaSession::new(boxed, Box::new(Min)).unwrap();
        let batch1 = owned.next_k(2).unwrap();
        let batch2 = owned.next_k(2).unwrap();
        assert_eq!(owned.emitted(), 4);

        let (mut a2, mut b2) = fixture();
        let refs: Vec<&mut dyn GradedSource> = vec![&mut a2, &mut b2];
        let mut borrowed = FaSession::new(refs, &Min).unwrap();
        assert_eq!(batch1.answers, borrowed.next_k(2).unwrap().answers);
        assert_eq!(batch2.answers, borrowed.next_k(2).unwrap().answers);
        assert_eq!(owned.stats(), borrowed.stats());
    }

    #[test]
    fn session_rejects_zero_k() {
        let (mut a, mut b) = fixture();
        let srcs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let mut session = FaSession::new(srcs, &Min).unwrap();
        assert_eq!(session.next_k(0), Err(AlgoError::ZeroK));
    }
}
