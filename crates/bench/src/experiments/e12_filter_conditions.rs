//! E12 — Chaudhuri–Gravano filter conditions (\[CG96\], quoted in §4.1):
//! simulating A₀ with "the color score is at least .2"-style filter
//! queries; the τ schedule trades restarts against over-fetching.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::cg_filter::CgFilter;
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E12",
        "filter-condition simulation of A0",
        "[CG96]: simulate A0 with filter conditions (grade ≥ τ), restarting with a lower τ \
         until k results survive",
    );
    let n = cfg.pick(1 << 14, 1 << 10);
    let k = 10usize;
    let fa_cost = mean_cost(&FaginsAlgorithm, &min, k, cfg.seeds, |seed| {
        independent_uniform(n, 2, seed)
    })
    .database_access_cost();

    let mut t = Table::new(
        format!("τ schedules on two independent lists (N = {n}, k = {k}); A0 costs {fa_cost}"),
        &["τ₀", "decay", "rounds", "final τ", "total cost", "cost/A0"],
    );
    // With uniform grades a τ-filter on two lists keeps ≈ N·(1−τ)²
    // candidates, so the restart regime starts near τ* = 1 − √(k/N);
    // sweep schedules on both sides of it.
    let tau_star = 1.0 - ((k as f64) / (n as f64)).sqrt();
    for &(tau0, decay) in &[
        (1.0 - (1.0 - tau_star) / 4.0, 0.9f64), // far too greedy: several restarts
        (1.0 - (1.0 - tau_star) / 2.0, 0.9),    // somewhat greedy
        (tau_star, 0.9),                        // near the sweet spot
        (0.8f64.min(tau_star), 0.5),
        (0.5, 0.5),
        (0.05, 0.5),
    ] {
        let mut rounds_total = 0u64;
        let mut cost_total = 0u64;
        let mut tau_final = 0.0;
        for seed in 0..cfg.seeds {
            let mut sources = independent_uniform(n, 2, seed);
            let mut refs: Vec<&mut dyn GradedSource> = sources
                .iter_mut()
                .map(|s| s as &mut dyn GradedSource)
                .collect();
            let filter = CgFilter::new(tau0, decay).expect("valid schedule");
            let run = filter.run(&mut refs, &Min, k).expect("query runs");
            rounds_total += u64::from(run.rounds);
            cost_total += run.result.stats.database_access_cost();
            tau_final = run.final_tau;
        }
        let cost = cost_total / cfg.seeds;
        t.row(vec![
            f3(tau0),
            f3(decay),
            f3(rounds_total as f64 / cfg.seeds as f64),
            f3(tau_final),
            int(cost),
            f3(cost as f64 / fa_cost as f64),
        ]);
    }
    report.table(t);
    report.note(
        "a greedy τ₀ close to the top grade restarts several times and re-pays each prefix; \
         a lax τ₀ finishes in one round but over-fetches. The sweet spot sits near the true \
         k-th grade — which the middleware cannot know in advance, which is precisely why \
         [CG96] treat the schedule as an optimization problem.",
    );
    report
}
