//! Top-k query evaluation algorithms over sorted/random-access sources
//! (§4.1).
//!
//! | Algorithm | Paper role | Cost (independent lists) |
//! |-----------|------------|--------------------------|
//! | [`naive::Naive`] | the obvious baseline: drain every list | `m·N` sorted |
//! | [`fa::FaginsAlgorithm`] | algorithm A₀ of \[Fa96\] | `O(N^((m−1)/m)·k^(1/m))`, optimal for strict monotone queries (Thms 4.1/4.2) |
//! | [`max_merge::MaxMerge`] | the disjunction (max) special case | `m·k`, independent of `N` |
//! | [`pruned_fa::PrunedFa`] | A₀ + the random-access pruning improvements sketched in \[Fa96\] | ≤ A₀ |
//! | [`ta::ThresholdAlgorithm`] | extension: the successor algorithm (open problem of §6) | instance optimal |
//! | [`nra::Nra`] | extension: no-random-access regime (§4.2's missing id mappings) | sorted access only |
//! | [`ca::CombinedAlgorithm`] | extension: FLN's cost-ratio interleaving of TA and NRA | tuned by `⌊c_R/c_S⌋` |
//! | [`approx::ApproxTa`]/[`approx::ApproxNra`] | extension: FLN θ-approximation | `(1+θ)` grade slack |
//! | [`cg_filter::CgFilter`] | Chaudhuri–Gravano \[CG96\] filter-condition simulation | τ-schedule dependent |
//!
//! All algorithms consume [`GradedSource`]s, meter every access into an
//! [`AccessStats`], and return answers with **exact** grades — returning
//! an object with an under- or over-stated grade counts as wrong, and
//! the test suites verify results against a brute-force oracle. The two
//! documented exceptions are NRA (certified lower bounds; no random
//! access to close intervals with) and the θ > 0 approximations, whose
//! relaxed *set* semantics are specified in `DESIGN.md` §10.

pub mod approx;
pub mod ca;
pub mod cg_filter;
pub mod fa;
pub mod max_merge;
pub mod naive;
pub mod nra;
pub mod pruned_fa;
pub mod ta;

use std::fmt;

use fmdb_core::score::ScoredObject;
use fmdb_core::scoring::ScoringFunction;

use crate::request::TopKRequest;
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// The answers and metered cost of one top-k evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The top `k` objects with their exact overall grades, descending
    /// (ties by ascending oid). Shorter than `k` only if the universe is.
    pub answers: Vec<ScoredObject<Oid>>,
    /// The database accesses performed.
    pub stats: AccessStats,
}

/// Errors a top-k algorithm can raise before touching any source.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgoError {
    /// The query shipped no subqueries/sources.
    NoSources,
    /// `k` was zero.
    ZeroK,
    /// The scoring function declared itself non-monotone; A₀-family
    /// algorithms are only correct for monotone functions (§4.1), so —
    /// like Garlic — the middleware refuses to run.
    NonMonotoneScoring(String),
    /// The algorithm requires a specific scoring behaviour the supplied
    /// function does not exhibit (e.g. [`max_merge::MaxMerge`] needs
    /// max; [`cg_filter::CgFilter`] needs `combine ≤ min`).
    UnsupportedScoring {
        /// Algorithm name.
        algorithm: &'static str,
        /// What was required.
        requirement: &'static str,
        /// The offending function's name.
        scoring: String,
    },
    /// A [`TopKRequest`] could not be assembled (missing scoring
    /// function, malformed weights, weight/source arity mismatch, …).
    InvalidRequest(String),
    /// The execution engine failed mid-query (e.g. a prefetch worker
    /// panicked inside a subsystem). Carries the engine's description
    /// of the failure; see `crate::engine::EngineError` for the
    /// structured form.
    Engine(String),
}

impl fmt::Display for AlgoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlgoError::NoSources => write!(f, "no sources supplied"),
            AlgoError::ZeroK => write!(f, "k must be at least 1"),
            AlgoError::NonMonotoneScoring(name) => {
                write!(f, "scoring function '{name}' is not monotone")
            }
            AlgoError::UnsupportedScoring {
                algorithm,
                requirement,
                scoring,
            } => write!(f, "{algorithm} requires {requirement}, but got '{scoring}'"),
            AlgoError::InvalidRequest(reason) => write!(f, "invalid request: {reason}"),
            AlgoError::Engine(reason) => write!(f, "engine failure: {reason}"),
        }
    }
}

impl std::error::Error for AlgoError {}

/// A top-k evaluation strategy.
///
/// Contract:
/// * all sources grade the same universe of objects;
/// * the algorithm may consume sorted access from the sources' current
///   cursors — every implementation here calls
///   [`GradedSource::rewind`] first, except explicit resumption
///   sessions ([`fa::FaSession`]);
/// * answers carry exact grades, sorted by descending grade then
///   ascending oid; at most `k` answers, fewer only when the universe
///   holds fewer objects.
pub trait TopKAlgorithm {
    /// The algorithm's display name.
    fn name(&self) -> &'static str;

    /// Finds the top `k` answers to the query whose `i`-th conjunct is
    /// evaluated by `sources[i]`, combining grades with `scoring`.
    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError>;

    /// The per-shard kernel the sharded engine path may substitute for
    /// this algorithm, or `None` to always run serially.
    ///
    /// An algorithm may only advertise a kernel whose sharded execution
    /// (run the kernel per shard, merge local top-k lists, see
    /// [`crate::sharded`]) returns an oracle-valid top-k for every
    /// monotone query — the default keeps algorithms with no such proof
    /// on the serial path.
    fn shard_kernel(&self) -> Option<crate::sharded::ShardKernel> {
        None
    }
}

/// The unified evaluation interface: any strategy that can answer a
/// [`TopKRequest`].
///
/// Every [`TopKAlgorithm`] implements this automatically (the blanket
/// impl locks the request's shared sources and runs the scalar code
/// path unchanged); strategies with richer native results — like
/// [`nra::Nra`]'s grade intervals — implement it directly. The batched
/// parallel engine ([`crate::engine::Engine`]) accepts the same
/// requests, so callers pick a strategy without changing how they
/// describe the query.
pub trait Algorithm {
    /// The strategy's display name.
    fn name(&self) -> &'static str;

    /// Answers `request`, consuming sorted/random access from its
    /// sources' current cursors (implementations rewind first).
    fn run(&mut self, request: &TopKRequest) -> Result<TopKResult, AlgoError>;
}

impl<T: TopKAlgorithm> Algorithm for T {
    fn name(&self) -> &'static str {
        TopKAlgorithm::name(self)
    }

    fn run(&mut self, request: &TopKRequest) -> Result<TopKResult, AlgoError> {
        let scoring = request.scoring();
        request.with_sources(|refs| self.top_k(refs, &scoring, request.k()))
    }
}

/// Shared argument validation for the A₀ family.
fn validate(
    sources: &[&mut dyn GradedSource],
    scoring: &dyn ScoringFunction,
    k: usize,
) -> Result<(), AlgoError> {
    if sources.is_empty() {
        return Err(AlgoError::NoSources);
    }
    if k == 0 {
        return Err(AlgoError::ZeroK);
    }
    if !scoring.is_monotone() {
        return Err(AlgoError::NonMonotoneScoring(scoring.name()));
    }
    Ok(())
}

/// Sorts combined `(oid, grade)` pairs into output order and truncates
/// to `k`.
fn finalize(mut combined: Vec<ScoredObject<Oid>>, k: usize, stats: AccessStats) -> TopKResult {
    combined.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
    combined.truncate(k);
    TopKResult {
        answers: combined,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(AlgoError::NoSources.to_string().contains("no sources"));
        assert!(AlgoError::ZeroK.to_string().contains("k"));
        assert!(AlgoError::NonMonotoneScoring("f".into())
            .to_string()
            .contains("monotone"));
        let e = AlgoError::UnsupportedScoring {
            algorithm: "max-merge",
            requirement: "max semantics",
            scoring: "min".into(),
        };
        assert!(e.to_string().contains("max-merge"));
    }
}
