//! E21 — extension: sharded intra-query execution.
//!
//! PR 1's engine parallelizes *across* requests; the ROADMAP's "as
//! fast as the hardware allows" needs parallelism *inside* one
//! expensive query too. The sharded path partitions every source into
//! P disjoint shards, runs the TA kernel per shard on scoped workers,
//! and lets shards cooperate through a shared atomic bound on the
//! global k-th grade so a shard with weak candidates stops early
//! against the *global* answer. This experiment measures what the
//! partitioning costs and saves, and re-checks the headline invariant:
//! the sharded answers equal the serial answers bit for bit.

use std::sync::Arc;
use std::time::Instant;

use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::engine::Engine;
use fmdb_middleware::policy::{ExecPolicy, ShardPolicy};
use fmdb_middleware::request::{SharedScoring, TopKQuery, TopKRequest};
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let min: SharedScoring = Arc::new(Min);
    let mut report = Report::new(
        "E21",
        "sharded intra-query execution (partition-parallel TA)",
        "extension: Fagin-style middleware merges are partitionable — per-shard TA with a \
         shared global threshold returns the identical top-k while spreading the scan over \
         worker threads",
    );
    let n = cfg.pick(1 << 16, 1 << 11);
    let m = 2usize;
    let k = 10usize;

    // Sharding is a per-request policy now: the same default engine
    // serves every shard count.
    let make_request = |seed: u64, sharding: ShardPolicy| -> TopKRequest {
        TopKQuery::compose()
            .sources(independent_uniform(n, m, seed))
            .shared_scoring(Arc::clone(&min))
            .k(k)
            .policy(ExecPolicy::new().sharding(sharding))
            .request()
            .expect("valid request")
    };
    let engine = Engine::default();

    let mut t = Table::new(
        format!("wall-clock and access cost, N = {n}, m = {m}, k = {k}, min"),
        &["shards", "wall µs", "sorted", "random", "spawns", "speedup"],
    );
    let mut serial_wall = 0.0f64;
    let mut mismatches = 0usize;
    for shards in [1usize, 2, 4, 8] {
        let sharding = if shards > 1 {
            ShardPolicy::Shards {
                shards,
                min_items: 1,
            }
        } else {
            ShardPolicy::Serial
        };
        let mut wall = 0.0f64;
        let mut sorted = 0u64;
        let mut random = 0u64;
        let mut spawns = 0u64;
        for seed in 0..cfg.seeds {
            let request = make_request(seed, sharding);
            let t0 = Instant::now();
            let result = engine
                .run_algorithm(&ThresholdAlgorithm, &request)
                .expect("sharded TA run");
            wall += t0.elapsed().as_secs_f64() * 1e6;
            sorted += result.stats.sorted;
            random += result.stats.random;
            spawns += result.stats.worker_spawns;
            // Headline invariant, re-checked on the measured corpora
            // against a request pinned to the serial path.
            let serial = engine
                .run_algorithm(
                    &ThresholdAlgorithm,
                    &make_request(seed, ShardPolicy::Serial),
                )
                .expect("serial TA run");
            if serial.answers != result.answers {
                mismatches += 1;
            }
        }
        wall /= cfg.seeds as f64;
        if shards == 1 {
            serial_wall = wall;
        }
        t.row(vec![
            int(shards as u64),
            f3(wall),
            int(sorted / cfg.seeds),
            int(random / cfg.seeds),
            int(spawns / cfg.seeds),
            f3(serial_wall / wall.max(1e-9)),
        ]);
    }
    report.table(t);
    report.note(format!(
        "answer mismatches vs the serial engine: {mismatches} (must be 0; the \
         shard_equivalence proptest suite proves the same equality on random corpora)."
    ));
    report.note(
        "speedup is hardware-bound: on a single-core host the sharded path can only tie or \
         lose to serial (thread setup is pure overhead), while the per-shard sorted-access \
         totals show the cooperative threshold keeping total work near the serial cost. The \
         Criterion `sharded` bench group measures the same sweep under steady state.",
    );
    report
}
