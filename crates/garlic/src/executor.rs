//! The query executor: runs planner-chosen strategies against catalog
//! sources, metering every database access.

use std::collections::{HashMap, HashSet};
use std::fmt;

use fmdb_core::graded_set::GradedSet;
use fmdb_core::query::{AtomicQuery, Query, QueryError};
use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::conorms::Max;
use fmdb_core::scoring::{ConormScoring, ScoringFunction};
use fmdb_middleware::algorithms::ca::CombinedAlgorithm;
use fmdb_middleware::algorithms::fa::{FaginsAlgorithm, OwnedFaSession};
use fmdb_middleware::algorithms::max_merge::MaxMerge;
use fmdb_middleware::algorithms::naive::Naive;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::{AlgoError, TopKAlgorithm};
use fmdb_middleware::engine::{Engine, EngineConfig, EngineError};
use fmdb_middleware::policy::ExecPolicy;
use fmdb_middleware::request::TopKQuery;
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::stats::AccessStats;

use crate::catalog::{Catalog, CatalogError};
use crate::cost::CostEstimator;
use crate::object::{Oid, SubObjectIndex};
use crate::planner::{plan, plan_costed, Combiner, FlatQuery, PlanKind};

/// Which top-k algorithm executes flat monotone plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlgoChoice {
    /// Let the planner decide (A₀ for conjunctions).
    #[default]
    Auto,
    /// Force plain A₀.
    Fa,
    /// Force A₀ with pruned random access.
    PrunedFa,
    /// Force the Threshold Algorithm (extension).
    Ta,
    /// Force the naive full drain.
    Naive,
}

/// Error raised during execution.
#[derive(Debug)]
pub enum ExecError {
    /// Catalog/repository failure.
    Catalog(CatalogError),
    /// Algorithm-level failure.
    Algo(AlgoError),
    /// Reference-semantics failure (full scans).
    Query(QueryError),
    /// `k` was zero.
    ZeroK,
    /// A planner invariant was violated — a bug in the planner, not
    /// the query; reported instead of panicking the caller.
    Internal(&'static str),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Catalog(e) => write!(f, "{e}"),
            ExecError::Algo(e) => write!(f, "{e}"),
            ExecError::Query(e) => write!(f, "{e}"),
            ExecError::ZeroK => write!(f, "k must be at least 1"),
            ExecError::Internal(msg) => {
                write!(f, "internal planner invariant violated: {msg}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CatalogError> for ExecError {
    fn from(e: CatalogError) -> Self {
        ExecError::Catalog(e)
    }
}

impl From<AlgoError> for ExecError {
    fn from(e: AlgoError) -> Self {
        ExecError::Algo(e)
    }
}

impl From<EngineError> for ExecError {
    fn from(e: EngineError) -> Self {
        ExecError::Algo(AlgoError::from(e))
    }
}

impl From<QueryError> for ExecError {
    fn from(e: QueryError) -> Self {
        ExecError::Query(e)
    }
}

/// The answers, cost, and plan of one executed query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Top-k answers, descending grade (ties by ascending oid).
    pub answers: Vec<ScoredObject<Oid>>,
    /// Total database accesses across all sources and rounds.
    pub stats: AccessStats,
    /// The strategy that produced the result.
    pub plan: PlanKind,
    /// The planner's explanation.
    pub explanation: String,
}

impl QueryResult {
    /// The answers as a graded set.
    pub fn graded_set(&self) -> GradedSet<Oid> {
        self.answers.iter().map(|a| (a.id, a.grade)).collect()
    }
}

/// An adapter exposing a [`Combiner`] as a [`ScoringFunction`] for the
/// middleware algorithms and the engine's shared requests.
struct OwnedCombiner(Combiner);

impl ScoringFunction for OwnedCombiner {
    fn name(&self) -> String {
        self.0.name()
    }
    fn combine(&self, scores: &[Score]) -> Score {
        self.0.combine(scores)
    }
    fn is_strict(&self) -> bool {
        false // conservative; strictness is not needed for execution
    }
    fn is_monotone(&self) -> bool {
        self.0.is_monotone()
    }
}

/// A resumable top-k cursor over one query; see [`Garlic::cursor`].
#[derive(Debug)]
pub struct QueryCursor {
    session: OwnedFaSession,
}

impl QueryCursor {
    /// The next `batch` best answers (those ranked after everything
    /// already returned), with cumulative session statistics.
    pub fn next_batch(&mut self, batch: usize) -> Result<QueryResult, ExecError> {
        let result = self.session.next_k(batch)?;
        Ok(QueryResult {
            answers: result.answers,
            stats: result.stats,
            plan: PlanKind::FaginA0,
            explanation: "resumable A0 session (continue where we left off)".to_owned(),
        })
    }

    /// Answers already returned across batches.
    pub fn emitted(&self) -> usize {
        self.session.emitted()
    }
}

/// The Garlic facade: a catalog plus query execution.
///
/// Flat monotone plans are evaluated through the middleware's batched,
/// parallel [`Engine`]; answers and charged access counts are
/// bit-identical to the scalar algorithms.
pub struct Garlic {
    catalog: Catalog,
    engine: Engine,
}

impl fmt::Debug for Garlic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Garlic({:?})", self.catalog)
    }
}

impl Garlic {
    /// Wraps a catalog, executing through a default-configured engine.
    pub fn new(catalog: Catalog) -> Garlic {
        Garlic::with_engine_config(catalog, EngineConfig::default())
    }

    /// Wraps a catalog with an explicit engine configuration (batch
    /// size, parallelism, grade-cache capacity).
    pub fn with_engine_config(catalog: Catalog, config: EngineConfig) -> Garlic {
        Garlic {
            catalog,
            engine: Engine::new(config),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The execution engine serving this facade's flat plans.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Explains how a query would be executed, without running it:
    /// the unified planner's decision record for a nominal `k` of 10
    /// (plan chosen, per-candidate estimated costs, statistics basis).
    pub fn explain(&self, query: &Query) -> String {
        let p = plan_costed(query, &self.catalog, 10, &CostEstimator::default());
        format!("{}: {}", p.kind, p.explanation)
    }

    /// Finds the top `k` answers, choosing the strategy through the
    /// unified cost-based planner under the default estimator.
    pub fn top_k(&self, query: &Query, k: usize) -> Result<QueryResult, ExecError> {
        self.top_k_optimized(query, k, &CostEstimator::default())
    }

    /// Finds the top `k` answers with a **cost-based** plan choice
    /// (§4.2's optimizer): strategies are priced through `estimator`
    /// and the cheapest valid one runs.
    pub fn top_k_optimized(
        &self,
        query: &Query,
        k: usize,
        estimator: &CostEstimator,
    ) -> Result<QueryResult, ExecError> {
        if k == 0 {
            return Err(ExecError::ZeroK);
        }
        let p = plan_costed(query, &self.catalog, k, estimator);
        self.execute_plan(p, query, k)
    }

    /// Finds the top `k` answers with an explicit algorithm override
    /// for flat monotone queries (used by the experiments).
    pub fn top_k_with(
        &self,
        query: &Query,
        k: usize,
        choice: AlgoChoice,
    ) -> Result<QueryResult, ExecError> {
        if k == 0 {
            return Err(ExecError::ZeroK);
        }
        if matches!(choice, AlgoChoice::Auto) {
            return self.top_k_optimized(query, k, &CostEstimator::default());
        }
        let p = plan(query, &self.catalog);
        match (p.kind, choice) {
            (PlanKind::FullScan, _) => self.full_scan(query, k, p.explanation),
            (_, AlgoChoice::Naive) => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("non-FullScan plans carry a flat query"));
                };
                self.run_flat(
                    &flat,
                    k,
                    &Naive,
                    PlanKind::FaginA0,
                    "forced naive".to_owned(),
                )
            }
            (_, choice) => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("non-FullScan plans carry a flat query"));
                };
                let pruned = PrunedFa::default();
                let (algo, label): (&dyn TopKAlgorithm, &str) = match choice {
                    AlgoChoice::PrunedFa => (&pruned, "forced pruned A0"),
                    AlgoChoice::Ta => (&ThresholdAlgorithm, "forced TA"),
                    _ => (&FaginsAlgorithm, "algorithm A0"),
                };
                self.run_flat(&flat, k, algo, PlanKind::FaginA0, label.to_owned())
            }
        }
    }

    /// Finds the top `k` answers for a flat monotone query under an
    /// explicit [`ExecPolicy`] — the policy picks the algorithm (CA,
    /// the θ-approximations, …), the charged cost model, and the
    /// per-request shard settings; the engine resolves it in
    /// [`Engine::run`]. Plans without a flat form (full scans for
    /// negation/reference semantics) ignore the policy and execute as
    /// [`Garlic::top_k`] would.
    pub fn top_k_policy(
        &self,
        query: &Query,
        k: usize,
        policy: ExecPolicy,
    ) -> Result<QueryResult, ExecError> {
        if k == 0 {
            return Err(ExecError::ZeroK);
        }
        let p = plan(query, &self.catalog);
        let Some(flat) = p.flat else {
            return self.execute_plan(p, query, k);
        };
        let request = TopKQuery::compose()
            .sources(self.build_sources(&flat)?)
            .scoring(OwnedCombiner(flat.combiner.clone()))
            .k(k)
            .policy(policy)
            .request()?;
        // The engine's planner record: for explicit policies it names
        // the forced algorithm, for `Algo::Auto` the cost-based choice.
        let explain = self.engine.explain(&request)?;
        let result = self.engine.run(&request)?;
        Ok(QueryResult {
            answers: result.answers,
            stats: result.stats,
            plan: PlanKind::from_physical(explain.chosen).unwrap_or(PlanKind::FaginA0),
            explanation: format!("execution policy: {explain}"),
        })
    }

    /// Runs a planner-selected plan.
    fn execute_plan(
        &self,
        p: crate::planner::Plan,
        query: &Query,
        k: usize,
    ) -> Result<QueryResult, ExecError> {
        match p.kind {
            PlanKind::FullScan => self.full_scan(query, k, p.explanation),
            PlanKind::MaxMerge => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("max-merge plans carry a flat query"));
                };
                self.run_max_merge(&flat, k, p.explanation)
            }
            PlanKind::CrispFilter => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("crisp-filter plans carry a flat query"));
                };
                self.run_crisp_filter(&flat, k, p.explanation)
            }
            PlanKind::FaginA0 => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("A0 plans carry a flat query"));
                };
                self.run_flat(&flat, k, &FaginsAlgorithm, PlanKind::FaginA0, p.explanation)
            }
            PlanKind::Ta => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("TA plans carry a flat query"));
                };
                self.run_flat(&flat, k, &ThresholdAlgorithm, PlanKind::Ta, p.explanation)
            }
            PlanKind::Ca { h } => {
                let Some(flat) = p.flat else {
                    return Err(ExecError::Internal("CA plans carry a flat query"));
                };
                self.run_flat(
                    &flat,
                    k,
                    &CombinedAlgorithm::new(h, 0.0),
                    PlanKind::Ca { h },
                    p.explanation,
                )
            }
        }
    }

    /// Builds global-id sources for each atom of a flat query.
    fn build_sources(&self, flat: &FlatQuery) -> Result<Vec<VecSource>, ExecError> {
        flat.atoms
            .iter()
            .map(|a| self.catalog.source_for(a).map_err(ExecError::from))
            .collect()
    }

    fn run_flat(
        &self,
        flat: &FlatQuery,
        k: usize,
        algo: &dyn TopKAlgorithm,
        kind: PlanKind,
        explanation: String,
    ) -> Result<QueryResult, ExecError> {
        let request = TopKQuery::compose()
            .sources(self.build_sources(flat)?)
            .scoring(OwnedCombiner(flat.combiner.clone()))
            .k(k)
            .request()?;
        let result = self.engine.run_algorithm(algo, &request)?;
        Ok(QueryResult {
            answers: result.answers,
            stats: result.stats,
            plan: kind,
            explanation,
        })
    }

    fn run_max_merge(
        &self,
        flat: &FlatQuery,
        k: usize,
        explanation: String,
    ) -> Result<QueryResult, ExecError> {
        // The planner probed max-likeness; run the merge under the
        // canonical max so the middleware's own probe also accepts it.
        let request = TopKQuery::compose()
            .sources(self.build_sources(flat)?)
            .scoring(ConormScoring(Max))
            .k(k)
            .request()?;
        let result = self.engine.run_algorithm(&MaxMerge, &request)?;
        Ok(QueryResult {
            answers: result.answers,
            stats: result.stats,
            plan: PlanKind::MaxMerge,
            explanation,
        })
    }

    /// The Beatles strategy (§4.1): resolve crisp conjuncts to a match
    /// set S, then random-access only S's fuzzy grades.
    fn run_crisp_filter(
        &self,
        flat: &FlatQuery,
        k: usize,
        explanation: String,
    ) -> Result<QueryResult, ExecError> {
        let mut stats = AccessStats::ZERO;
        let mut survivors: Option<HashSet<Oid>> = None;
        let mut crisp_positions = Vec::new();
        for (i, atom) in flat.atoms.iter().enumerate() {
            if let Some(matches) = self.catalog.crisp_matches(atom)? {
                // Cost model: streaming the grade-1 prefix under sorted
                // access costs |matches| accesses, plus one more to
                // observe the stream dropping to grade 0.
                let universe = self
                    .catalog
                    .repository_for(&atom.attribute)?
                    .universe_size() as u64;
                stats.sorted += (matches.len() as u64 + 1).min(universe);
                let set: HashSet<Oid> = matches.into_iter().collect();
                survivors = Some(match survivors {
                    None => set,
                    Some(prev) => prev.intersection(&set).copied().collect(),
                });
                crisp_positions.push(i);
            }
        }
        let Some(survivors) = survivors else {
            return Err(ExecError::Internal(
                "crisp-filter plans have >= 1 crisp conjunct",
            ));
        };

        // Random-access every fuzzy conjunct for each survivor.
        let mut fuzzy_sources: HashMap<usize, VecSource> = HashMap::new();
        for (i, atom) in flat.atoms.iter().enumerate() {
            if !crisp_positions.contains(&i) {
                fuzzy_sources.insert(i, self.catalog.source_for(atom)?);
            }
        }
        let mut answers: Vec<ScoredObject<Oid>> = Vec::with_capacity(survivors.len());
        let mut grades = vec![Score::ONE; flat.atoms.len()];
        let mut ordered: Vec<Oid> = survivors.iter().copied().collect();
        ordered.sort_unstable();
        for oid in ordered {
            for (i, grade) in grades.iter_mut().enumerate() {
                if let Some(src) = fuzzy_sources.get_mut(&i) {
                    *grade = src.random_access(oid);
                    stats.random += 1;
                } else {
                    *grade = Score::ONE; // crisp conjunct matched
                }
            }
            answers.push(ScoredObject::new(oid, flat.combiner.combine(&grades)));
        }
        answers.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
        answers.truncate(k);

        // If the filter kept fewer than k objects, pad with grade-0
        // objects from outside S (the combiner is zero-absorbing, so
        // their overall grade is exactly 0). Padding costs a drain of
        // one crisp source's universe.
        if answers.len() < k {
            let crisp_atom = &flat.atoms[crisp_positions[0]];
            let mut src = self.catalog.source_for(crisp_atom)?;
            src.rewind();
            let mut seen_ids: HashSet<Oid> = answers.iter().map(|a| a.id).collect();
            while answers.len() < k {
                let Some(so) = src.sorted_next() else { break };
                stats.sorted += 1;
                if seen_ids.insert(so.id) && !survivors.contains(&so.id) {
                    answers.push(ScoredObject::new(so.id, Score::ZERO));
                }
            }
        }

        Ok(QueryResult {
            answers,
            stats,
            plan: PlanKind::CrispFilter,
            explanation,
        })
    }

    /// Reference-semantics full scan: supports arbitrary Boolean
    /// structure including negation.
    fn full_scan(
        &self,
        query: &Query,
        k: usize,
        explanation: String,
    ) -> Result<QueryResult, ExecError> {
        let mut stats = AccessStats::ZERO;
        let atoms: Vec<&AtomicQuery> = query.atoms();
        // Per-atom grade maps (atoms may repeat; build each once).
        let mut grade_maps: Vec<(AtomicQuery, HashMap<Oid, Score>)> = Vec::new();
        let mut universe: HashSet<Oid> = HashSet::new();
        for atom in &atoms {
            if grade_maps.iter().any(|(a, _)| a == *atom) {
                continue;
            }
            let mut src = self.catalog.source_for(atom)?;
            src.rewind();
            let mut map = HashMap::with_capacity(src.info().universe_size);
            while let Some(so) = src.sorted_next() {
                stats.sorted += 1;
                map.insert(so.id, so.grade);
                universe.insert(so.id);
            }
            grade_maps.push(((*atom).clone(), map));
        }

        let mut answers: Vec<ScoredObject<Oid>> = Vec::with_capacity(universe.len());
        for &oid in &universe {
            let grade = query.grade(&|atom: &AtomicQuery| {
                grade_maps
                    .iter()
                    .find(|(a, _)| a == atom)
                    // Objects absent from a source have grade 0 there.
                    .map(|(_, m)| m.get(&oid).copied().unwrap_or(Score::ZERO))
            })?;
            answers.push(ScoredObject::new(oid, grade));
        }
        answers.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
        answers.truncate(k);
        Ok(QueryResult {
            answers,
            stats,
            plan: PlanKind::FullScan,
            explanation,
        })
    }

    /// Opens a **resumable cursor** over a flat monotone query: each
    /// [`QueryCursor::next_batch`] call returns the next best answers,
    /// continuing the underlying A₀ session where it left off — the
    /// paper's "ask the subsystem for, say, the top 10 objects …, then
    /// request the next 10, etc." (§4), powered by A₀'s "continue where
    /// we left off" property (§4.1).
    ///
    /// Queries that cannot be flattened (negation, nesting) are
    /// rejected; run them through [`Garlic::top_k`] instead.
    pub fn cursor(&self, query: &Query) -> Result<QueryCursor, ExecError> {
        let Some(flat) = crate::planner::flatten(query) else {
            return Err(ExecError::Algo(AlgoError::UnsupportedScoring {
                algorithm: "cursor",
                requirement: "a flat monotone combination of atomic queries",
                scoring: query.to_string(),
            }));
        };
        let sources = self.build_sources(&flat)?;
        let boxed: Vec<Box<dyn GradedSource>> = sources
            .into_iter()
            .map(|s| Box::new(s) as Box<dyn GradedSource>)
            .collect();
        let session = OwnedFaSession::new(boxed, Box::new(OwnedCombiner(flat.combiner)))?;
        Ok(QueryCursor { session })
    }

    /// Lifts a sub-object result to parent objects (§4.2's
    /// Advertisement/AdPhoto case): a parent's grade is the max over
    /// its sub-objects' grades under `role`; shared sub-objects
    /// contribute to every parent.
    pub fn lift_to_parents(
        result: &QueryResult,
        index: &SubObjectIndex,
        role: &str,
        k: usize,
    ) -> Vec<ScoredObject<Oid>> {
        let mut best: HashMap<Oid, Score> = HashMap::new();
        for sub in &result.answers {
            for &parent in index.parents_of(role, sub.id) {
                let entry = best.entry(parent).or_insert(Score::ZERO);
                *entry = (*entry).max(sub.grade);
            }
        }
        let mut out: Vec<ScoredObject<Oid>> = best
            .into_iter()
            .map(|(id, grade)| ScoredObject::new(id, grade))
            .collect();
        out.sort_by(|a, b| b.grade.cmp(&a.grade).then(a.id.cmp(&b.id)));
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Value;
    use crate::repository::{QbicRepository, TableRepository};
    use fmdb_core::query::Target;
    use fmdb_media::synth::{SynthConfig, SyntheticDb};

    fn demo_garlic(n: usize) -> Garlic {
        let db = SyntheticDb::generate(&SynthConfig {
            count: n,
            bins_per_channel: 3,
            seed: 5,
            ..SynthConfig::default()
        });
        let mut table = TableRepository::new("cds", n as u64);
        for i in 0..n as u64 {
            let artist = if i % 5 == 0 { "Beatles" } else { "Various" };
            table.set(i, "Artist", Value::text(artist));
        }
        let mut catalog = Catalog::new();
        catalog.register(Box::new(table)).unwrap();
        catalog
            .register(Box::new(QbicRepository::new("qbic", db)))
            .unwrap();
        Garlic::new(catalog)
    }

    fn beatles_and_red() -> Query {
        Query::and(vec![
            Query::atomic("Artist", Target::Text("Beatles".into())),
            Query::atomic("Color", Target::Similar("red".into())),
        ])
    }

    #[test]
    fn crisp_filter_returns_only_beatles_with_color_order() {
        let g = demo_garlic(50);
        let r = g.top_k(&beatles_and_red(), 5).unwrap();
        assert_eq!(r.plan, PlanKind::CrispFilter);
        assert_eq!(r.answers.len(), 5);
        // (a) nonzero grades only for Beatles albums,
        for a in &r.answers {
            if a.grade > Score::ZERO {
                assert_eq!(a.id % 5, 0, "object {} is not a Beatles album", a.id);
            }
        }
        // (b) descending by color grade.
        for w in r.answers.windows(2) {
            assert!(w[0].grade >= w[1].grade);
        }
    }

    #[test]
    fn crisp_filter_agrees_with_full_reference_scan() {
        let g = demo_garlic(40);
        let q = beatles_and_red();
        let fast = g.top_k(&q, 6).unwrap();
        let slow = g.top_k_with(&q, 6, AlgoChoice::Naive).unwrap();
        let fg: Vec<Score> = fast.answers.iter().map(|a| a.grade).collect();
        let sg: Vec<Score> = slow.answers.iter().map(|a| a.grade).collect();
        assert_eq!(fg, sg);
        assert!(
            fast.stats.database_access_cost() < slow.stats.database_access_cost(),
            "crisp filter {} should beat naive {}",
            fast.stats,
            slow.stats
        );
    }

    #[test]
    fn fuzzy_conjunction_runs_costed_plan_and_matches_naive() {
        let g = demo_garlic(40);
        let q = Query::and(vec![
            Query::atomic("Color", Target::Similar("red".into())),
            Query::atomic("Shape", Target::Similar("round".into())),
        ]);
        let fa = g.top_k(&q, 5).unwrap();
        // The unified cost model prices TA's shallower stopping depth
        // below A₀'s Theorem-4.1 law for this two-conjunct instance.
        assert_eq!(fa.plan, PlanKind::Ta);
        let naive = g.top_k_with(&q, 5, AlgoChoice::Naive).unwrap();
        assert_eq!(fa.answers, naive.answers);
        for choice in [AlgoChoice::PrunedFa, AlgoChoice::Ta] {
            let alt = g.top_k_with(&q, 5, choice).unwrap();
            let alt_g: Vec<Score> = alt.answers.iter().map(|a| a.grade).collect();
            let ref_g: Vec<Score> = naive.answers.iter().map(|a| a.grade).collect();
            assert_eq!(alt_g, ref_g, "{choice:?}");
        }
    }

    #[test]
    fn sharded_engine_config_preserves_ta_answers() {
        // Two Garlic facades over identical catalogs: one serial
        // engine, one sharded. AlgoChoice::Ta advertises the sharded
        // TA kernel, so the second facade takes the partition-parallel
        // path — answers must not change.
        let q = Query::and(vec![
            Query::atomic("Color", Target::Similar("red".into())),
            Query::atomic("Shape", Target::Similar("round".into())),
        ]);
        let serial = g_with(EngineConfig::serial());
        let want = serial.top_k_with(&q, 6, AlgoChoice::Ta).unwrap();
        for shards in [2usize, 4] {
            let sharded = g_with(EngineConfig {
                shards,
                shard_min_items: 1,
                ..EngineConfig::DEFAULT
            });
            let got = sharded.top_k_with(&q, 6, AlgoChoice::Ta).unwrap();
            assert_eq!(got.answers, want.answers, "shards={shards}");
            assert!(
                got.stats.worker_spawns >= shards as u64,
                "sharded path did not run (shards={shards}, spawns={})",
                got.stats.worker_spawns
            );
        }
    }

    #[test]
    fn exec_policy_threads_through_the_facade() {
        use fmdb_middleware::policy::Algo;
        use fmdb_middleware::stats::CostModel;

        let q = Query::and(vec![
            Query::atomic("Color", Target::Similar("red".into())),
            Query::atomic("Shape", Target::Similar("round".into())),
        ]);
        let g = g_with(EngineConfig::default());
        let reference = g.top_k(&q, 6).unwrap();

        // CA under an expensive-random-access cost model: same answer
        // grades as the planner's default A0 path.
        let ca = g
            .top_k_policy(
                &q,
                6,
                ExecPolicy::new()
                    .algo(Algo::Ca)
                    .cost_model(CostModel::random_to_sorted_ratio(10.0).unwrap()),
            )
            .unwrap();
        assert!(ca.explanation.contains("combined-ca"), "{}", ca.explanation);
        let ca_grades: Vec<_> = ca.answers.iter().map(|a| a.grade).collect();
        let ref_grades: Vec<_> = reference.answers.iter().map(|a| a.grade).collect();
        assert_eq!(ca_grades, ref_grades);

        // A θ-approximate policy still returns a full answer set.
        let approx = g.top_k_policy(&q, 6, ExecPolicy::new().theta(0.1)).unwrap();
        assert_eq!(approx.answers.len(), 6);
    }

    fn g_with(config: EngineConfig) -> Garlic {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 60,
            bins_per_channel: 3,
            seed: 5,
            ..SynthConfig::default()
        });
        let mut catalog = Catalog::new();
        catalog
            .register(Box::new(QbicRepository::new("qbic", db)))
            .unwrap();
        Garlic::with_engine_config(catalog, config)
    }

    #[test]
    fn disjunction_uses_max_merge() {
        let g = demo_garlic(40);
        let q = Query::or(vec![
            Query::atomic("Color", Target::Similar("red".into())),
            Query::atomic("Color", Target::Similar("blue".into())),
        ]);
        let r = g.top_k(&q, 5).unwrap();
        assert_eq!(r.plan, PlanKind::MaxMerge);
        // m·k sorted accesses, no random.
        assert_eq!(r.stats.sorted, 10);
        assert_eq!(r.stats.random, 0);
    }

    #[test]
    fn negated_query_full_scans_with_correct_semantics() {
        let g = demo_garlic(30);
        let q = Query::not(Query::atomic("Color", Target::Similar("red".into())));
        let r = g.top_k(&q, 3).unwrap();
        assert_eq!(r.plan, PlanKind::FullScan);
        // The best anti-red object has grade = 1 − (lowest red grade).
        let red = g
            .top_k(&Query::atomic("Color", Target::Similar("red".into())), 30)
            .unwrap();
        let least_red = red.answers.last().unwrap();
        assert!(r.answers[0].grade.approx_eq(least_red.grade.negate(), 1e-9));
    }

    #[test]
    fn explain_names_the_plan() {
        let g = demo_garlic(20);
        assert!(g.explain(&beatles_and_red()).starts_with("crisp-filter"));
        let neg = Query::not(beatles_and_red());
        assert!(g.explain(&neg).starts_with("full-scan"));
    }

    #[test]
    fn zero_k_rejected() {
        let g = demo_garlic(10);
        assert!(matches!(
            g.top_k(&beatles_and_red(), 0),
            Err(ExecError::ZeroK)
        ));
    }

    #[test]
    fn crisp_filter_pads_when_selectivity_is_too_low() {
        let db = SyntheticDb::generate(&SynthConfig {
            count: 10,
            bins_per_channel: 3,
            seed: 5,
            ..SynthConfig::default()
        });
        let mut table = TableRepository::new("cds", 10);
        table.set(0, "Artist", Value::text("Beatles")); // just one match
        let mut catalog = Catalog::new();
        catalog.register(Box::new(table)).unwrap();
        catalog
            .register(Box::new(QbicRepository::new("qbic", db)))
            .unwrap();
        let g = Garlic::new(catalog);
        let r = g.top_k(&beatles_and_red(), 4).unwrap();
        assert_eq!(r.answers.len(), 4);
        assert!(r.answers[0].grade > Score::ZERO);
        assert!(r.answers[1..].iter().all(|a| a.grade == Score::ZERO));
    }

    #[test]
    fn cursor_batches_stitch_into_the_one_shot_ranking() {
        let g = demo_garlic(40);
        let q = Query::and(vec![
            Query::atomic("Color", Target::Similar("red".into())),
            Query::atomic("Shape", Target::Similar("round".into())),
        ]);
        let mut cursor = g.cursor(&q).unwrap();
        let b1 = cursor.next_batch(4).unwrap();
        let b2 = cursor.next_batch(4).unwrap();
        assert_eq!(cursor.emitted(), 8);
        let stitched: Vec<_> = b1.answers.iter().chain(&b2.answers).cloned().collect();
        let oneshot = g.top_k_with(&q, 8, AlgoChoice::Fa).unwrap();
        assert_eq!(stitched, oneshot.answers);
        // Batches never overlap and are globally ordered.
        for w in stitched.windows(2) {
            assert!(w[0].grade >= w[1].grade);
        }
    }

    #[test]
    fn cursor_rejects_non_flat_queries() {
        let g = demo_garlic(10);
        let q = Query::not(Query::atomic("Color", Target::Similar("red".into())));
        assert!(g.cursor(&q).is_err());
    }

    #[test]
    fn lift_to_parents_takes_max_over_shared_subs() {
        use crate::object::ComplexObject;
        let mut ad1 = ComplexObject::new(100);
        ad1.attach("AdPhoto", 0);
        ad1.attach("AdPhoto", 1);
        let mut ad2 = ComplexObject::new(200);
        ad2.attach("AdPhoto", 1); // shared with ad1
        let idx = SubObjectIndex::build([&ad1, &ad2]);
        let result = QueryResult {
            answers: vec![
                ScoredObject::new(0, Score::clamped(0.4)),
                ScoredObject::new(1, Score::clamped(0.9)),
            ],
            stats: AccessStats::ZERO,
            plan: PlanKind::MaxMerge,
            explanation: String::new(),
        };
        let parents = Garlic::lift_to_parents(&result, &idx, "AdPhoto", 10);
        assert_eq!(parents.len(), 2);
        assert_eq!(parents[0].id, 100); // max(0.4, 0.9) = 0.9, ties → lower oid
        assert!(parents[0].grade.approx_eq(Score::clamped(0.9), 1e-12));
        assert!(parents[1].grade.approx_eq(Score::clamped(0.9), 1e-12));
    }
}
