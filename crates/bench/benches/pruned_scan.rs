//! Criterion benchmarks for the block-max pruning layer: the widened
//! squared-distance kernel (scalar vs 4-wide vs 8-wide), zone-map
//! pruned vs unpruned corpus kNN scans, and bounded vs unbounded
//! sorted drains of the paged store — each at several selectivities
//! (how close the seeded threshold sits to the best grades), since
//! selectivity is what decides how many blocks/pages the bounds can
//! prove skippable.

use std::path::{Path, PathBuf};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fmdb_core::score::Score;
use fmdb_media::embed::{
    squared_euclidean, squared_euclidean_4wide, squared_euclidean_scalar, EmbeddedCorpus,
    EmbeddedSpace,
};
use fmdb_media::synth::{SynthConfig, SyntheticDb};
use fmdb_middleware::source::{GradedSource, VecSource};
use fmdb_middleware::store::{build_store_from_source, BuildConfig, PagedStore, StoreOptions};
use fmdb_middleware::workload::independent_uniform;

fn corpus(n: usize, bins_per_channel: usize) -> (EmbeddedCorpus, SyntheticDb) {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel,
        seed: 11,
        ..SynthConfig::default()
    });
    let hists: Vec<_> = db.objects.iter().map(|o| o.histogram.clone()).collect();
    let corpus = EmbeddedCorpus::build(
        EmbeddedSpace::for_space(&db.space).expect("QBIC matrix embeds"),
        &hists,
    )
    .expect("same space");
    (corpus, db)
}

/// Kernel microbench: the same dot-product at 1, 4, and 8 lanes.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pruned_scan/kernel");
    for dim in [64usize, 125] {
        let a: Vec<f64> = (0..dim).map(|i| (i as f64).sin()).collect();
        let b: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
        group.bench_function(BenchmarkId::new("scalar", dim), |bch| {
            bch.iter(|| squared_euclidean_scalar(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::new("4wide", dim), |bch| {
            bch.iter(|| squared_euclidean_4wide(black_box(&a), black_box(&b)))
        });
        group.bench_function(BenchmarkId::new("8wide", dim), |bch| {
            bch.iter(|| squared_euclidean(black_box(&a), black_box(&b)))
        });
    }
    group.finish();
}

/// Corpus scans: pruned vs unpruned at several threshold
/// selectivities. The threshold is the distance of the q-th nearest
/// neighbour, so "q = 10" seeds the scan with a tight bound (high
/// selectivity, most blocks skippable) and "q = n/2" a loose one.
fn bench_corpus_scans(c: &mut Criterion) {
    let n = 4096usize;
    let (corpus, db) = corpus(n, 4);
    let query = &db.objects[0].histogram;
    let (oracle, _) = corpus.knn_brute(query, n).expect("same space");

    let mut group = c.benchmark_group("pruned_scan/corpus");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("knn_unpruned", n), |b| {
        b.iter(|| corpus.knn_unpruned(black_box(query), 10).expect("scan"))
    });
    group.bench_function(BenchmarkId::new("knn_pruned", n), |b| {
        b.iter(|| corpus.knn(black_box(query), 10).expect("scan"))
    });
    for q in [10usize, 100, n / 2] {
        let bound = oracle[q - 1].1;
        group.bench_function(BenchmarkId::new("within_unpruned", q), |b| {
            b.iter(|| {
                corpus
                    .knn_within(black_box(query), 10, bound, false)
                    .expect("scan")
            })
        });
        group.bench_function(BenchmarkId::new("within_pruned", q), |b| {
            b.iter(|| {
                corpus
                    .knn_within(black_box(query), 10, bound, true)
                    .expect("scan")
            })
        });
    }
    group.finish();
}

/// Scratch directory inside `target/` so benches never write outside
/// the repository.
fn store_path(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/bench-stores");
    std::fs::create_dir_all(&dir).expect("create bench store dir");
    dir.join(format!("pruned-{tag}.fmdb"))
}

/// Store drains: a bounded drain stops (and skips the provably-low
/// tail at page granularity) where the unbounded drain streams every
/// page. Selectivity = the fraction of the run above the bound.
fn bench_store_drains(c: &mut Criterion) {
    let n = 1 << 15;
    let mut src: VecSource = independent_uniform(n, 1, 23).remove(0);
    let path = store_path("drain");
    build_store_from_source(&path, &mut src, &BuildConfig::with_page_size(4096))
        .expect("build store");
    let store = PagedStore::open(&path, StoreOptions::DEFAULT).expect("open store");

    let mut group = c.benchmark_group("pruned_scan/store");
    group.sample_size(20);
    group.bench_function(BenchmarkId::new("drain_unbounded", n), |b| {
        b.iter(|| {
            let mut cursor = store.source();
            let mut count = 0u64;
            while let Some(so) = cursor.sorted_next() {
                black_box(so);
                count += 1;
            }
            count
        })
    });
    for selectivity in [0.01f64, 0.1, 0.5] {
        let bound = Score::clamped(1.0 - selectivity);
        group.bench_function(
            BenchmarkId::new("drain_bounded", format!("{selectivity}")),
            |b| {
                b.iter(|| {
                    let mut cursor = store.source();
                    cursor
                        .sorted_drain_bounded(black_box(bound))
                        .map(|v| v.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_corpus_scans,
    bench_store_drains
);
criterion_main!(benches);
