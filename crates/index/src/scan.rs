//! Sequential scan — the baseline §2.1 wants to "avoid doing … of the
//! entire database", and, thanks to the dimensionality curse, also the
//! method that eventually *wins* as dimensions grow (experiment E8's
//! crossover).

use crate::geometry::{dist2, validate_point, GeometryError};
use crate::rtree::{IndexAccess, ItemId, Neighbor};

/// A flat array of points scanned in full for every query.
#[derive(Debug, Clone, Default)]
pub struct LinearScan {
    dim: usize,
    points: Vec<(Vec<f64>, ItemId)>,
}

impl LinearScan {
    /// An empty scan structure for `dim`-dimensional points.
    pub fn new(dim: usize) -> Result<LinearScan, GeometryError> {
        if dim == 0 {
            return Err(GeometryError::EmptyDimension);
        }
        Ok(LinearScan {
            dim,
            points: Vec::new(),
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Stores a point.
    pub fn insert(&mut self, point: &[f64], id: ItemId) -> Result<(), GeometryError> {
        validate_point(point)?;
        if point.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        self.points.push((point.to_vec(), id));
        Ok(())
    }

    /// The `k` nearest neighbors; always computes exactly `len()`
    /// distances.
    pub fn knn(
        &self,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbor>, IndexAccess), GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut all: Vec<Neighbor> = self
            .points
            .iter()
            .map(|(p, id)| Neighbor {
                id: *id,
                distance: dist2(p, query).sqrt(),
            })
            .collect();
        all.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
        all.truncate(k);
        let access = IndexAccess {
            nodes_visited: 1,
            distance_computations: self.points.len() as u64,
        };
        Ok((all, access))
    }

    /// The `k` nearest neighbors with running-sum early abandoning:
    /// once `k` candidates are held, a partial sum of squares that
    /// already exceeds the current k-th best squared distance proves
    /// the point cannot qualify, so the remaining coordinates are
    /// skipped. Results are identical to [`LinearScan::knn`];
    /// `distance_computations` counts only fully evaluated points.
    pub fn knn_abandoning(
        &self,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbor>, IndexAccess), GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        // (squared distance, id) so ties and ordering match `knn`
        // exactly; sqrt only on the way out.
        let mut best: Vec<(f64, ItemId)> = Vec::with_capacity(k.saturating_add(1));
        let mut completed = 0u64;
        for (p, id) in &self.points {
            if k == 0 {
                break;
            }
            let threshold = if best.len() == k {
                best[k - 1].0
            } else {
                f64::INFINITY
            };
            let mut sum = 0.0;
            let mut abandoned = false;
            for (chunk_p, chunk_q) in p.chunks(16).zip(query.chunks(16)) {
                for (a, b) in chunk_p.iter().zip(chunk_q) {
                    let d = a - b;
                    sum += d * d;
                }
                if sum > threshold {
                    abandoned = true;
                    break;
                }
            }
            if abandoned {
                continue;
            }
            completed += 1;
            if best.len() < k || (sum, *id) < (threshold, best[k - 1].1) {
                let pos = best
                    .iter()
                    .position(|&(d, i)| (sum, *id) < (d, i))
                    .unwrap_or(best.len());
                best.insert(pos, (sum, *id));
                best.truncate(k);
            }
        }
        let result = best
            .into_iter()
            .map(|(d_sq, id)| Neighbor {
                id,
                distance: d_sq.sqrt(),
            })
            .collect();
        let access = IndexAccess {
            nodes_visited: 1,
            distance_computations: completed,
        };
        Ok((result, access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_exact_neighbors() {
        let mut s = LinearScan::new(2).unwrap();
        s.insert(&[0.0, 0.0], 0).unwrap();
        s.insert(&[1.0, 0.0], 1).unwrap();
        s.insert(&[0.1, 0.1], 2).unwrap();
        let (res, access) = s.knn(&[0.0, 0.0], 2).unwrap();
        assert_eq!(res[0].id, 0);
        assert_eq!(res[1].id, 2);
        assert_eq!(access.distance_computations, 3);
    }

    #[test]
    fn validation() {
        assert!(LinearScan::new(0).is_err());
        let mut s = LinearScan::new(2).unwrap();
        assert!(s.insert(&[1.0], 0).is_err());
        assert!(s.knn(&[1.0], 1).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn abandoning_scan_matches_plain_scan() {
        // Deterministic pseudo-random points, no RNG dependency.
        let dim = 24;
        let mut s = LinearScan::new(dim).unwrap();
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for id in 0..200 {
            let p: Vec<f64> = (0..dim).map(|_| next()).collect();
            s.insert(&p, id).unwrap();
        }
        let q: Vec<f64> = (0..dim).map(|_| next()).collect();
        for k in [1, 5, 17, 200, 500] {
            let (plain, plain_access) = s.knn(&q, k).unwrap();
            let (fast, fast_access) = s.knn_abandoning(&q, k).unwrap();
            assert_eq!(plain.len(), fast.len());
            for (a, b) in plain.iter().zip(&fast) {
                assert_eq!(a.id, b.id, "k={k}");
                assert_eq!(a.distance, b.distance, "k={k}");
            }
            if k < 200 {
                assert!(
                    fast_access.distance_computations < plain_access.distance_computations,
                    "k={k}: no abandoning happened"
                );
            }
        }
        assert!(s.knn_abandoning(&q, 0).unwrap().0.is_empty());
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let mut s = LinearScan::new(1).unwrap();
        s.insert(&[0.5], 9).unwrap();
        assert!(s.knn(&[0.0], 0).unwrap().0.is_empty());
        assert_eq!(s.knn(&[0.0], 10).unwrap().0.len(), 1);
    }
}
