//! `lock-order`: builds the workspace lock-acquisition graph and fails
//! on cycles.
//!
//! Nodes are **lock classes** — the identifier a guard is acquired
//! through (`self.stripes[i].lock()` → class `stripes`), or the name
//! of a guard-returning workspace helper (`Self::lock_cache(…)` →
//! class `lock_cache`). An edge `A → B` is recorded whenever `B` is
//! acquired while a guard of class `A` is still live (the guard's
//! lexical scope, as the parser tracks it). Two threads taking the
//! same pair of locks in opposite orders is the classic deadlock; a
//! cycle in this graph is exactly that possibility, so the rule
//! reports every strongly connected component with two or more
//! classes.
//!
//! Deliberate over-approximations, chosen so a missed deadlock is
//! impossible at the cost of occasional curation:
//!
//! * classes are name-level — two fields named `inner` in different
//!   types collapse into one node (collisions are curated by renaming
//!   or a justified `lint:allow(lock-order)`);
//! * *any* guard-returning definition makes a call an acquisition
//!   ([`SymbolTable::any_returns_guard`]) — missing an acquisition
//!   would hide an edge;
//! * self-edges (`A → A`) are ignored: re-acquiring the same *class*
//!   is usually a different stripe of a striped structure, and
//!   single-lock re-entrancy is out of scope for an order analysis.
//!
//! Only library code outside `#[cfg(test)]` contributes edges, so
//! deliberately cyclic fixtures in tests cannot poison the real graph.

use crate::analyze::AnalyzedWorkspace;
use crate::diagnostics::Diagnostic;
use crate::workspace::FileClass;
use std::collections::{BTreeMap, BTreeSet};

/// Rule name, as reported and as used in `lint:allow(...)`.
pub const RULE: &str = "lock-order";

/// One `A → B` acquisition edge, with the site of the inner
/// acquisition for reporting.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Lock class already held.
    pub from: String,
    /// Lock class acquired while `from` is held.
    pub to: String,
    /// Workspace-relative path of the acquiring file.
    pub path: String,
    /// Line of the inner acquisition.
    pub line: usize,
    /// Column of the inner acquisition.
    pub col: usize,
    /// Function the acquisition happens in.
    pub in_fn: String,
    /// How the inner lock was taken: `lock`/`read`/`write` for direct
    /// acquisitions, `call` for guard-returning helper calls.
    pub via: String,
}

/// A lock acquisition inside one function: class plus the lexical
/// range its guard stays live.
struct Acq {
    class: String,
    line: usize,
    col: usize,
    end_line: usize,
    via: String,
}

/// Extracts every `A → B` edge from the parsed workspace.
pub fn build_edges(aws: &AnalyzedWorkspace<'_>) -> Vec<Edge> {
    let mut edges = Vec::new();
    for af in &aws.files {
        if af.source.class != FileClass::Lib {
            continue;
        }
        for f in &af.tree.fns {
            if af.source.in_test_region(f.line) {
                continue;
            }
            let mut acqs: Vec<Acq> = Vec::new();
            for l in &f.body.locks {
                acqs.push(Acq {
                    class: l.class.clone(),
                    line: l.line,
                    col: l.col,
                    end_line: l.scope_end_line,
                    via: l.method.clone(),
                });
            }
            // A call to a guard-returning workspace helper acquires the
            // helper's lock on the caller's side; the guard lives to the
            // end of the statement, or of the block when `let`-bound.
            for c in &f.body.calls {
                if aws.symbols.any_returns_guard(&c.callee) {
                    acqs.push(Acq {
                        class: c.callee.clone(),
                        line: c.line,
                        col: c.col,
                        end_line: if c.bound_to_let {
                            c.block_end_line
                        } else {
                            c.stmt_end_line
                        },
                        via: "call".to_owned(),
                    });
                }
            }
            acqs.sort_by(|a, b| a.line.cmp(&b.line).then(a.col.cmp(&b.col)));
            for (i, outer) in acqs.iter().enumerate() {
                for inner in &acqs[i + 1..] {
                    if inner.line > outer.end_line || inner.class == outer.class {
                        continue;
                    }
                    edges.push(Edge {
                        from: outer.class.clone(),
                        to: inner.class.clone(),
                        path: af.source.rel_path.display().to_string(),
                        line: inner.line,
                        col: inner.col,
                        in_fn: f.name.clone(),
                        via: inner.via.clone(),
                    });
                }
            }
        }
    }
    edges
}

/// Nodes reachable from `start` (excluding trivial zero-length paths).
fn reachable<'a>(adj: &BTreeMap<&'a str, BTreeSet<&'a str>>, start: &'a str) -> BTreeSet<&'a str> {
    let mut seen = BTreeSet::new();
    let mut stack: Vec<&str> = adj.get(start).into_iter().flatten().copied().collect();
    while let Some(n) = stack.pop() {
        if seen.insert(n) {
            stack.extend(adj.get(n).into_iter().flatten().copied());
        }
    }
    seen
}

/// Checks the workspace lock graph for cycles.
pub fn check(aws: &AnalyzedWorkspace<'_>) -> Vec<Diagnostic> {
    let edges = build_edges(aws);
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    // Mutual-reachability grouping: the graphs here have a handful of
    // nodes, so quadratic SCC detection is simplest and deterministic.
    let reach: BTreeMap<&str, BTreeSet<&str>> =
        adj.keys().map(|&n| (n, reachable(&adj, n))).collect();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    let mut diags = Vec::new();
    for &a in adj.keys() {
        if reported.contains(a) {
            continue;
        }
        let scc: BTreeSet<&str> = reach[a]
            .iter()
            .filter(|&&b| b != a && reach.get(b).is_some_and(|r| r.contains(a)))
            .copied()
            .chain([a])
            .collect();
        if scc.len() < 2 {
            continue;
        }
        reported.extend(scc.iter().copied());
        let classes: Vec<&str> = scc.iter().copied().collect();
        // Anchor the report on the lexically first edge inside the SCC.
        let mut cyc_edges: Vec<&Edge> = edges
            .iter()
            .filter(|e| scc.contains(e.from.as_str()) && scc.contains(e.to.as_str()))
            .collect();
        cyc_edges.sort_by(|x, y| {
            x.path
                .cmp(&y.path)
                .then(x.line.cmp(&y.line))
                .then(x.col.cmp(&y.col))
        });
        cyc_edges.dedup_by(|x, y| x.from == y.from && x.to == y.to);
        let Some(anchor) = cyc_edges.first() else {
            continue;
        };
        let detail: Vec<String> = cyc_edges
            .iter()
            .map(|e| {
                format!(
                    "`{}` is acquired (via `{}`) while `{}` is held at {}:{} (in `{}`)",
                    e.to, e.via, e.from, e.path, e.line, e.in_fn
                )
            })
            .collect();
        diags.push(
            Diagnostic::new(
                RULE,
                std::path::Path::new(&anchor.path),
                anchor.line,
                anchor.col,
                format!(
                    "lock-order cycle between lock classes {} — two threads \
                     taking these in opposite orders deadlock",
                    classes
                        .iter()
                        .map(|c| format!("`{c}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
            .with_help(format!(
                "impose a single global acquisition order; the cycle's edges: {}",
                detail.join("; ")
            )),
        );
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse_workspace;
    use crate::workspace::{analyze, Workspace};
    use std::path::PathBuf;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        Workspace {
            files: sources
                .iter()
                .map(|(p, s)| analyze(PathBuf::from(p), s))
                .collect(),
        }
    }

    #[test]
    fn reports_a_two_lock_cycle() {
        let w = ws(&[(
            "crates/m/src/lib.rs",
            r#"
            fn forward(a: &Mutex<u32>, b: &Mutex<u32>) {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
            }
            fn backward(a: &Mutex<u32>, b: &Mutex<u32>) {
                let gb = b.lock().unwrap();
                let ga = a.lock().unwrap();
            }
            "#,
        )]);
        let aws = parse_workspace(&w);
        let diags = check(&aws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("`a`"), "{}", diags[0].message);
        assert!(diags[0].message.contains("`b`"), "{}", diags[0].message);
    }

    #[test]
    fn consistent_order_is_acyclic() {
        let w = ws(&[(
            "crates/m/src/lib.rs",
            r#"
            fn one(a: &Mutex<u32>, b: &Mutex<u32>) {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
            }
            fn two(a: &Mutex<u32>, b: &Mutex<u32>) {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
            }
            "#,
        )]);
        let aws = parse_workspace(&w);
        assert!(check(&aws).is_empty());
    }

    #[test]
    fn guard_helper_calls_count_as_acquisitions() {
        // Models the striped cache + buffer pool: `lock_cache` and
        // `lock_pool` are guard-returning helpers; one caller nests
        // them one way, another the other way — a cycle even though no
        // `.lock()` appears at the call sites themselves.
        let w = ws(&[(
            "crates/m/src/lib.rs",
            r#"
            fn lock_cache(m: &Mutex<u32>) -> MutexGuard<'_, u32> { m.lock().unwrap() }
            fn lock_pool(m: &Mutex<u32>) -> MutexGuard<'_, u32> { m.lock().unwrap() }
            fn ab(c: &Mutex<u32>, p: &Mutex<u32>) {
                let g = lock_cache(c);
                let h = lock_pool(p);
            }
            fn ba(c: &Mutex<u32>, p: &Mutex<u32>) {
                let h = lock_pool(p);
                let g = lock_cache(c);
            }
            "#,
        )]);
        let aws = parse_workspace(&w);
        let diags = check(&aws);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(
            diags[0].message.contains("lock_cache"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn striped_reacquire_of_same_class_is_not_a_cycle() {
        // A striped structure takes several stripes of the same class
        // in a loop; same-class pairs must not form self-edges.
        let w = ws(&[(
            "crates/m/src/lib.rs",
            r#"
            fn fold(stripes: &[Mutex<u32>]) -> u32 {
                let a = stripes[0].lock().unwrap();
                let b = stripes[1].lock().unwrap();
                *a + *b
            }
            "#,
        )]);
        let aws = parse_workspace(&w);
        assert!(check(&aws).is_empty());
    }

    #[test]
    fn test_code_contributes_no_edges() {
        let w = ws(&[(
            "crates/m/tests/deadlock.rs",
            r#"
            fn forward(a: &Mutex<u32>, b: &Mutex<u32>) {
                let ga = a.lock().unwrap();
                let gb = b.lock().unwrap();
            }
            fn backward(a: &Mutex<u32>, b: &Mutex<u32>) {
                let gb = b.lock().unwrap();
                let ga = a.lock().unwrap();
            }
            "#,
        )]);
        let aws = parse_workspace(&w);
        assert!(build_edges(&aws).is_empty());
        assert!(check(&aws).is_empty());
    }
}
