//! The paper's running example: a store that sells compact disks.
//!
//! `Artist='Beatles'` is a traditional crisp predicate answered by a
//! relational repository; `AlbumColor='red'` is a fuzzy predicate
//! answered by a QBIC-like image subsystem. The middleware merges them
//! — and its planner picks the crisp-filter strategy of §4.1.
//!
//! ```sh
//! cargo run --example cd_store
//! ```

use fuzzymm::garlic::demo::cd_store;
use fuzzymm::garlic::executor::AlgoChoice;
use fuzzymm::garlic::sql::parse;

fn main() {
    let store = cd_store(500, 1998);

    for sql in [
        // The paper's conjunction of a crisp and a fuzzy predicate.
        "SELECT TOP 5 WHERE Artist='Beatles' AND Color~'red'",
        // Two fuzzy conjuncts: (Color='red') ∧ (Shape='round').
        "SELECT TOP 5 WHERE Color~'red' AND Shape~'round'",
        // A disjunction — max admits the m·k algorithm.
        "SELECT TOP 5 WHERE Color~'red' OR Color~'blue'",
        // Weighted: care twice as much about color as shape (§5).
        "SELECT TOP 5 WHERE Color~'red' AND Shape~'round' WEIGHTS 2, 1",
        // Negation falls back to a reference-semantics scan.
        "SELECT TOP 5 WHERE NOT Color~'red'",
    ] {
        let stmt = parse(sql).expect("well-formed demo query");
        println!("query : {sql}");
        println!("plan  : {}", store.explain(&stmt.query));
        let result = store.top_k(&stmt.query, stmt.k).expect("query runs");
        print!("top   :");
        for a in &result.answers {
            print!("  #{}({})", a.id, a.grade);
        }
        println!("\ncost  : {}\n", result.stats);
    }

    // Paging through results: "ask for the top 10 … then request the
    // next 10" (§4) — the cursor continues A₀ where it left off.
    let stmt =
        parse("SELECT TOP 3 WHERE Color~'red' AND Shape~'round'").expect("well-formed demo query");
    let mut cursor = store.cursor(&stmt.query).expect("flat monotone query");
    for batch in 1..=3 {
        let page = cursor.next_batch(3).expect("next batch");
        let ids: Vec<String> = page.answers.iter().map(|a| format!("#{}", a.id)).collect();
        println!(
            "page {batch}: {}   (cumulative cost {})",
            ids.join(" "),
            page.stats.database_access_cost()
        );
    }
    println!();

    // How much did the planner save? Compare against a forced naive run.
    let stmt = parse("SELECT TOP 5 WHERE Artist='Beatles' AND Color~'red'")
        .expect("well-formed demo query");
    let smart = store.top_k(&stmt.query, stmt.k).expect("query runs");
    let naive = store
        .top_k_with(&stmt.query, stmt.k, AlgoChoice::Naive)
        .expect("query runs");
    println!(
        "crisp-filter cost {} vs naive {} — {:.1}x cheaper",
        smart.stats.database_access_cost(),
        naive.stats.database_access_cost(),
        naive.stats.database_access_cost() as f64 / smart.stats.database_access_cost() as f64
    );
}
