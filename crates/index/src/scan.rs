//! Sequential scan — the baseline §2.1 wants to "avoid doing … of the
//! entire database", and, thanks to the dimensionality curse, also the
//! method that eventually *wins* as dimensions grow (experiment E8's
//! crossover).

use crate::geometry::{dist2, validate_point, GeometryError};
use crate::rtree::{IndexAccess, ItemId, Neighbor};

/// A flat array of points scanned in full for every query.
#[derive(Debug, Clone, Default)]
pub struct LinearScan {
    dim: usize,
    points: Vec<(Vec<f64>, ItemId)>,
}

impl LinearScan {
    /// An empty scan structure for `dim`-dimensional points.
    pub fn new(dim: usize) -> Result<LinearScan, GeometryError> {
        if dim == 0 {
            return Err(GeometryError::EmptyDimension);
        }
        Ok(LinearScan {
            dim,
            points: Vec::new(),
        })
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Stores a point.
    pub fn insert(&mut self, point: &[f64], id: ItemId) -> Result<(), GeometryError> {
        validate_point(point)?;
        if point.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        self.points.push((point.to_vec(), id));
        Ok(())
    }

    /// The `k` nearest neighbors; always computes exactly `len()`
    /// distances.
    pub fn knn(
        &self,
        query: &[f64],
        k: usize,
    ) -> Result<(Vec<Neighbor>, IndexAccess), GeometryError> {
        validate_point(query)?;
        if query.len() != self.dim {
            return Err(GeometryError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        let mut all: Vec<Neighbor> = self
            .points
            .iter()
            .map(|(p, id)| Neighbor {
                id: *id,
                distance: dist2(p, query).sqrt(),
            })
            .collect();
        all.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .expect("finite distances")
                .then(a.id.cmp(&b.id))
        });
        all.truncate(k);
        let access = IndexAccess {
            nodes_visited: 1,
            distance_computations: self.points.len() as u64,
        };
        Ok((all, access))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_finds_exact_neighbors() {
        let mut s = LinearScan::new(2).unwrap();
        s.insert(&[0.0, 0.0], 0).unwrap();
        s.insert(&[1.0, 0.0], 1).unwrap();
        s.insert(&[0.1, 0.1], 2).unwrap();
        let (res, access) = s.knn(&[0.0, 0.0], 2).unwrap();
        assert_eq!(res[0].id, 0);
        assert_eq!(res[1].id, 2);
        assert_eq!(access.distance_computations, 3);
    }

    #[test]
    fn validation() {
        assert!(LinearScan::new(0).is_err());
        let mut s = LinearScan::new(2).unwrap();
        assert!(s.insert(&[1.0], 0).is_err());
        assert!(s.knn(&[1.0], 1).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn k_zero_and_oversized_k() {
        let mut s = LinearScan::new(1).unwrap();
        s.insert(&[0.5], 9).unwrap();
        assert!(s.knn(&[0.0], 0).unwrap().0.is_empty());
        assert_eq!(s.knn(&[0.0], 10).unwrap().0.len(), 1);
    }
}
