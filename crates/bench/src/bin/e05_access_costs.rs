//! Standalone runner for experiment `e05_access_costs`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e05_access_costs::run(&cfg).print();
}
