//! # fmdb-media — multimedia feature substrate
//!
//! The atomic-query layer (§2) of the reproduction of Fagin, *"Fuzzy
//! Queries in Multimedia Database Systems"* (PODS 1998): the feature
//! extractors and distance functions a QBIC-like subsystem uses to
//! grade objects against targets like `Color='red'` or
//! `Shape='round'`.
//!
//! * [`linalg`] — small dense matrices, power iteration, spectral
//!   bounds (no external linear-algebra dependency);
//! * [`color`] — RGB-binned color spaces, normalized histograms, the
//!   QBIC similarity matrix;
//! * [`distance`] — the quadratic-form color distance of eq. (1), plus
//!   L1/L2/intersection baselines;
//! * [`bounding`] — the \[HSE+95\] distance-bounding filter (ineq. (2))
//!   with a spectrally *proved* filter constant;
//! * [`embed`] — the Cholesky-embedded Euclidean kernel: factor
//!   `A = LLᵀ` once, embed `x′ = Lᵀx` per object, and every
//!   quadratic-form distance collapses to an O(k) norm, with batched
//!   early-abandoning kNN over pre-embedded corpora;
//! * [`shape`] — turning functions, Fourier descriptors, Hu moments
//!   over polygons;
//! * [`texture`] — Tamura-style texture features (coarseness,
//!   contrast, directionality) over grayscale patches;
//! * [`synth`] — synthetic image databases with controllable
//!   attribute correlation (the substitution for QBIC's proprietary
//!   image collections);
//! * [`scorer`] — distance → grade conversion.

#![forbid(unsafe_code)]
#![deny(missing_debug_implementations)]
#![warn(missing_docs)]

pub mod bounding;
pub mod color;
pub mod distance;
pub mod embed;
pub mod linalg;
pub mod scorer;
pub mod shape;
pub mod synth;
pub mod texture;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::bounding::{BoundedDistance, DistanceBound, ShortVector};
    pub use crate::color::{ColorHistogram, ColorSpace, Rgb};
    pub use crate::distance::{HistogramDistance, L2Distance, QuadraticFormDistance};
    pub use crate::embed::{EmbeddedCorpus, EmbeddedDistance, EmbeddedSpace};
    pub use crate::scorer::{DistanceScorer, ExpDecay, LinearCutoff};
    pub use crate::shape::{turning_distance, FourierDescriptor, HuMoments, Polygon};
    pub use crate::synth::{MediaObject, ShapeFamily, SynthConfig, SyntheticDb};
    pub use crate::texture::{named_texture, TextureDescriptor, TexturePatch};
}
