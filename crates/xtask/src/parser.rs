//! A hand-rolled recursive-descent parser over the [`crate::lexer`]
//! token stream, producing the per-file **item tree** the analyze
//! rules reason about.
//!
//! This is deliberately not a full Rust grammar. The build environment
//! is offline (no `syn`), and the analyze rules need *facts*, not
//! syntax trees: which functions exist (and in which `impl`), where
//! lock guards are acquired and how long they live, where threads are
//! spawned, which atomic operations run under which memory ordering,
//! which calls discard their value, and where integer arithmetic
//! happens. The parser therefore models:
//!
//! * the item grammar — `mod`, `impl` (with the implemented type
//!   name), `trait`, `fn` (modifiers, generics, parameters with type
//!   hints, return type), `struct`/`enum`/`const`/`static`/`type`/
//!   `use`/`macro_rules!` as skippable items;
//! * inside function bodies, a linear fact-extraction walk with a
//!   block stack (for guard scopes) and a statement tracker (for
//!   discard classification and temporary-guard lifetimes).
//!
//! **Graceful degradation is a hard requirement**: on any construct it
//! does not model, the parser records a [`ParseError`] and skips to
//! the next item boundary — it must never panic and never loop. The
//! workspace integration test parses every first-party `.rs` file and
//! asserts zero parse errors, so in practice the grammar subset covers
//! the whole codebase; the recovery path is insurance for code the
//! workspace has not written yet.

use std::collections::HashMap;

use crate::lexer::{Token, TokenKind};

/// Memory-ordering constant names, as spelled at atomic call sites.
pub const ORDERING_NAMES: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Atomic methods whose arguments carry a memory ordering.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// Zero-argument guard-producing methods on `Mutex` / `RwLock`.
const LOCK_METHODS: &[&str] = &["lock", "read", "write"];

/// Chain links that forward a `LockResult` guard (poison handling)
/// without ending the guard's life.
const POISON_WRAPPERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Integer primitive type names, for operand hints.
const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Statement keywords that can directly precede a `(` without being a
/// call (`if (a || b) …`, `while (…)`, `match (…)`, `return (…)`).
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "move", "mut", "ref", "else",
    "break", "continue", "where", "dyn", "impl", "fn",
];

/// A recoverable parse failure: the construct at `line:col` was not
/// modeled, and the parser skipped to the next item boundary.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// 1-based line of the unmodeled construct.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What the parser saw.
    pub message: String,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct FileTree {
    /// Every function (free, method, trait-default) with its body
    /// facts, in source order.
    pub fns: Vec<FnNode>,
    /// Recoverable failures (empty on every first-party file, by the
    /// workspace parse test).
    pub errors: Vec<ParseError>,
}

/// One parsed function and the facts mined from its body.
#[derive(Debug)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// The enclosing `impl`/`trait` type name, if any (`Engine`,
    /// `PagePool`, …).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when the declared return type mentions `Result`.
    pub returns_result: bool,
    /// True when the declared return type mentions a guard type
    /// (`MutexGuard`, `RwLockReadGuard`, `RwLockWriteGuard`) — the
    /// lock-order rule treats calls to such helpers as acquisitions.
    pub returns_guard: bool,
    /// Facts extracted from the body (empty for bodiless trait
    /// methods).
    pub body: BodyFacts,
}

/// The facts a function body yields.
#[derive(Debug, Default)]
pub struct BodyFacts {
    /// Direct lock acquisitions (`.lock()` / `.read()` / `.write()`),
    /// with guard lifetimes.
    pub locks: Vec<LockAcquire>,
    /// Thread spawn sites.
    pub spawns: Vec<SpawnSite>,
    /// Atomic operations that pass a memory ordering.
    pub atomics: Vec<AtomicSite>,
    /// Call sites (free, path, method, macro) with discard
    /// classification.
    pub calls: Vec<CallSite>,
    /// Binary / compound-assignment arithmetic with operand hints.
    pub arith: Vec<ArithSite>,
}

/// One direct guard acquisition and its live range.
#[derive(Debug, Clone)]
pub struct LockAcquire {
    /// Heuristic lock class: the last meaningful identifier of the
    /// receiver chain (`stripes` for `self.stripes[i].lock()`),
    /// resolved through simple local aliases.
    pub class: String,
    /// `lock`, `read`, or `write`.
    pub method: String,
    /// 1-based line of the acquiring method name.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Last line on which the guard is live: the enclosing block's
    /// closing brace for `let`-bound guards, the end of the statement
    /// for temporaries, the `drop(g)` line for explicit drops.
    pub scope_end_line: usize,
}

/// One thread spawn site.
#[derive(Debug, Clone)]
pub struct SpawnSite {
    /// True for path-form `thread::spawn` (detached); false for
    /// method-form `scope.spawn(…)` / pool-managed spawns.
    pub detached: bool,
    /// True when the `JoinHandle` flows onward: the spawn is nested
    /// inside an outer call (`handles.push(thread::spawn(…))`), bound
    /// by a non-`_` `let`, or returned/assigned. A bare
    /// `thread::spawn(…);` statement or `let _ =` discard leaves it
    /// false — the thread is truly detached.
    pub handle_kept: bool,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// One atomic operation that names a memory ordering.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// Last identifier of the receiver chain (the atomic's field or
    /// variable name, e.g. `cache_hits`).
    pub receiver: String,
    /// The atomic method (`fetch_add`, `load`, …).
    pub method: String,
    /// Every ordering constant named in the arguments, in order
    /// (`compare_exchange` passes two).
    pub orderings: Vec<String>,
    /// True when some non-ordering argument is a bare integer literal
    /// (the telemetry-counter increment shape).
    pub literal_arg: bool,
    /// 1-based line of the method name.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Line of the receiver token just before the method's `.` —
    /// rustfmt may wrap a chain so the method sits a line below its
    /// receiver, and an `// ordering(...)` justification above the
    /// statement must still cover the site.
    pub recv_line: usize,
}

/// How a call's produced value is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Discard {
    /// The value flows onward (bound, returned, chained, `?`-handled).
    Used,
    /// `let _ = call(…);` — explicitly thrown away.
    LetUnderscore,
    /// `call(…);` — a bare expression statement.
    StmtSemi,
}

/// One call site, as the ignored-result and lock-order rules see it.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Last path segment or method name; macros keep their bang
    /// (`write!`).
    pub callee: String,
    /// True for `.method(…)` form.
    pub is_method: bool,
    /// How the produced value is used.
    pub discard: Discard,
    /// 1-based line of the callee name.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Last line of the enclosing statement.
    pub stmt_end_line: usize,
    /// Closing-brace line of the enclosing block.
    pub block_end_line: usize,
    /// True when the call is the right-hand side of a `let` binding —
    /// a guard returned by a helper then lives to `block_end_line`.
    pub bound_to_let: bool,
}

/// Operand classification for the arithmetic rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OperandHint {
    /// An integer literal.
    IntLit,
    /// A float literal.
    FloatLit,
    /// An identifier with a known integer type (param or `let` ascription).
    IntIdent,
    /// An identifier with a known float type.
    FloatIdent,
    /// Anything else (untyped local, call result, parenthesized expr).
    Unknown,
}

/// One `+` / `-` / `*` / `+=` / `-=` / `*=` site with operand hints.
#[derive(Debug, Clone)]
pub struct ArithSite {
    /// The operator text.
    pub op: String,
    /// Hint for the left operand.
    pub lhs: OperandHint,
    /// Hint for the right operand.
    pub rhs: OperandHint,
    /// 1-based line of the operator.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Parses one file's comment-stripped token stream into a
/// [`FileTree`]. Never panics; unmodeled constructs become
/// [`ParseError`]s and the parser resumes at the next item.
pub fn parse(code: &[Token]) -> FileTree {
    let mut tree = FileTree::default();
    let mut p = Parser { toks: code, i: 0 };
    p.items(&mut tree, None, 0);
    tree
}

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self, ahead: usize) -> Option<&'a Token> {
        self.toks.get(self.i + ahead)
    }

    fn text(&self, ahead: usize) -> &'a str {
        self.peek(ahead).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.i);
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    /// Parses items until end of input or a `}` closing the enclosing
    /// block (`depth > 0`).
    fn items(&mut self, tree: &mut FileTree, impl_type: Option<&str>, depth: usize) {
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "}" if depth > 0 => {
                    self.bump();
                    return;
                }
                "#" => self.skip_attribute(),
                "pub" => {
                    self.bump();
                    if self.text(0) == "(" {
                        self.skip_balanced("(", ")");
                    }
                }
                "use" | "extern" if self.text(1) == "crate" => {
                    self.skip_to_semi();
                }
                "use" => {
                    self.skip_to_semi();
                }
                "mod" => {
                    self.bump();
                    self.bump(); // name
                    match self.text(0) {
                        "{" => {
                            self.bump();
                            self.items(tree, impl_type, depth + 1);
                        }
                        _ => {
                            self.skip_to_semi();
                        }
                    }
                }
                "impl" => self.item_impl(tree, depth),
                "trait" => self.item_trait(tree, depth),
                "fn" | "unsafe" | "async" | "const" | "static" | "type" | "default"
                    if self.fn_ahead() =>
                {
                    self.item_fn(tree, impl_type);
                }
                "const" | "static" | "type" => {
                    self.skip_to_semi();
                }
                "struct" | "enum" | "union" => self.skip_struct_like(),
                "macro_rules" => {
                    self.bump(); // macro_rules
                    self.bump(); // !
                    self.bump(); // name
                    self.skip_balanced("{", "}");
                }
                "extern" => {
                    // `extern "C" { … }` block or `extern crate x;`.
                    self.bump();
                    if self.peek(0).map(|t| t.kind) == Some(TokenKind::StrLike) {
                        self.bump();
                    }
                    match self.text(0) {
                        "{" => self.skip_balanced("{", "}"),
                        _ => {
                            self.skip_to_semi();
                        }
                    }
                }
                ";" => {
                    self.bump();
                }
                // Item-position macro invocation (`proptest! { … }`,
                // `criterion_group!(…);`): skip the delimited body.
                _ if tok.kind == TokenKind::Ident && self.text(1) == "!" => {
                    self.bump(); // name
                    self.bump(); // !
                    match self.text(0) {
                        "{" => self.skip_balanced("{", "}"),
                        "(" => {
                            self.skip_balanced("(", ")");
                            if self.text(0) == ";" {
                                self.bump();
                            }
                        }
                        "[" => {
                            self.skip_balanced("[", "]");
                            if self.text(0) == ";" {
                                self.bump();
                            }
                        }
                        _ => self.recover(),
                    }
                }
                _ => {
                    let (line, col, text) = (tok.line, tok.col, tok.text.clone());
                    tree.errors.push(ParseError {
                        line,
                        col,
                        message: format!("unexpected `{text}` at item position"),
                    });
                    self.recover();
                }
            }
        }
    }

    /// True when a `fn` keyword follows the current run of function
    /// modifiers (`pub` already consumed by the caller loop).
    fn fn_ahead(&self) -> bool {
        let mut k = 0;
        while matches!(
            self.text(k),
            "unsafe" | "async" | "const" | "default" | "extern"
        ) {
            k += 1;
            if self.peek(k).map(|t| t.kind) == Some(TokenKind::StrLike) {
                k += 1; // ABI string after `extern`
            }
        }
        self.text(k) == "fn"
    }

    fn item_impl(&mut self, tree: &mut FileTree, depth: usize) {
        self.bump(); // impl
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Type path until `for` / `{` / `where`; a `for` means we had
        // the trait, and the implemented type follows.
        let mut ty = self.take_type_name();
        if self.text(0) == "for" {
            self.bump();
            ty = self.take_type_name();
        }
        self.skip_where();
        if self.text(0) == "{" {
            self.bump();
            self.items(tree, ty.as_deref(), depth + 1);
        } else {
            self.skip_to_semi();
        }
    }

    fn item_trait(&mut self, tree: &mut FileTree, depth: usize) {
        self.bump(); // trait
        let name = self.bump().map(|t| t.text.clone());
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Supertrait bounds / where clause.
        while !matches!(self.text(0), "{" | ";" | "") {
            if self.text(0) == "<" {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
        if self.text(0) == "{" {
            self.bump();
            self.items(tree, name.as_deref(), depth + 1);
        } else {
            self.bump();
        }
    }

    /// Collects the last identifier of a (possibly generic, possibly
    /// `dyn`) type path, consuming it.
    fn take_type_name(&mut self) -> Option<String> {
        let mut last = None;
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "for" | "{" | "where" | ";" => break,
                "<" => self.skip_generics(),
                "::" | "dyn" | "&" | "'" => {
                    self.bump();
                }
                _ if tok.kind == TokenKind::Ident => {
                    last = Some(tok.text.clone());
                    self.bump();
                }
                _ if tok.kind == TokenKind::Lifetime => {
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
        last
    }

    fn item_fn(&mut self, tree: &mut FileTree, impl_type: Option<&str>) {
        // Modifiers.
        while matches!(
            self.text(0),
            "unsafe" | "async" | "const" | "default" | "extern"
        ) {
            self.bump();
            if self.peek(0).map(|t| t.kind) == Some(TokenKind::StrLike) {
                self.bump();
            }
        }
        let Some(kw) = self.bump() else { return }; // `fn`
        let line = kw.line;
        let name = match self.bump() {
            Some(t) => t.text.clone(),
            None => return,
        };
        if self.text(0) == "<" {
            self.skip_generics();
        }
        // Parameters.
        let mut hints = HashMap::new();
        if self.text(0) == "(" {
            let params = self.take_balanced("(", ")");
            collect_param_hints(params, &mut hints);
        }
        // Return type. Array types nest a `;` (`[f64; 3]`), so the
        // terminating `;`/`{`/`where` only counts outside brackets.
        let mut returns_result = false;
        let mut returns_guard = false;
        if self.text(0) == "->" {
            self.bump();
            let mut depth = 0usize;
            loop {
                let t = self.text(0);
                if t.is_empty() || (depth == 0 && matches!(t, "{" | "where" | ";")) {
                    break;
                }
                match t {
                    "[" | "(" => depth += 1,
                    "]" | ")" => depth = depth.saturating_sub(1),
                    _ => {
                        returns_result |= t == "Result";
                        returns_guard |=
                            matches!(t, "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard");
                    }
                }
                self.bump();
            }
        }
        self.skip_where();
        let body = match self.text(0) {
            "{" => {
                let start = self.i;
                self.skip_balanced("{", "}");
                walk_body(&self.toks[start..self.i], &mut hints)
            }
            _ => {
                // Signature-only `fn` (trait decl, extern block) ends
                // in `;`. Hitting EOF instead means the source is
                // truncated or a delimiter never closed — a parse
                // failure, not a declaration.
                if !self.skip_to_semi() {
                    tree.errors.push(ParseError {
                        line,
                        col: kw.col,
                        message: format!("fn `{name}` has neither a body nor a `;`"),
                    });
                }
                BodyFacts::default()
            }
        };
        tree.fns.push(FnNode {
            name,
            impl_type: impl_type.map(str::to_owned),
            line,
            returns_result,
            returns_guard,
            body,
        });
    }

    /// Skips `struct`/`enum`/`union` definitions (named braces, tuple
    /// `(…);`, or unit `;`).
    fn skip_struct_like(&mut self) {
        self.bump(); // keyword
        self.bump(); // name
        if self.text(0) == "<" {
            self.skip_generics();
        }
        self.skip_where();
        match self.text(0) {
            "{" => self.skip_balanced("{", "}"),
            "(" => {
                self.skip_balanced("(", ")");
                self.skip_to_semi();
            }
            _ => {
                self.skip_to_semi();
            }
        }
    }

    fn skip_attribute(&mut self) {
        self.bump(); // '#'
        if self.text(0) == "!" {
            self.bump();
        }
        if self.text(0) == "[" {
            self.skip_balanced("[", "]");
        }
    }

    /// Skips a balanced `<…>` generic group, counting `<<`/`>>` as two.
    fn skip_generics(&mut self) {
        let mut depth = 0isize;
        while let Some(tok) = self.bump() {
            match tok.text.as_str() {
                "<" => depth += 1,
                "<<" => depth += 2,
                ">" => depth -= 1,
                ">>" => depth -= 2,
                _ => {}
            }
            if depth <= 0 {
                return;
            }
        }
    }

    fn skip_where(&mut self) {
        if self.text(0) != "where" {
            return;
        }
        while !matches!(self.text(0), "{" | ";" | "") {
            if self.text(0) == "<" {
                self.skip_generics();
            } else {
                self.bump();
            }
        }
    }

    /// Skips past a `;` at zero bracket depth (consuming interleaved
    /// balanced groups).
    fn skip_to_semi(&mut self) -> bool {
        let mut depth = 0usize;
        while let Some(tok) = self.bump() {
            match tok.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => return true,
                _ => {}
            }
        }
        false
    }

    /// Consumes a balanced group from the current `open` token through
    /// its matching `close`, returning the inner tokens.
    fn take_balanced(&mut self, open: &str, close: &str) -> &'a [Token] {
        let start = self.i + 1;
        self.skip_balanced(open, close);
        let end = self.i.saturating_sub(1).max(start);
        &self.toks[start..end]
    }

    fn skip_balanced(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(tok) = self.bump() {
            if tok.text == open {
                depth += 1;
            } else if tok.text == close {
                depth -= 1;
                if depth == 0 {
                    return;
                }
            }
        }
    }

    /// Error recovery: skip to the next plausible item boundary — a
    /// `;` at depth zero, past a balanced `{…}` block, or just before
    /// a `}` that closes the enclosing scope.
    fn recover(&mut self) {
        self.bump(); // the offending token — always make progress
        let mut depth = 0usize;
        while let Some(tok) = self.peek(0) {
            match tok.text.as_str() {
                "{" if depth == 0 => {
                    self.skip_balanced("{", "}");
                    return;
                }
                "}" if depth == 0 => return, // let the enclosing items() see it
                ";" if depth == 0 => {
                    self.bump();
                    return;
                }
                // Stop in front of the next item so it still parses.
                "fn" | "pub" | "impl" | "trait" | "mod" | "use" | "struct" | "enum" | "#"
                    if depth == 0 =>
                {
                    return;
                }
                "(" | "[" | "{" => {
                    depth += 1;
                    self.bump();
                }
                ")" | "]" | "}" => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                _ => {
                    self.bump();
                }
            }
        }
    }
}

/// Parses parameter tokens into `name → hint` entries.
fn collect_param_hints(params: &[Token], hints: &mut HashMap<String, OperandHint>) {
    for group in split_top_commas(params) {
        let Some(colon) = top_level_colon(group) else {
            continue;
        };
        // Pattern side: the last plain identifier before the `:`.
        let name = group[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref")
            .map(|t| t.text.clone());
        if let Some(name) = name {
            if let Some(hint) = type_hint(&group[colon + 1..]) {
                hints.insert(name, hint);
            }
        }
    }
}

/// Splits a token slice on commas at zero bracket depth.
fn split_top_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut out = Vec::new();
    let mut depth = 0isize;
    let mut start = 0;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            "<<" => depth += 2,
            ")" | "]" | "}" | ">" => depth -= 1,
            ">>" => depth -= 2,
            "," if depth <= 0 => {
                out.push(&toks[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
    out
}

fn top_level_colon(toks: &[Token]) -> Option<usize> {
    let mut depth = 0isize;
    for (i, t) in toks.iter().enumerate() {
        match t.text.as_str() {
            "(" | "[" | "{" | "<" => depth += 1,
            ")" | "]" | "}" | ">" => depth -= 1,
            ":" if depth == 0 => return Some(i),
            _ => {}
        }
    }
    None
}

/// Classifies a type's tokens as int-ish / float-ish, if primitive.
fn type_hint(ty: &[Token]) -> Option<OperandHint> {
    let first = ty
        .iter()
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut")?;
    if INT_TYPES.contains(&first.text.as_str()) {
        Some(OperandHint::IntIdent)
    } else if first.text == "f32" || first.text == "f64" {
        Some(OperandHint::FloatIdent)
    } else {
        None
    }
}

// ---------------------------------------------------------------------------
// Body fact extraction
// ---------------------------------------------------------------------------

/// A guard whose scope end is not yet known.
#[derive(Debug)]
struct PendingGuard {
    lock_idx: usize,
    /// `Some(name)` for `let`-bound guards (closed by block or
    /// `drop`), `None` for temporaries (closed at statement end).
    binding: Option<String>,
}

struct BodyWalker<'a> {
    toks: &'a [Token],
    facts: BodyFacts,
    hints: HashMap<String, OperandHint>,
    /// Local `let x = <chain>` aliases: variable → origin identifier
    /// (last field/method name of the initializer chain).
    aliases: HashMap<String, String>,
    /// Per-open-block list of `let`-bound pending guards.
    blocks: Vec<Vec<PendingGuard>>,
    /// Temporaries open in the current statement.
    stmt_guards: Vec<usize>,
    /// Call recorded most recently at statement paren-depth 0, with
    /// the token index of its opening delimiter.
    stmt_last_call: Option<(usize, usize)>,
    /// Whether the current statement started with `let`.
    stmt_let: Option<String>,
    stmt_let_underscore: bool,
    /// The statement routes its value onward (`return …;`, `a = …;`,
    /// `expr?;` chains) — its final call is Used, not discarded.
    stmt_value_used: bool,
    /// Indices of calls made in the current statement (to fix up
    /// `stmt_end_line` / `block_end_line` later).
    stmt_calls: Vec<usize>,
    /// Paren/bracket depth within the current statement.
    depth: usize,
}

/// Walks a `{…}` body token slice (inclusive of both braces) and
/// extracts [`BodyFacts`]. `hints` starts with the parameter hints.
fn walk_body(toks: &[Token], hints: &mut HashMap<String, OperandHint>) -> BodyFacts {
    let mut w = BodyWalker {
        toks,
        facts: BodyFacts::default(),
        hints: std::mem::take(hints),
        aliases: HashMap::new(),
        blocks: Vec::new(),
        stmt_guards: Vec::new(),
        stmt_last_call: None,
        stmt_let: None,
        stmt_let_underscore: false,
        stmt_value_used: false,
        stmt_calls: Vec::new(),
        depth: 0,
    };
    w.run();
    w.facts
}

impl<'a> BodyWalker<'a> {
    fn text(&self, i: usize) -> &'a str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    fn run(&mut self) {
        let mut i = 0;
        while i < self.toks.len() {
            let tok = &self.toks[i];
            match tok.text.as_str() {
                "{" => {
                    self.end_statement(tok.line, None);
                    self.blocks.push(Vec::new());
                    i += 1;
                }
                "}" => {
                    self.end_statement(tok.line, None);
                    if let Some(guards) = self.blocks.pop() {
                        for g in guards {
                            self.facts.locks[g.lock_idx].scope_end_line = tok.line;
                        }
                    }
                    self.close_block_calls(tok.line);
                    i += 1;
                }
                ";" if self.depth == 0 => {
                    let semi_line = tok.line;
                    let final_call = self.statement_final_call(i);
                    self.end_statement(semi_line, final_call);
                    i += 1;
                }
                "let" => {
                    self.stmt_let_underscore = self.text(i + 1) == "_";
                    if self.kind(i + 1) == Some(TokenKind::Ident)
                        || (self.text(i + 1) == "mut" && self.kind(i + 2) == Some(TokenKind::Ident))
                    {
                        let off = if self.text(i + 1) == "mut" { 2 } else { 1 };
                        self.stmt_let = Some(self.toks[i + off].text.clone());
                        // `let x: usize = …` type ascription hint.
                        if self.text(i + off + 1) == ":" {
                            let ty_start = i + off + 2;
                            let ty_end = self.scan_to_eq_or_semi(ty_start);
                            if let Some(h) = type_hint(&self.toks[ty_start..ty_end]) {
                                self.hints.insert(self.toks[i + off].text.clone(), h);
                            }
                        }
                    }
                    i += 1;
                }
                "use" => {
                    // Body-local `use` — skip to `;`.
                    while i < self.toks.len() && self.text(i) != ";" {
                        i += 1;
                    }
                }
                "(" | "[" => {
                    self.depth += 1;
                    i += 1;
                }
                ")" | "]" => {
                    self.depth = self.depth.saturating_sub(1);
                    i += 1;
                }
                "drop" if self.text(i + 1) == "(" && self.kind(i + 2) == Some(TokenKind::Ident) => {
                    let name = self.toks[i + 2].text.clone();
                    self.drop_guard(&name, tok.line);
                    i += 3;
                }
                "+" | "-" | "*" | "+=" | "-=" | "*=" => {
                    self.arith(i);
                    i += 1;
                }
                "return" | "break" => {
                    self.stmt_value_used = true;
                    i += 1;
                }
                "=" if self.depth == 0 => {
                    // Plain assignment: `a = f();` binds the value.
                    self.stmt_value_used = true;
                    i += 1;
                }
                _ if tok.kind == TokenKind::Ident => {
                    i = self.ident(i);
                }
                _ => {
                    i += 1;
                }
            }
        }
        // Anything still pending lives to the last line.
        let last_line = self.toks.last().map(|t| t.line).unwrap_or(0);
        self.end_statement(last_line, None);
        for blk in std::mem::take(&mut self.blocks) {
            for g in blk {
                self.facts.locks[g.lock_idx].scope_end_line = last_line;
            }
        }
        self.close_block_calls(last_line);
    }

    /// Sets `block_end_line` for calls whose enclosing block has now
    /// closed. Until then a call stores `BLOCK_DEPTH_TAG + depth`, so
    /// the calls to finalize are exactly those tagged with a depth at
    /// or beyond the number of still-open blocks.
    fn close_block_calls(&mut self, line: usize) {
        let open = self.blocks.len();
        for c in &mut self.facts.calls {
            if c.block_end_line >= BLOCK_DEPTH_TAG && c.block_end_line - BLOCK_DEPTH_TAG >= open {
                c.block_end_line = line;
            }
        }
    }

    /// Ends the named `let`-bound guard's life at the `drop(name)`
    /// line.
    fn drop_guard(&mut self, name: &str, line: usize) {
        for blk in self.blocks.iter_mut() {
            if let Some(pos) = blk.iter().position(|g| g.binding.as_deref() == Some(name)) {
                let g = blk.remove(pos);
                self.facts.locks[g.lock_idx].scope_end_line = line;
                return;
            }
        }
    }

    /// Handles an identifier: lock methods, atomic methods, spawn
    /// sites, calls, aliases. Returns the next index.
    fn ident(&mut self, i: usize) -> usize {
        let name = self.text(i);
        let tok = &self.toks[i];
        let prev = i.checked_sub(1).map(|p| self.text(p)).unwrap_or("");
        let next = self.text(i + 1);

        // `thread::spawn(` — detached; `.spawn(` — scoped/managed.
        if name == "spawn" && next == "(" {
            let handle_kept = !self.stmt_let_underscore
                && (self.depth > 0 || self.stmt_value_used || self.stmt_let.is_some());
            if prev == "::" && i >= 2 && self.text(i - 2) == "thread" {
                self.facts.spawns.push(SpawnSite {
                    detached: true,
                    handle_kept,
                    line: tok.line,
                    col: tok.col,
                });
            } else if prev == "." {
                self.facts.spawns.push(SpawnSite {
                    detached: false,
                    handle_kept,
                    line: tok.line,
                    col: tok.col,
                });
            }
        }

        // Guard-producing methods: zero-argument `.lock()` / `.read()`
        // / `.write()`.
        if prev == "." && LOCK_METHODS.contains(&name) && next == "(" && self.text(i + 2) == ")" {
            let class = self.receiver_of(i).unwrap_or_else(|| name.to_owned());
            let lock_idx = self.facts.locks.len();
            self.facts.locks.push(LockAcquire {
                class,
                method: name.to_owned(),
                line: tok.line,
                col: tok.col,
                scope_end_line: tok.line,
            });
            // Bound or temporary? Chain continuing past poison
            // wrappers means the guard is consumed within the
            // statement; otherwise a `let` binding keeps it alive to
            // the end of the block.
            let after = self.chain_end(i + 1);
            let continues = self.text(after) == "." || self.text(after) == "?";
            if !continues && !self.stmt_let_underscore {
                if let Some(binding) = self.stmt_let.clone() {
                    let g = PendingGuard {
                        lock_idx,
                        binding: Some(binding),
                    };
                    if let Some(top) = self.blocks.last_mut() {
                        top.push(g);
                    } else {
                        self.stmt_guards.push(lock_idx);
                    }
                } else {
                    self.stmt_guards.push(lock_idx);
                }
            } else {
                self.stmt_guards.push(lock_idx);
            }
            return i + 1;
        }

        // Atomic operations: `.method(…, Ordering::X, …)`.
        if prev == "." && ATOMIC_METHODS.contains(&name) && next == "(" {
            let (orderings, literal_arg, close) = self.atomic_args(i + 1);
            if !orderings.is_empty() {
                let receiver = self.receiver_of(i).unwrap_or_default();
                let recv_line = i
                    .checked_sub(2)
                    .and_then(|p| self.toks.get(p))
                    .map_or(tok.line, |t| t.line.min(tok.line));
                self.facts.atomics.push(AtomicSite {
                    receiver,
                    method: name.to_owned(),
                    orderings,
                    literal_arg,
                    line: tok.line,
                    col: tok.col,
                    recv_line,
                });
                // Also record as a call for completeness.
                self.record_call(i, name.to_owned(), true, close);
                return i + 1;
            }
        }

        // Macro call `name!(…)` — record macros the rules care about.
        if next == "!" && matches!(self.text(i + 2), "(" | "[" | "{") {
            self.record_call(i, format!("{name}!"), false, i + 2);
            return i + 1;
        }

        // Plain call: ident followed by `(`, not a keyword, not a
        // definition.
        if next == "(" && !NON_CALL_KEYWORDS.contains(&name) && prev != "fn" && name != "drop" {
            let is_method = prev == ".";
            self.record_call(i, name.to_owned(), is_method, i + 1);
            return i + 1;
        }

        // `let x = self.stripe(k)…;` — record a local alias from the
        // initializer chain so `x.lock()` later names class `stripe`.
        if prev == "=" || prev == "let" {
            // handled at lock site via receiver_of; nothing here
        }
        i + 1
    }

    /// Records a call site; `open` is the index of its `(` (or of the
    /// macro's opening delimiter).
    fn record_call(&mut self, i: usize, callee: String, is_method: bool, open: usize) {
        let tok = &self.toks[i];
        let idx = self.facts.calls.len();
        self.facts.calls.push(CallSite {
            callee,
            is_method,
            discard: Discard::Used,
            line: tok.line,
            col: tok.col,
            stmt_end_line: tok.line,
            block_end_line: BLOCK_DEPTH_TAG + self.blocks.len(),
            bound_to_let: self.stmt_let.is_some(),
        });
        if self.depth == 0 {
            self.stmt_last_call = Some((idx, open));
        }
        self.stmt_calls.push(idx);
    }

    /// Finds the token index just past the end of a method-call chain
    /// of poison wrappers starting at the `(` at `open`.
    fn chain_end(&self, open: usize) -> usize {
        let mut i = self.skip_group(open);
        loop {
            if self.text(i) == "."
                && POISON_WRAPPERS.contains(&self.text(i + 1))
                && self.text(i + 2) == "("
            {
                i = self.skip_group(i + 2);
            } else {
                return i;
            }
        }
    }

    /// Returns the index just past the group opening at `open`.
    fn skip_group(&self, open: usize) -> usize {
        let open_text = self.text(open);
        let close_text = match open_text {
            "(" => ")",
            "[" => "]",
            "{" => "}",
            _ => return open,
        };
        let mut depth = 0usize;
        let mut i = open;
        while i < self.toks.len() {
            let t = self.text(i);
            if t == open_text {
                depth += 1;
            } else if t == close_text {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        i
    }

    /// Walks the receiver chain left of the `.` before token `i` and
    /// returns its last meaningful identifier, resolved through local
    /// aliases (`self.stripes[h].lock()` → `stripes`).
    fn receiver_of(&self, i: usize) -> Option<String> {
        let mut j = i.checked_sub(2)?; // before the `.`
        let mut segments: Vec<String> = Vec::new();
        loop {
            match self.toks.get(j) {
                Some(t) if t.text == "]" || t.text == ")" => {
                    // Skip the balanced group backwards.
                    let (open, close) = if t.text == "]" {
                        ("[", "]")
                    } else {
                        ("(", ")")
                    };
                    let mut depth = 0usize;
                    loop {
                        let txt = self.text(j);
                        if txt == close {
                            depth += 1;
                        } else if txt == open {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        j = match j.checked_sub(1) {
                            Some(n) => n,
                            None => return segments.pop(),
                        };
                    }
                    j = match j.checked_sub(1) {
                        Some(n) => n,
                        None => break,
                    };
                }
                Some(t) if t.kind == TokenKind::Ident => {
                    segments.push(t.text.clone());
                    match j.checked_sub(1) {
                        Some(p) if self.text(p) == "." || self.text(p) == "::" => {
                            j = match p.checked_sub(1) {
                                Some(n) => n,
                                None => break,
                            };
                        }
                        _ => break,
                    }
                }
                _ => break,
            }
        }
        let last = segments
            .iter()
            .find(|s| *s != "self" && *s != "Self")
            .cloned()
            .or_else(|| segments.first().cloned())?;
        Some(self.aliases.get(&last).cloned().unwrap_or(last))
    }

    /// Parses the argument group opening at `open` for ordering names
    /// and literal args; returns (orderings, literal_arg, close index).
    fn atomic_args(&self, open: usize) -> (Vec<String>, bool, usize) {
        let close = self.skip_group(open);
        let inner = &self.toks[open + 1..close.saturating_sub(1).max(open + 1)];
        let mut orderings = Vec::new();
        let mut literal = false;
        for arg in split_top_commas(inner) {
            let idents: Vec<&str> = arg
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if let Some(ord) = idents.iter().find(|t| ORDERING_NAMES.contains(*t)) {
                orderings.push((*ord).to_owned());
            } else if arg.len() == 1 && arg[0].kind == TokenKind::Int {
                literal = true;
            }
        }
        (orderings, literal, close)
    }

    /// Records an arithmetic site at operator index `i`.
    fn arith(&mut self, i: usize) {
        let op = self.text(i);
        let prev = i.checked_sub(1).map(|p| &self.toks[p]);
        // Unary `-` / deref `*` / `&` contexts: the operator follows
        // punctuation (or a keyword) rather than an operand.
        let lhs = match prev {
            Some(t) if t.kind == TokenKind::Int => OperandHint::IntLit,
            Some(t) if t.kind == TokenKind::Float => OperandHint::FloatLit,
            Some(t)
                if t.kind == TokenKind::Ident
                    && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    && t.text != "return"
                    && t.text != "let" =>
            {
                self.hints
                    .get(&t.text)
                    .copied()
                    .unwrap_or(OperandHint::Unknown)
            }
            Some(t) if t.text == ")" || t.text == "]" => OperandHint::Unknown,
            _ => {
                // Unary context: not a binary arithmetic site.
                if op == "-" || op == "*" || op == "+" {
                    return;
                }
                OperandHint::Unknown
            }
        };
        let next = self.toks.get(i + 1);
        let rhs = match next {
            Some(t) if t.kind == TokenKind::Int => OperandHint::IntLit,
            Some(t) if t.kind == TokenKind::Float => OperandHint::FloatLit,
            Some(t) if t.kind == TokenKind::Ident => {
                // A chain like `b.len()` is not the ident itself.
                if self.text(i + 2) == "." || self.text(i + 2) == "::" {
                    OperandHint::Unknown
                } else {
                    self.hints
                        .get(&t.text)
                        .copied()
                        .unwrap_or(OperandHint::Unknown)
                }
            }
            _ => OperandHint::Unknown,
        };
        let tok = &self.toks[i];
        self.facts.arith.push(ArithSite {
            op: op.to_owned(),
            lhs,
            rhs,
            line: tok.line,
            col: tok.col,
        });
    }

    /// The final top-level call of the statement ending at `;` index
    /// `semi`, if the `;` directly follows its closing paren.
    fn statement_final_call(&self, semi: usize) -> Option<usize> {
        let (idx, open) = self.stmt_last_call?;
        // `;` must directly follow the call's closing paren (no `?`,
        // no further chaining — those mean the value was used).
        let close = self.skip_group(open);
        if close == semi {
            Some(idx)
        } else {
            None
        }
    }

    /// Finalizes the current statement at `line`: closes temporary
    /// guards, applies discard classification, records aliases.
    fn end_statement(&mut self, line: usize, final_call: Option<usize>) {
        for lock_idx in self.stmt_guards.drain(..) {
            self.facts.locks[lock_idx].scope_end_line = line;
        }
        if let Some(idx) = final_call {
            let discard = if self.stmt_let_underscore {
                Discard::LetUnderscore
            } else if self.stmt_let.is_none() && !self.stmt_value_used {
                Discard::StmtSemi
            } else {
                Discard::Used
            };
            self.facts.calls[idx].discard = discard;
        }
        // Local alias: `let x = self.stripe(k)` → x aliases `stripe`.
        if let (Some(name), Some((idx, _))) = (&self.stmt_let, self.stmt_last_call) {
            let call = &self.facts.calls[idx];
            if call.is_method || call.callee.chars().next().is_some_and(char::is_lowercase) {
                self.aliases.insert(name.clone(), call.callee.clone());
            }
        }
        for idx in self.stmt_calls.drain(..) {
            self.facts.calls[idx].stmt_end_line = line;
        }
        self.stmt_last_call = None;
        self.stmt_let = None;
        self.stmt_let_underscore = false;
        self.stmt_value_used = false;
        self.depth = 0;
    }

    fn scan_to_eq_or_semi(&self, start: usize) -> usize {
        let mut i = start;
        let mut depth = 0isize;
        while i < self.toks.len() {
            match self.text(i) {
                "<" => depth += 1,
                ">" => depth -= 1,
                "=" | ";" if depth <= 0 => return i,
                _ => {}
            }
            i += 1;
        }
        i
    }
}

/// Sentinel base: calls store `BLOCK_DEPTH_TAG + depth` in
/// `block_end_line` until their enclosing block closes.
const BLOCK_DEPTH_TAG: usize = usize::MAX / 2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> FileTree {
        let toks: Vec<Token> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect();
        parse(&toks)
    }

    #[test]
    fn finds_fns_in_impls_and_traits() {
        let src = "
            pub struct Engine { x: u32 }
            impl Engine {
                pub fn run(&self) -> Result<u32, String> { Ok(self.x) }
            }
            impl Default for Engine {
                fn default() -> Engine { Engine { x: 0 } }
            }
            pub trait Source {
                fn pull(&mut self) -> Option<u32>;
                fn pull_all(&mut self) -> Vec<u32> { Vec::new() }
            }
            fn free() {}
        ";
        let t = parse_src(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let names: Vec<(Option<&str>, &str)> = t
            .fns
            .iter()
            .map(|f| (f.impl_type.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![
                (Some("Engine"), "run"),
                (Some("Engine"), "default"),
                (Some("Source"), "pull"),
                (Some("Source"), "pull_all"),
                (None, "free"),
            ]
        );
        assert!(t.fns[0].returns_result);
        assert!(!t.fns[1].returns_result);
    }

    #[test]
    fn impl_for_takes_the_implemented_type() {
        let src =
            "impl<T: Clone> Iterator for Wrapper<T> { fn next(&mut self) -> Option<T> { None } }";
        let t = parse_src(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(t.fns[0].impl_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn guard_returning_helper_is_detected() {
        let src = "fn lock(s: &M) -> std::sync::MutexGuard<'_, u32> { s.lock().unwrap() }";
        let t = parse_src(src);
        assert!(t.fns[0].returns_guard);
        assert_eq!(t.fns[0].body.locks.len(), 1);
    }

    #[test]
    fn let_bound_guard_lives_to_block_end() {
        let src = "
            fn f(&self) {
                let g = self.registry.lock().unwrap();
                g.touch();
                self.other.lock().unwrap().poke();
            }
        ";
        let t = parse_src(src);
        let locks = &t.fns[0].body.locks;
        assert_eq!(locks.len(), 2);
        assert_eq!(locks[0].class, "registry");
        assert_eq!(locks[0].scope_end_line, 6, "let-bound lives to block end");
        assert_eq!(locks[1].class, "other");
        assert_eq!(
            locks[1].scope_end_line, 5,
            "temporary dies at statement end"
        );
    }

    #[test]
    fn drop_ends_a_guard_early() {
        let src = "
            fn f(&self) {
                let g = self.a.lock().unwrap();
                drop(g);
                let h = self.b.lock().unwrap();
            }
        ";
        let t = parse_src(src);
        let locks = &t.fns[0].body.locks;
        assert_eq!(locks[0].scope_end_line, 4, "dropped on the drop line");
        assert_eq!(locks[1].scope_end_line, 6);
    }

    #[test]
    fn indexed_receiver_names_the_field() {
        let src = "fn f(&self, h: usize) { let g = self.stripes[h].lock().unwrap(); g.x(); }";
        let t = parse_src(src);
        assert_eq!(t.fns[0].body.locks[0].class, "stripes");
    }

    #[test]
    fn local_alias_resolves_to_origin() {
        let src = "
            fn f(&self, k: u64) {
                let stripe = self.stripe(k);
                let g = stripe.lock().unwrap();
                g.x();
            }
        ";
        let t = parse_src(src);
        assert_eq!(t.fns[0].body.locks[0].class, "stripe");
    }

    #[test]
    fn spawn_sites_distinguish_detached_from_scoped() {
        let src = "
            fn f() {
                std::thread::spawn(move || {});
                thread::scope(|scope| {
                    scope.spawn(move || {});
                });
            }
        ";
        let t = parse_src(src);
        let spawns = &t.fns[0].body.spawns;
        assert_eq!(spawns.len(), 2);
        assert!(spawns[0].detached);
        assert!(!spawns[1].detached);
    }

    #[test]
    fn atomic_sites_capture_ordering_receiver_and_literal() {
        let src = "
            fn f(&self) {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                self.bits.fetch_max(v.to_bits(), Relaxed);
                self.flag.store(true, Ordering::SeqCst);
                self.state.compare_exchange(a, b, Ordering::AcqRel, Ordering::Acquire);
            }
        ";
        let t = parse_src(src);
        let at = &t.fns[0].body.atomics;
        assert_eq!(at.len(), 4);
        assert_eq!(at[0].receiver, "cache_hits");
        assert_eq!(at[0].orderings, vec!["Relaxed"]);
        assert!(at[0].literal_arg);
        assert_eq!(at[1].receiver, "bits");
        assert_eq!(at[1].orderings, vec!["Relaxed"]);
        assert!(!at[1].literal_arg);
        assert_eq!(at[2].orderings, vec!["SeqCst"]);
        assert_eq!(at[3].orderings, vec!["AcqRel", "Acquire"]);
    }

    #[test]
    fn plain_load_without_ordering_is_not_atomic() {
        let src = "fn f(x: &Loader) { x.load(\"path\"); }";
        let t = parse_src(src);
        assert!(t.fns[0].body.atomics.is_empty());
    }

    #[test]
    fn discard_classification() {
        let src = "
            fn f() {
                let _ = might_fail();
                might_fail();
                let ok = might_fail();
                let _ = tx.send(1);
                if might_fail().is_ok() {}
            }
        ";
        let t = parse_src(src);
        let calls: Vec<(&str, Discard)> = t.fns[0]
            .body
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.discard))
            .collect();
        assert!(calls.contains(&("might_fail", Discard::LetUnderscore)));
        assert!(calls.contains(&("might_fail", Discard::StmtSemi)));
        assert!(calls.contains(&("send", Discard::LetUnderscore)));
        assert!(calls.contains(&("is_ok", Discard::Used)));
        let used = t.fns[0]
            .body
            .calls
            .iter()
            .filter(|c| c.callee == "might_fail" && c.discard == Discard::Used)
            .count();
        assert_eq!(used, 2, "bound and chained calls are Used");
    }

    #[test]
    fn question_mark_is_a_use() {
        let src = "fn f() -> Result<(), E> { might_fail()?; Ok(()) }";
        let t = parse_src(src);
        let c = t.fns[0]
            .body
            .calls
            .iter()
            .find(|c| c.callee == "might_fail")
            .map(|c| c.discard);
        assert_eq!(c, Some(Discard::Used));
    }

    #[test]
    fn arith_hints_from_params_and_lets() {
        let src = "
            fn f(n: usize, x: f64) {
                let m: u64 = 3;
                let a = n * 8;
                let b = x * 2.0;
                let c = m + n;
                let d = x - 1.0;
            }
        ";
        let t = parse_src(src);
        let a = &t.fns[0].body.arith;
        assert!(a.iter().any(|s| s.op == "*"
            && s.lhs == OperandHint::IntIdent
            && s.rhs == OperandHint::IntLit));
        assert!(a
            .iter()
            .any(|s| s.op == "*" && s.lhs == OperandHint::FloatIdent));
        assert!(a.iter().any(|s| s.op == "+"
            && s.lhs == OperandHint::IntIdent
            && s.rhs == OperandHint::IntIdent));
    }

    #[test]
    fn unary_minus_and_deref_are_not_arith() {
        let src = "fn f(p: &u32) { let a = -1; let b = *p; let c = &mut b; }";
        let t = parse_src(src);
        assert!(t.fns[0].body.arith.is_empty(), "{:?}", t.fns[0].body.arith);
    }

    #[test]
    fn trait_bound_plus_is_not_flagged_as_int_arith() {
        let src = "fn f(x: Box<dyn Source + Send>) -> Box<dyn Source + Send + 'static> { x }";
        let t = parse_src(src);
        for s in &t.fns[0].body.arith {
            assert!(
                s.lhs != OperandHint::IntIdent
                    && s.lhs != OperandHint::IntLit
                    && s.rhs != OperandHint::IntLit,
                "{s:?}"
            );
        }
    }

    #[test]
    fn unmodeled_constructs_degrade_gracefully() {
        // A stray token at item position is recorded, later items
        // still parse.
        let src = "
            @!garbage@!
            fn after() {}
        ";
        let t = parse_src(src);
        assert!(!t.errors.is_empty());
        assert!(t.fns.iter().any(|f| f.name == "after"));
    }

    #[test]
    fn complex_generics_and_wheres_parse() {
        let src = "
            pub fn merge<K: Ord, V, F>(a: Vec<(K, V)>, f: F) -> Vec<V>
            where
                F: FnMut(&K) -> Option<Vec<V>>,
            {
                Vec::new()
            }
            pub struct S<const N: usize> { data: [u64; N] }
            impl<const N: usize> S<N> {
                pub fn get(&self) -> Option<Vec<Box<dyn Fn() -> u64>>> { None }
            }
        ";
        let t = parse_src(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[1].impl_type.as_deref(), Some("S"));
    }

    #[test]
    fn macro_calls_keep_their_bang() {
        let src = "fn f() { let _ = write!(out, \"x\"); vec![1, 2]; }";
        let t = parse_src(src);
        assert!(t.fns[0]
            .body
            .calls
            .iter()
            .any(|c| c.callee == "write!" && c.discard == Discard::LetUnderscore));
    }
}
