//! E10 — the Beatles strategy (§4.1): "under the reasonable assumption
//! that there are not many objects that satisfy the first conjunct … a
//! good way to evaluate this query" filters on the crisp predicate and
//! random-accesses only the survivors — cost ∝ selectivity.

use fmdb_core::query::{Query, Target};
use fmdb_garlic::catalog::Catalog;
use fmdb_garlic::executor::{AlgoChoice, Garlic};
use fmdb_garlic::object::Value;
use fmdb_garlic::planner::PlanKind;
use fmdb_garlic::repository::{QbicRepository, TableRepository};
use fmdb_media::synth::{SynthConfig, SyntheticDb};

use crate::report::{f3, int, Report, Table};
use crate::runners::RunCfg;

fn garlic_with_selectivity(n: usize, selectivity: f64, seed: u64) -> Garlic {
    let db = SyntheticDb::generate(&SynthConfig {
        count: n,
        bins_per_channel: 4,
        seed,
        ..SynthConfig::default()
    });
    let mut table = TableRepository::new("store", n as u64);
    let matches = ((n as f64 * selectivity).round() as u64).max(1);
    for i in 0..n as u64 {
        // Spread the matches evenly so grade ties don't cluster.
        let artist = if i % (n as u64 / matches).max(1) == 0 {
            "Beatles"
        } else {
            "Various"
        };
        table.set(i, "Artist", Value::text(artist));
    }
    let mut catalog = Catalog::new();
    catalog.register(Box::new(table)).expect("fresh catalog");
    catalog
        .register(Box::new(QbicRepository::new("qbic", db)))
        .expect("fresh catalog");
    Garlic::new(catalog)
}

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E10",
        "crisp-filter plan vs selectivity",
        "§4.1 (the Beatles example): evaluate the selective crisp conjunct first, then obtain \
         fuzzy grades by random access for the survivors only",
    );
    let n = cfg.pick(2000, 300);
    let k = 10usize;
    let q = Query::and(vec![
        Query::atomic("Artist", Target::Text("Beatles".into())),
        Query::atomic("Color", Target::Similar("red".into())),
    ]);
    let mut t = Table::new(
        format!("Artist='Beatles' ∧ Color~red over {n} albums, k = {k}"),
        &[
            "selectivity",
            "|S|",
            "plan cost",
            "A0 cost",
            "naive cost",
            "plan",
            "grades = naive?",
        ],
    );
    for &sel in &[0.005f64, 0.01, 0.05, 0.1, 0.25, 0.5] {
        let garlic = garlic_with_selectivity(n, sel, 21);
        let auto = garlic.top_k(&q, k).expect("query runs");
        let fa = garlic
            .top_k_with(&q, k, AlgoChoice::Fa)
            .expect("query runs");
        let naive = garlic
            .top_k_with(&q, k, AlgoChoice::Naive)
            .expect("query runs");
        // The costed planner must take the paper's Beatles strategy
        // while the crisp conjunct is genuinely selective; at higher
        // selectivities it is allowed to (and does) switch to a
        // threshold-style plan — that switchover is the optimizer
        // working, not a regression.
        if sel <= 0.01 {
            assert_eq!(auto.plan, PlanKind::CrispFilter);
        }
        let same = auto
            .answers
            .iter()
            .zip(&naive.answers)
            .all(|(a, b)| a.grade.approx_eq(b.grade, 1e-9));
        let s_size = (n as f64 * sel).round() as u64;
        t.row(vec![
            f3(sel),
            int(s_size.max(1)),
            int(auto.stats.database_access_cost()),
            int(fa.stats.database_access_cost()),
            int(naive.stats.database_access_cost()),
            auto.plan.to_string(),
            if same { "yes".into() } else { "NO".into() },
        ]);
    }
    report.table(t);
    report.note(
        "the crisp-filter cost grows linearly with |S| (≈ 2·|S| accesses) and beats A0 while \
         the predicate is selective; as selectivity approaches ½ the advantage erodes and \
         the cost-based planner switches to a threshold-style plan — matching the paper's \
         \"reasonable assumption that there are not many objects that satisfy the first \
         conjunct\".",
    );
    report
}
