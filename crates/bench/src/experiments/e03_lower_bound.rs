//! E3 — the matching lower bound (Theorem 4.2): for *strict* monotone
//! queries no algorithm beats `c′·N^((m−1)/m)·k^(1/m)`, so even the
//! pruned A₀ variant's savings are confined to the constant factor.

use std::sync::Arc;

use fmdb_core::scoring::tnorms::{Lukasiewicz, Min, Product};
use fmdb_middleware::algorithms::fa::FaginsAlgorithm;
use fmdb_middleware::algorithms::pruned_fa::PrunedFa;
use fmdb_middleware::request::SharedScoring;
use fmdb_middleware::workload::independent_uniform;

use crate::report::{f3, fit_exponent, int, Report, Table};
use crate::runners::{mean_cost, RunCfg};

/// Runs the experiment.
pub fn run(cfg: &RunCfg) -> Report {
    let mut report = Report::new(
        "E3",
        "strict queries: pruning helps constants, not the exponent",
        "Thm 4.2 (lower bound): for strict monotone queries the cost is Ω(N^((m−1)/m)·k^(1/m)); \
         the improvements to A0 mentioned in §4.1 cannot beat it",
    );
    let ns: Vec<usize> = if cfg.quick {
        vec![1 << 10, 1 << 12, 1 << 14]
    } else {
        vec![1 << 12, 1 << 14, 1 << 16, 1 << 18]
    };
    let k = 10usize;
    let m = 2usize;
    let norms: Vec<(&str, SharedScoring)> = vec![
        ("min", Arc::new(Min)),
        ("product", Arc::new(Product)),
        ("lukasiewicz", Arc::new(Lukasiewicz)),
    ];
    let mut t = Table::new(
        "cost and normalized cost c = cost/√(kN), m = 2, k = 10",
        &["t-norm", "N", "A0 cost", "pruned cost", "A0 c", "pruned c"],
    );
    let mut exps = Table::new(
        "fitted exponents (theory: 0.5)",
        &["t-norm", "A0 exp", "pruned exp"],
    );
    for (name, norm) in &norms {
        let mut fa_pts = Vec::new();
        let mut pr_pts = Vec::new();
        for &n in &ns {
            let fa = mean_cost(&FaginsAlgorithm, norm, k, cfg.seeds, |seed| {
                independent_uniform(n, m, seed)
            });
            let pr = mean_cost(&PrunedFa::default(), norm, k, cfg.seeds, |seed| {
                independent_uniform(n, m, seed)
            });
            let scale = ((k * n) as f64).sqrt();
            let (fc, pc) = (fa.database_access_cost(), pr.database_access_cost());
            fa_pts.push((n as f64, fc as f64));
            pr_pts.push((n as f64, pc as f64));
            t.row(vec![
                (*name).to_owned(),
                n.to_string(),
                int(fc),
                int(pc),
                f3(fc as f64 / scale),
                f3(pc as f64 / scale),
            ]);
        }
        exps.row(vec![
            (*name).to_owned(),
            f3(fit_exponent(&fa_pts)),
            f3(fit_exponent(&pr_pts)),
        ]);
    }
    report.table(t);
    report.table(exps);
    report.note(
        "Normalized costs stay roughly constant across N (the √(kN) law) and the pruned variant's \
         exponent matches plain A0's — pruning shrinks the constant only, as Theorem 4.2 demands.",
    );
    report
}
