//! Queries: Boolean combinations of atomic queries (§2–§3).
//!
//! An atomic query has the form `X = t` where `X` names an attribute and
//! `t` is a target value (`Artist='Beatles'`, `Color='red'`). Queries
//! are Boolean combinations of atomic queries; each combination node
//! carries its scoring behaviour:
//!
//! * `And` — conjunction under a chosen m-ary scoring function
//!   (default: min, the standard fuzzy rule);
//! * `Or` — disjunction under a chosen co-norm (default: max);
//! * `Not` — standard negation `1 − x`;
//! * `Weighted` — a Fagin–Wimmers-weighted combination.
//!
//! The AST itself is evaluation-agnostic: the middleware decides whether
//! to run naive evaluation, algorithm A₀, the `m·k` max-merge, or a
//! crisp-filter plan. The [`Query::grade`] method is the *semantics* —
//! the reference evaluator used by tests and by the brute-force oracle.

use std::fmt;
use std::sync::Arc;

use crate::score::Score;
use crate::scoring::tnorms::Min;
use crate::scoring::ScoringFunction;
use crate::weights::{weighted_combine, Weighting};

/// A target value in an atomic query `X = t`.
///
/// Crisp targets come from traditional predicates; feature targets are
/// opaque handles the owning subsystem interprets (a color histogram, a
/// shape descriptor, …).
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// An exact-match (crisp) text value, e.g. `'Beatles'`.
    Text(String),
    /// An exact-match (crisp) integer value.
    Int(i64),
    /// A similarity target identified by name, e.g. `'red'`; the
    /// subsystem resolves the name to a feature vector.
    Similar(String),
    /// A raw feature vector target (e.g. a query color histogram).
    Feature(Vec<f64>),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Text(s) => write!(f, "'{s}'"),
            Target::Int(i) => write!(f, "{i}"),
            Target::Similar(s) => write!(f, "~'{s}'"),
            Target::Feature(v) => write!(f, "<feature:{}d>", v.len()),
        }
    }
}

/// An atomic query `attribute = target`.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicQuery {
    /// The attribute name (`Artist`, `AlbumColor`, `Shape`, …).
    pub attribute: String,
    /// The target value.
    pub target: Target,
}

impl AtomicQuery {
    /// Creates an atomic query.
    pub fn new(attribute: impl Into<String>, target: Target) -> AtomicQuery {
        AtomicQuery {
            attribute: attribute.into(),
            target,
        }
    }
}

impl fmt::Display for AtomicQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.attribute, self.target)
    }
}

/// A shareable scoring function handle attached to AST nodes.
pub type ScoringHandle = Arc<dyn ScoringFunction + Send + Sync>;

/// A query: a Boolean combination of atomic queries.
#[derive(Clone)]
pub enum Query {
    /// An atomic query, graded by the owning subsystem.
    Atomic(AtomicQuery),
    /// Conjunction of subqueries under an m-ary scoring function.
    And {
        /// The conjuncts.
        children: Vec<Query>,
        /// The scoring function; min if built via [`Query::and`].
        scoring: ScoringHandle,
    },
    /// Disjunction of subqueries under an m-ary scoring function.
    Or {
        /// The disjuncts.
        children: Vec<Query>,
        /// The scoring function; max if built via [`Query::or`].
        scoring: ScoringHandle,
    },
    /// Negation under the standard rule `1 − x`.
    Not(Box<Query>),
    /// A Fagin–Wimmers-weighted combination of subqueries.
    Weighted {
        /// The subqueries, positionally matching the weighting.
        children: Vec<Query>,
        /// The underlying (unweighted) rule.
        scoring: ScoringHandle,
        /// The user's weighting.
        weighting: Weighting,
    },
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Atomic(a) => write!(f, "{a}"),
            Query::And { children, scoring } => {
                write!(f, "AND[{}](", scoring.name())?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Query::Or { children, scoring } => {
                write!(f, "OR[{}](", scoring.name())?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            Query::Not(q) => write!(f, "¬({q})"),
            Query::Weighted {
                children,
                scoring,
                weighting,
            } => {
                write!(f, "WEIGHTED[{};{:?}](", scoring.name(), weighting.weights())?;
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// Error produced when grading a query against an incomplete grade
/// assignment.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// No grade is known for this atomic query.
    MissingGrade(AtomicQuery),
    /// A weighted node's weighting arity differs from its child count.
    WeightArityMismatch {
        /// Number of children.
        children: usize,
        /// Weighting arity.
        weights: usize,
    },
    /// A combination node has no children.
    EmptyCombination,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingGrade(a) => write!(f, "no grade for atomic query {a}"),
            QueryError::WeightArityMismatch { children, weights } => write!(
                f,
                "weighted node has {children} children but {weights} weights"
            ),
            QueryError::EmptyCombination => write!(f, "combination node has no children"),
        }
    }
}

impl std::error::Error for QueryError {}

impl Query {
    /// Builds an atomic query node.
    pub fn atomic(attribute: impl Into<String>, target: Target) -> Query {
        Query::Atomic(AtomicQuery::new(attribute, target))
    }

    /// Conjunction under the standard fuzzy rule (min).
    pub fn and(children: Vec<Query>) -> Query {
        Query::And {
            children,
            scoring: Arc::new(Min),
        }
    }

    /// Conjunction under an explicit scoring function.
    pub fn and_with(children: Vec<Query>, scoring: ScoringHandle) -> Query {
        Query::And { children, scoring }
    }

    /// Disjunction under the standard fuzzy rule (max).
    pub fn or(children: Vec<Query>) -> Query {
        Query::Or {
            children,
            scoring: Arc::new(crate::scoring::ConormScoring(crate::scoring::conorms::Max)),
        }
    }

    /// Disjunction under an explicit scoring function.
    pub fn or_with(children: Vec<Query>, scoring: ScoringHandle) -> Query {
        Query::Or { children, scoring }
    }

    /// Standard negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(query: Query) -> Query {
        Query::Not(Box::new(query))
    }

    /// A Fagin–Wimmers-weighted combination of `children` under `scoring`.
    pub fn weighted(
        children: Vec<Query>,
        scoring: ScoringHandle,
        weighting: Weighting,
    ) -> Result<Query, QueryError> {
        if children.len() != weighting.arity() {
            return Err(QueryError::WeightArityMismatch {
                children: children.len(),
                weights: weighting.arity(),
            });
        }
        Ok(Query::Weighted {
            children,
            scoring,
            weighting,
        })
    }

    /// All atomic queries in this query, left-to-right.
    pub fn atoms(&self) -> Vec<&AtomicQuery> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut Vec<&'a AtomicQuery>) {
        match self {
            Query::Atomic(a) => out.push(a),
            Query::And { children, .. }
            | Query::Or { children, .. }
            | Query::Weighted { children, .. } => {
                for c in children {
                    c.collect_atoms(out);
                }
            }
            Query::Not(q) => q.collect_atoms(out),
        }
    }

    /// True if every combination node in the tree uses a monotone
    /// scoring function and there is no negation — the precondition for
    /// running algorithm A₀ (§4.1: correctness requires monotonicity).
    pub fn is_monotone(&self) -> bool {
        match self {
            Query::Atomic(_) => true,
            Query::And { children, scoring } | Query::Or { children, scoring } => {
                scoring.is_monotone() && children.iter().all(Query::is_monotone)
            }
            Query::Not(_) => false,
            Query::Weighted {
                children, scoring, ..
            } => scoring.is_monotone() && children.iter().all(Query::is_monotone),
        }
    }

    /// True if the query is strict: its overall grade is 1 only when
    /// every atomic grade is 1 (the lower-bound hypothesis of
    /// Theorem 4.2). Conservative: `false` when any node cannot be
    /// certified strict.
    pub fn is_strict(&self) -> bool {
        match self {
            Query::Atomic(_) => true,
            Query::And { children, scoring } => {
                scoring.is_strict() && children.iter().all(Query::is_strict)
            }
            // A disjunction is 1 as soon as one branch is 1: not strict
            // (unless unary, which we don't special-case).
            Query::Or { .. } => false,
            Query::Not(_) => false,
            Query::Weighted {
                children, scoring, ..
            } => {
                scoring.is_strict()
                    && self.weighting_all_positive()
                    && children.iter().all(Query::is_strict)
            }
        }
    }

    fn weighting_all_positive(&self) -> bool {
        match self {
            Query::Weighted { weighting, .. } => weighting.weights().iter().all(|&w| w > 0.0),
            _ => true,
        }
    }

    /// The reference semantics: the grade of an object whose atomic
    /// grades are provided by `atom_grade` (by positional index into
    /// [`Query::atoms`] order is *not* assumed — lookup is by the atomic
    /// query itself).
    pub fn grade<F>(&self, atom_grade: &F) -> Result<Score, QueryError>
    where
        F: Fn(&AtomicQuery) -> Option<Score>,
    {
        match self {
            Query::Atomic(a) => atom_grade(a).ok_or_else(|| QueryError::MissingGrade(a.clone())),
            Query::And { children, scoring } | Query::Or { children, scoring } => {
                if children.is_empty() {
                    return Err(QueryError::EmptyCombination);
                }
                let grades = children
                    .iter()
                    .map(|c| c.grade(atom_grade))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(scoring.combine(&grades))
            }
            Query::Not(q) => Ok(q.grade(atom_grade)?.negate()),
            Query::Weighted {
                children,
                scoring,
                weighting,
            } => {
                if children.is_empty() {
                    return Err(QueryError::EmptyCombination);
                }
                let grades = children
                    .iter()
                    .map(|c| c.grade(atom_grade))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(weighted_combine(&**scoring, weighting, &grades))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::means::ArithmeticMean;

    fn red() -> Query {
        Query::atomic("Color", Target::Similar("red".into()))
    }

    fn round() -> Query {
        Query::atomic("Shape", Target::Similar("round".into()))
    }

    fn beatles() -> Query {
        Query::atomic("Artist", Target::Text("Beatles".into()))
    }

    fn grades<'a>(pairs: &'a [(&'a str, f64)]) -> impl Fn(&AtomicQuery) -> Option<Score> + 'a {
        move |a: &AtomicQuery| {
            pairs
                .iter()
                .find(|(attr, _)| *attr == a.attribute)
                .map(|&(_, g)| Score::clamped(g))
        }
    }

    #[test]
    fn paper_running_example_semantics() {
        // (Artist='Beatles') ∧ (AlbumColor='red') under min: crisp 1
        // passes the fuzzy grade through; crisp 0 kills it (§4.1).
        let q = Query::and(vec![beatles(), red()]);
        let g = q
            .grade(&grades(&[("Artist", 1.0), ("Color", 0.8)]))
            .unwrap();
        assert!(g.approx_eq(Score::clamped(0.8), 1e-12));
        let g0 = q
            .grade(&grades(&[("Artist", 0.0), ("Color", 0.8)]))
            .unwrap();
        assert_eq!(g0, Score::ZERO);
    }

    #[test]
    fn conjunction_and_disjunction_defaults() {
        let and = Query::and(vec![red(), round()]);
        let or = Query::or(vec![red(), round()]);
        let env = grades(&[("Color", 0.7), ("Shape", 0.4)]);
        assert!(and
            .grade(&env)
            .unwrap()
            .approx_eq(Score::clamped(0.4), 1e-12));
        assert!(or
            .grade(&env)
            .unwrap()
            .approx_eq(Score::clamped(0.7), 1e-12));
    }

    #[test]
    fn negation_rule() {
        let q = Query::not(red());
        let env = grades(&[("Color", 0.7)]);
        assert!(q.grade(&env).unwrap().approx_eq(Score::clamped(0.3), 1e-12));
        assert!(!q.is_monotone());
    }

    #[test]
    fn weighted_node_grades_via_fw_formula() {
        let theta = Weighting::from_ratios(&[2.0, 1.0]).unwrap();
        let q = Query::weighted(vec![red(), round()], Arc::new(Min), theta).unwrap();
        let env = grades(&[("Color", 0.9), ("Shape", 0.3)]);
        // θ = (2/3, 1/3) ordered; f_θ = (1/3)·0.9 + 2·(1/3)·min(0.9,0.3)
        //                              = 0.3 + 0.2 = 0.5.
        assert!(q.grade(&env).unwrap().approx_eq(Score::HALF, 1e-12));
        assert!(q.is_monotone());
        assert!(q.is_strict());
    }

    #[test]
    fn weighted_arity_mismatch_rejected() {
        let theta = Weighting::uniform(3).unwrap();
        let err = Query::weighted(vec![red(), round()], Arc::new(Min), theta).unwrap_err();
        assert!(matches!(
            err,
            QueryError::WeightArityMismatch {
                children: 2,
                weights: 3
            }
        ));
    }

    #[test]
    fn atoms_are_collected_in_order() {
        let q = Query::and(vec![beatles(), Query::or(vec![red(), round()])]);
        let attrs: Vec<_> = q.atoms().iter().map(|a| a.attribute.clone()).collect();
        assert_eq!(attrs, vec!["Artist", "Color", "Shape"]);
    }

    #[test]
    fn monotonicity_and_strictness_classification() {
        let conj = Query::and(vec![red(), round()]);
        assert!(conj.is_monotone());
        assert!(conj.is_strict());

        let disj = Query::or(vec![red(), round()]);
        assert!(disj.is_monotone());
        assert!(!disj.is_strict());

        let neg = Query::not(red());
        assert!(!neg.is_monotone());
        assert!(!neg.is_strict());

        let mean = Query::and_with(vec![red(), round()], Arc::new(ArithmeticMean));
        assert!(mean.is_monotone());
        assert!(mean.is_strict());
    }

    #[test]
    fn missing_grade_is_an_error() {
        let q = Query::and(vec![red(), round()]);
        let env = grades(&[("Color", 0.7)]);
        assert!(matches!(
            q.grade(&env),
            Err(QueryError::MissingGrade(a)) if a.attribute == "Shape"
        ));
    }

    #[test]
    fn empty_combination_is_an_error() {
        let q = Query::and(vec![]);
        let env = grades(&[]);
        assert_eq!(q.grade(&env), Err(QueryError::EmptyCombination));
    }

    #[test]
    fn display_renders_structure() {
        let q = Query::and(vec![beatles(), red()]);
        let s = q.to_string();
        assert!(s.contains("Artist='Beatles'"));
        assert!(s.contains("min"));
        assert!(s.contains('∧'));
    }
}
