//! A₀ with pruned random access — the "various improvements … that can
//! be made to algorithm A₀" mentioned in §4.1 (detailed in \[Fa96\],
//! particularly for `t = min`).
//!
//! Phase 1 (sorted access) is exactly A₀'s. Phase 2 exploits what
//! sorted access already revealed: when list `i` last output grade
//! `bᵢ` ("bottom"), every object not yet seen in list `i` has
//! `μᵢ ≤ bᵢ`. By monotonicity, an object's overall grade is at most its
//! **upper bound** — the scoring function applied with every unknown
//! slot replaced by that list's bottom. Two prunes follow:
//!
//! * **skip** — once `k` objects are fully known with `k`-th best grade
//!   `τ`, an object whose upper bound is ≤ τ can be dropped without any
//!   random access (ties may be broken arbitrarily, §4.1);
//! * **short-circuit** — while probing an object's missing grades one
//!   list at a time, the upper bound is recomputed after every probe;
//!   the moment it falls to ≤ τ the remaining probes are abandoned.
//!   For `t = min` this is the classic improvement: one low grade
//!   settles the object's fate.
//!
//! The output is a valid top-k with exact grades — the same *grades*
//! as A₀, though tie objects at the `τ` boundary may differ (both
//! resolutions are correct per the paper's arbitrary tie-breaking).
//! Only the random access cost shrinks; experiment E3 quantifies it.

use std::collections::HashMap;

use fmdb_core::score::{Score, ScoredObject};
use fmdb_core::scoring::ScoringFunction;

use crate::algorithms::{finalize, validate, AlgoError, TopKAlgorithm, TopKResult};
use crate::source::{GradedSource, Oid};
use crate::stats::AccessStats;

/// A₀ with upper-bound pruning of phase-2 random accesses.
///
/// `short_circuit` (default on) enables the intra-object probe
/// abandonment; turning it off isolates the skip prune for the
/// ablation experiment E17.
#[derive(Debug, Clone, Copy)]
pub struct PrunedFa {
    /// Abandon an object's remaining probes once its upper bound falls
    /// to ≤ τ.
    pub short_circuit: bool,
}

impl Default for PrunedFa {
    fn default() -> Self {
        PrunedFa {
            short_circuit: true,
        }
    }
}

impl PrunedFa {
    /// The skip-prune-only variant (no intra-object short circuit).
    pub fn without_short_circuit() -> PrunedFa {
        PrunedFa {
            short_circuit: false,
        }
    }
}

impl TopKAlgorithm for PrunedFa {
    fn name(&self) -> &'static str {
        "pruned-fa"
    }

    fn top_k(
        &self,
        sources: &mut [&mut dyn GradedSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> Result<TopKResult, AlgoError> {
        validate(sources, scoring, k)?;
        let m = sources.len();
        for source in sources.iter_mut() {
            source.rewind();
        }
        let mut stats = AccessStats::ZERO;
        let mut seen: HashMap<Oid, Vec<Option<Score>>> = HashMap::new();
        let mut bottoms = vec![Score::ONE; m];
        let mut exhausted = vec![false; m];
        let mut matches = 0usize;

        // Phase 1 — identical to A₀.
        'sorted: loop {
            let mut progressed = false;
            for i in 0..m {
                if exhausted[i] {
                    continue;
                }
                match sources[i].sorted_next() {
                    Some(so) => {
                        stats.sorted += 1;
                        progressed = true;
                        bottoms[i] = so.grade;
                        let slots = seen.entry(so.id).or_insert_with(|| vec![None; m]);
                        if slots[i].is_none() {
                            slots[i] = Some(so.grade);
                            if slots.iter().all(Option::is_some) {
                                matches += 1;
                            }
                        }
                    }
                    None => {
                        exhausted[i] = true;
                        // A drained list bounds all unseen objects by 0.
                        bottoms[i] = Score::ZERO;
                    }
                }
                if matches >= k {
                    break 'sorted;
                }
            }
            if !progressed {
                break;
            }
        }

        // Phase 2 — pruned random access.
        // Split into fully-known objects and candidates with holes.
        let upper_of = |slots: &[Option<Score>], buf: &mut Vec<Score>| -> Score {
            buf.clear();
            buf.extend(
                slots
                    .iter()
                    .enumerate()
                    .map(|(i, &g)| g.unwrap_or(bottoms[i])),
            );
            scoring.combine(buf)
        };

        let mut known: Vec<ScoredObject<Oid>> = Vec::new();
        let mut candidates: Vec<(Oid, Vec<Option<Score>>, Score)> = Vec::new();
        let mut buf = Vec::with_capacity(m);
        for (oid, slots) in seen {
            if slots.iter().all(Option::is_some) {
                buf.clear();
                buf.extend(slots.iter().copied().flatten());
                known.push(ScoredObject::new(oid, scoring.combine(&buf)));
            } else {
                let upper = upper_of(&slots, &mut buf);
                candidates.push((oid, slots, upper));
            }
        }

        // Process candidates in descending upper-bound order so the
        // threshold tightens as fast as possible.
        candidates.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
        let mut tau = kth_best(&known, k);
        for (oid, mut slots, upper) in candidates {
            // Skip prune: μ(oid) ≤ upper ≤ τ — the k fully-known
            // objects already tie or beat it.
            if tau.is_some_and(|t| upper <= t) {
                continue;
            }
            // Short-circuit probe.
            let mut abandoned = false;
            for i in 0..m {
                if slots[i].is_some() {
                    continue;
                }
                slots[i] = Some(sources[i].random_access(oid));
                stats.random += 1;
                if self.short_circuit {
                    let cur_upper = upper_of(&slots, &mut buf);
                    if tau.is_some_and(|t| cur_upper <= t) {
                        abandoned = true;
                        break;
                    }
                }
            }
            if abandoned {
                continue;
            }
            buf.clear();
            // lint:allow(no-panic): the probe loop above filled every None slot for this object
            buf.extend(slots.iter().map(|&g| g.expect("just filled")));
            known.push(ScoredObject::new(oid, scoring.combine(&buf)));
            tau = kth_best(&known, k);
        }

        Ok(finalize(known, k, stats))
    }
}

/// The k-th best grade among `known`, or `None` if fewer than `k`
/// objects are fully known.
fn kth_best(known: &[ScoredObject<Oid>], k: usize) -> Option<Score> {
    if known.len() < k {
        return None;
    }
    let mut grades: Vec<Score> = known.iter().map(|o| o.grade).collect();
    grades.sort_unstable_by(|a, b| b.cmp(a));
    Some(grades[k - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::fa::FaginsAlgorithm;
    use crate::oracle::verify_top_k;
    use crate::source::VecSource;
    use crate::workload::independent_uniform;
    use fmdb_core::scoring::means::ArithmeticMean;
    use fmdb_core::scoring::tnorms::{Min, Product};

    fn s(v: f64) -> Score {
        Score::clamped(v)
    }

    fn run(
        algo: &dyn TopKAlgorithm,
        sources: &mut [VecSource],
        scoring: &dyn ScoringFunction,
        k: usize,
    ) -> TopKResult {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        algo.top_k(&mut refs, scoring, k).unwrap()
    }

    fn grades_of(r: &TopKResult) -> Vec<Score> {
        r.answers.iter().map(|a| a.grade).collect()
    }

    fn assert_valid(
        sources: &mut [VecSource],
        scoring: &dyn ScoringFunction,
        r: &TopKResult,
        k: usize,
    ) {
        let mut refs: Vec<&mut dyn GradedSource> = sources
            .iter_mut()
            .map(|s| s as &mut dyn GradedSource)
            .collect();
        verify_top_k(&mut refs, scoring, &r.answers, k).expect("invalid top-k");
    }

    #[test]
    fn results_are_valid_and_grades_match_fa_under_min() {
        for k in [1usize, 3, 10] {
            let mut a = independent_uniform(300, 2, 11);
            let pruned = run(&PrunedFa::default(), &mut a, &Min, k);
            assert_valid(&mut a, &Min, &pruned, k);
            let mut b = independent_uniform(300, 2, 11);
            let plain = run(&FaginsAlgorithm, &mut b, &Min, k);
            assert_eq!(grades_of(&pruned), grades_of(&plain), "k={k}");
        }
    }

    #[test]
    fn results_are_valid_under_product_and_mean() {
        let scorings: Vec<Box<dyn ScoringFunction>> =
            vec![Box::new(Product), Box::new(ArithmeticMean)];
        for scoring in &scorings {
            let mut a = independent_uniform(200, 3, 23);
            let pruned = run(&PrunedFa::default(), &mut a, scoring.as_ref(), 5);
            assert_valid(&mut a, scoring.as_ref(), &pruned, 5);
            let mut b = independent_uniform(200, 3, 23);
            let plain = run(&FaginsAlgorithm, &mut b, scoring.as_ref(), 5);
            assert_eq!(grades_of(&pruned), grades_of(&plain), "{}", scoring.name());
        }
    }

    #[test]
    fn pruning_never_increases_cost() {
        for seed in 0..5u64 {
            let mut a = independent_uniform(500, 2, seed);
            let pruned = run(&PrunedFa::default(), &mut a, &Min, 10);
            let mut b = independent_uniform(500, 2, seed);
            let plain = run(&FaginsAlgorithm, &mut b, &Min, 10);
            assert_eq!(pruned.stats.sorted, plain.stats.sorted);
            assert!(
                pruned.stats.random <= plain.stats.random,
                "seed {seed}: pruned {} vs plain {}",
                pruned.stats.random,
                plain.stats.random
            );
        }
    }

    #[test]
    fn pruning_saves_random_accesses_on_random_data() {
        // Averaged over seeds so a single lucky instance can't hide the
        // effect; the short-circuit prune alone guarantees savings for
        // m = 3 under min.
        let mut pruned_total = 0u64;
        let mut plain_total = 0u64;
        for seed in 0..5u64 {
            let mut a = independent_uniform(1000, 3, seed);
            pruned_total += run(&PrunedFa::default(), &mut a, &Min, 5).stats.random;
            let mut b = independent_uniform(1000, 3, seed);
            plain_total += run(&FaginsAlgorithm, &mut b, &Min, 5).stats.random;
        }
        assert!(
            pruned_total < plain_total,
            "expected saving: pruned {pruned_total} vs plain {plain_total}"
        );
    }

    #[test]
    fn exhausted_lists_bound_unseen_objects_by_zero() {
        // One sparse list: objects it never streams must be prunable.
        let mut a = VecSource::new("a", vec![(0, s(0.9)), (1, s(0.8)), (2, s(0.7))]);
        let mut b = VecSource::new("b", vec![(0, s(0.6))]);
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = PrunedFa::default().top_k(&mut refs, &Min, 1).unwrap();
        assert_eq!(r.answers[0], ScoredObject::new(0, s(0.6)));
    }

    #[test]
    fn tiny_universe_smaller_than_k() {
        let mut a = VecSource::from_dense("a", &[s(0.5), s(0.7)]);
        let mut b = VecSource::from_dense("b", &[s(0.6), s(0.2)]);
        let mut refs: Vec<&mut dyn GradedSource> = vec![&mut a, &mut b];
        let r = PrunedFa::default().top_k(&mut refs, &Min, 10).unwrap();
        assert_eq!(r.answers.len(), 2);
    }
}
