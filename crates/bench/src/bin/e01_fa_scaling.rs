//! Standalone runner for experiment `e01_fa_scaling`.
fn main() {
    let cfg = fmdb_bench::runners::RunCfg::from_env();
    fmdb_bench::experiments::e01_fa_scaling::run(&cfg).print();
}
