//! Property suite: the sharded engine path is equivalent to the serial
//! engine and to the brute-force oracle.
//!
//! For random corpora, shard counts ∈ {1, 2, 3, 8}, and k up to (and
//! beyond) the corpus size:
//!
//! * **TA** — the sharded answers must equal the serial answers **bit
//!   for bit** (same objects, same exact grades, same order). Both
//!   paths break ties by ascending oid, so the lists are comparable
//!   directly.
//! * **NRA** — the sharded kernel stops only on collapsed intervals, so
//!   its grades are exact where the serial path may report lower
//!   bounds; ties at the k-th grade may therefore resolve to different
//!   (equally correct) objects. Equivalence is checked as: oracle
//!   validity of the returned *set*, exactness of every returned grade,
//!   and equality of the **true-grade multisets** against the serial
//!   run.
//!
//! `shards: 1` is exercised on purpose: the engine must fall back to
//! the serial path (sharding needs ≥ 2 effective shards), proving the
//! knob degrades to the PR-1 engine rather than to a third behaviour.

use proptest::prelude::*;

use fmdb_core::score::Score;
use fmdb_core::scoring::tnorms::Min;
use fmdb_middleware::algorithms::nra::NraLowerBound;
use fmdb_middleware::algorithms::ta::ThresholdAlgorithm;
use fmdb_middleware::algorithms::{TopKAlgorithm, TopKResult};
use fmdb_middleware::engine::{Engine, EngineConfig};
use fmdb_middleware::oracle::{all_grades, verify_top_k};
use fmdb_middleware::request::{TopKQuery, TopKRequest};
use fmdb_middleware::source::GradedSource;
use fmdb_middleware::workload::independent_uniform;

/// One randomly drawn sharded-vs-serial comparison.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    n: usize,
    m: usize,
    k: usize,
    seed: u64,
    shards: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        (
            40usize..300,
            2usize..=4,
            prop_oneof![Just(1usize), Just(7usize), Just(25usize), Just(400usize)],
        ),
        (
            0u64..1_000_000,
            prop_oneof![Just(1usize), Just(2usize), Just(3usize), Just(8usize)],
        ),
    )
        .prop_map(|((n, m, k), (seed, shards))| Scenario {
            n,
            m,
            k,
            seed,
            shards,
        })
}

fn request(s: Scenario) -> TopKRequest {
    TopKQuery::compose()
        .sources(independent_uniform(s.n, s.m, s.seed))
        .scoring(Min)
        .k(s.k)
        .request()
        .expect("request must validate")
}

fn run(algorithm: &dyn TopKAlgorithm, s: Scenario, config: EngineConfig) -> TopKResult {
    Engine::new(config)
        .run_algorithm(algorithm, &request(s))
        .expect("engine run must succeed")
}

fn sharded_config(shards: usize) -> EngineConfig {
    EngineConfig {
        shards,
        // Never veto sharding on corpus size: the suite wants the
        // sharded kernels exercised even on its smallest corpora.
        shard_min_items: 1,
        ..EngineConfig::DEFAULT
    }
}

fn true_grades(s: Scenario) -> std::collections::HashMap<u64, Score> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    all_grades(&mut refs, &Min)
}

fn assert_oracle(s: Scenario, result: &TopKResult) -> Result<(), TestCaseError> {
    let mut sources = independent_uniform(s.n, s.m, s.seed);
    let mut refs: Vec<&mut dyn GradedSource> = sources
        .iter_mut()
        .map(|src| src as &mut dyn GradedSource)
        .collect();
    let verdict = verify_top_k(&mut refs, &Min, &result.answers, s.k);
    prop_assert!(
        verdict.is_ok(),
        "oracle rejected sharded answers under {:?}: {:?}",
        s,
        verdict
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded TA ≡ serial TA, answer lists compared bit for bit, and
    /// both validated against the oracle.
    #[test]
    fn sharded_ta_equals_serial_ta_and_the_oracle(s in scenario()) {
        let serial = run(&ThresholdAlgorithm, s, EngineConfig::serial());
        let sharded = run(&ThresholdAlgorithm, s, sharded_config(s.shards));
        prop_assert_eq!(
            &sharded.answers,
            &serial.answers,
            "TA answers diverged under {:?}",
            s
        );
        assert_oracle(s, &sharded)?;
    }

    /// Sharded NRA returns an oracle-valid set of exactly graded
    /// objects whose true-grade multiset equals the serial NRA set's.
    #[test]
    fn sharded_nra_is_an_exact_valid_set_matching_serial(s in scenario()) {
        let serial = run(&NraLowerBound, s, EngineConfig::serial());
        let sharded = run(&NraLowerBound, s, sharded_config(s.shards));
        assert_oracle(s, &sharded)?;
        prop_assert_eq!(sharded.answers.len(), serial.answers.len());

        let truth = true_grades(s);
        // Every sharded grade is exact (the kernel stops only on
        // collapsed intervals); serial grades are lower bounds.
        for a in &sharded.answers {
            prop_assert!(
                a.grade.approx_eq(truth[&a.id], 1e-9),
                "sharded NRA reported inexact grade for {} under {:?}",
                a.id,
                s
            );
        }
        // Same true-grade multiset: ties may pick different objects,
        // never different quality.
        let mut got: Vec<Score> = sharded.answers.iter().map(|a| truth[&a.id]).collect();
        let mut want: Vec<Score> = serial.answers.iter().map(|a| truth[&a.id]).collect();
        got.sort();
        want.sort();
        for (x, y) in got.iter().zip(&want) {
            prop_assert!(x.approx_eq(*y, 1e-9), "grade multisets diverged under {:?}", s);
        }
    }
}

/// k ≥ corpus size must return the whole universe from every path.
#[test]
fn k_at_least_corpus_size_returns_everything() {
    for shards in [1usize, 2, 3, 8] {
        for (n, k) in [(24usize, 24usize), (24, 25), (30, 1000)] {
            let s = Scenario {
                n,
                m: 2,
                k,
                seed: 5,
                shards,
            };
            let ta = run(&ThresholdAlgorithm, s, sharded_config(shards));
            assert_eq!(ta.answers.len(), n, "TA n={n} k={k} p={shards}");
            let serial = run(&ThresholdAlgorithm, s, EngineConfig::serial());
            assert_eq!(ta.answers, serial.answers, "TA n={n} k={k} p={shards}");
            let nra = run(&NraLowerBound, s, sharded_config(shards));
            assert_eq!(nra.answers.len(), n, "NRA n={n} k={k} p={shards}");
            let truth = true_grades(s);
            for a in &nra.answers {
                assert!(a.grade.approx_eq(truth[&a.id], 1e-9));
            }
        }
    }
}

/// More shards than objects: every non-empty shard still cooperates
/// through the shared threshold and the merge stays exact.
#[test]
fn more_shards_than_objects_still_exact() {
    let s = Scenario {
        n: 5,
        m: 2,
        k: 3,
        seed: 11,
        shards: 8,
    };
    let sharded = run(&ThresholdAlgorithm, s, sharded_config(8));
    let serial = run(&ThresholdAlgorithm, s, EngineConfig::serial());
    assert_eq!(sharded.answers, serial.answers);
}
